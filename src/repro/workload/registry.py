"""Bulk synthetic rule registries for audits and benchmarks.

The rule-base audit (:mod:`repro.analysis.rulebase`) is only interesting
against registries far larger than any bundled scenario builds.  This
module mass-registers Figure-10 rule bases — through the *real*
parse/normalize/decompose/register pipeline, so every triggering index,
rule group, trigram posting and canonical-hash row is exactly what live
subscriptions would have produced — and exposes the same thing as a CLI
for CI jobs::

    python -m repro.workload.registry --db /tmp/audit.db \
        --count 40000 --mix fig13

Mixes name rule-type blends, not absolute counts:

- ``fig13`` — half COMP, half CON: the two rule families of the paper's
  Figure 13, the workload the index advisor's ``contains`` and
  parallelism heuristics are aimed at;
- ``uniform`` — all five Figure-10 types in equal parts;
- ``comp`` — a pure COMP base: consecutive ``synthValue`` thresholds
  form one long covering chain, the worst case for the subsumption
  index.

``equivalent_fraction`` re-spells that fraction of the COMP rules into
a semantically equivalent form (a float-spelled threshold plus a
redundant bound), seeding the equivalence classes the canonicalizer and
the registry ``dedupe`` knob exist to find.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.filter.engine import FilterEngine
from repro.rdf.schema import PropertyDef, PropertyKind, Schema, objectglobe_schema
from repro.semantics.store import SEMANTICS_MODES
from repro.rules.decompose import decompose_rule
from repro.rules.normalize import normalize_rule
from repro.rules.parser import parse_rule
from repro.rules.registry import RuleRegistry
from repro.storage.engine import Database
from repro.storage.schema import create_all
from repro.workload.rules import (
    comp_rule,
    con_rule,
    join_rule,
    oid_rule,
    path_rule,
)

__all__ = [
    "MIXES",
    "build_registry",
    "equivalent_comp_rule",
    "mix_rule_texts",
    "main",
    "semantic_schema",
]

#: Rule-type blends: ``(rule type, weight)`` pairs; weights sum to 1.
MIXES: dict[str, tuple[tuple[str, float], ...]] = {
    "fig13": (("COMP", 0.5), ("CON", 0.5)),
    "uniform": (
        ("OID", 0.2),
        ("COMP", 0.2),
        ("PATH", 0.2),
        ("JOIN", 0.2),
        ("CON", 0.2),
    ),
    "comp": (("COMP", 1.0),),
}

_GENERATORS = {
    "OID": oid_rule,
    "COMP": comp_rule,
    "PATH": path_rule,
    "JOIN": join_rule,
    "CON": con_rule,
}


def equivalent_comp_rule(index: int) -> str:
    """A COMP rule semantically equivalent to :func:`comp_rule` (index).

    The threshold is spelled as a float and a vacuous lower bound is
    appended; canonicalization normalizes the spelling and drops the
    implied bound, so this rule lands in the same equivalence class as
    the plainly spelled one — different atoms, same canonical hash.
    """
    return (
        f"search CycleProvider c register c "
        f"where c.synthValue > {index}.0 and c.synthValue > -1"
    )


def semantic_schema() -> Schema:
    """The ObjectGlobe schema plus the divergent spellings.

    ``synthMeasure`` is an alternative spelling of ``synthValue`` (the
    property-synonym workload) and ``synthMilli`` its thousandths
    (the affine-mapping workload).  Normalization validates every rule
    path against the schema, so divergent *rules* need the alias
    declared even though only the vocabulary relates the two.
    """
    schema = objectglobe_schema()
    provider = schema.class_def("CycleProvider")
    provider.add(PropertyDef("synthMeasure", PropertyKind.INTEGER))
    provider.add(PropertyDef("synthMilli", PropertyKind.INTEGER))
    return schema


def mix_rule_texts(
    count: int, mix: str = "fig13", equivalent_fraction: float = 0.0
) -> list[str]:
    """``count`` rule texts blended per ``mix`` (deterministic order).

    ``equivalent_fraction`` of the COMP rules are emitted in the
    re-spelled equivalent form *in addition to* their plain spelling
    replacing other COMP slots, so the total stays ``count`` while that
    fraction of COMP thresholds appears twice (once per spelling).
    """
    try:
        blend = MIXES[mix]
    except KeyError:
        raise ValueError(
            f"unknown mix {mix!r}; expected one of {sorted(MIXES)}"
        ) from None
    if not 0.0 <= equivalent_fraction <= 1.0:
        raise ValueError(
            f"equivalent_fraction must be within [0, 1], "
            f"got {equivalent_fraction}"
        )
    texts: list[str] = []
    remaining = count
    for position, (rule_type, weight) in enumerate(blend):
        slots = (
            remaining
            if position == len(blend) - 1
            else min(remaining, round(count * weight))
        )
        remaining -= slots
        generator = _GENERATORS[rule_type]
        if rule_type == "COMP" and equivalent_fraction > 0.0:
            stride = max(2, round(1.0 / equivalent_fraction))
            for index in range(slots):
                if index % stride == 1:
                    # Re-spell the *previous* threshold: both spellings
                    # of threshold index-1 are registered, forming one
                    # two-member equivalence class per stride.
                    texts.append(equivalent_comp_rule(index - 1))
                else:
                    texts.append(generator(index))
        else:
            texts.extend(generator(index) for index in range(slots))
    return texts


def build_registry(
    db: Database,
    count: int,
    mix: str = "fig13",
    equivalent_fraction: float = 0.0,
    schema: Schema | None = None,
    dedupe: str = "off",
    subscribers: int = 1,
    semantics: str = "off",
) -> RuleRegistry:
    """Mass-register a ``mix`` rule base of ``count`` rules into ``db``.

    Every rule runs through the full registration pipeline (including
    filter-engine rule initialization), inside one transaction.
    ``subscribers`` spreads the subscriptions over that many distinct
    subscriber names round-robin.

    With ``semantics`` enabled the COMP slice of the mix becomes
    vocabulary-divergent: every third COMP rule is spelled over the
    ``synthMeasure`` alias, the ``{synthValue, synthMeasure}`` synonym
    set unifies the spellings (doubling those rules' triggering rows)
    and — at the ``mappings`` degree — an affine ``synthMilli``
    mapping adds a third row per comparison.  The resulting registries
    exercise the index advisor's fan-out heuristic (``MDV075``) at
    realistic scale.
    """
    if semantics not in SEMANTICS_MODES:
        raise ValueError(
            f"semantics must be one of {SEMANTICS_MODES}, got {semantics!r}"
        )
    if schema is None:
        schema = semantic_schema() if semantics != "off" else (
            objectglobe_schema()
        )
    create_all(db)
    registry = RuleRegistry(
        db, deduplicate=True, dedupe=dedupe, semantics=semantics
    )
    if semantics != "off":
        # Vocabulary first: expansion happens at registration, which is
        # far cheaper than re-expanding the whole base afterwards.
        registry.register_synonyms(
            "property", ["synthValue", "synthMeasure"]
        )
        if SEMANTICS_MODES.index(semantics) >= 3:
            registry.register_affine_mapping(
                "synthMilli", "synthValue", scale=0.001
            )
    engine = FilterEngine(db, registry, True, "scan")
    texts = mix_rule_texts(count, mix, equivalent_fraction)
    with db.transaction():
        for index, text in enumerate(texts):
            if semantics != "off" and index % 3 == 1:
                # The divergent spelling: same thresholds, the alias
                # property — only the synonym set relates the two.
                text = text.replace("c.synthValue", "c.synthMeasure")
            normalized = normalize_rule(parse_rule(text), schema)[0]
            decomposed = decompose_rule(normalized, schema)
            registration = registry.register_subscription(
                f"bulk-{index % subscribers}", text, decomposed
            )
            engine.initialize_rules(registration.created)
    db.execute("ANALYZE")
    db.commit()
    return registry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workload.registry",
        description="Mass-register a synthetic Figure-10 rule base into "
        "an MDP database (for rule-base audits and benchmarks).",
    )
    parser.add_argument(
        "--db", required=True, help="path of the SQLite database to build"
    )
    parser.add_argument(
        "--count", type=int, default=10_000, help="number of rules"
    )
    parser.add_argument(
        "--mix", choices=sorted(MIXES), default="fig13",
        help="rule-type blend (default: fig13)",
    )
    parser.add_argument(
        "--equivalent-fraction", type=float, default=0.0, metavar="F",
        help="fraction of COMP rules re-spelled into an equivalent form",
    )
    parser.add_argument(
        "--dedupe", choices=("off", "report", "merge"), default="off",
        help="registry dedupe knob during the build (default: off)",
    )
    parser.add_argument(
        "--subscribers", type=int, default=1,
        help="spread subscriptions over this many subscriber names",
    )
    parser.add_argument(
        "--semantics", choices=SEMANTICS_MODES, default="off",
        help="semantic degree: makes the COMP slice vocabulary-"
        "divergent and expands it through the synonym/mapping "
        "vocabulary (default: off)",
    )
    args = parser.parse_args(argv)
    if args.count <= 0:
        print("error: --count must be positive", file=sys.stderr)
        return 2
    started = time.perf_counter()
    db = Database(args.db)
    try:
        build_registry(
            db,
            args.count,
            mix=args.mix,
            equivalent_fraction=args.equivalent_fraction,
            dedupe=args.dedupe,
            subscribers=args.subscribers,
            semantics=args.semantics,
        )
    finally:
        db.close()
    elapsed = time.perf_counter() - started
    print(
        f"registered {args.count} {args.mix} rules into {args.db} "
        f"in {elapsed:.1f}s"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
