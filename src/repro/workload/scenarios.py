"""Workload assembly: rule bases + matching document batches.

Combines the generators of :mod:`repro.workload.rules` and
:mod:`repro.workload.documents` into the exact measurement setup of the
paper's Section 4: *"In a single measurement, we first created a rule
base consisting of rules of the same type.  Then, we registered a number
of RDF documents and measured the overall runtime of the filter
algorithm to process them."*
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rdf.model import Document
from repro.workload.documents import benchmark_batch
from repro.workload.rules import (
    RULE_TYPES,
    rules_of_type,
    synth_value_for_fraction,
)

__all__ = ["WorkloadSpec"]


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark configuration.

    ``match_fraction`` only matters for COMP workloads: the fraction of
    the rule base every registered document triggers (the paper's
    Figures 13 and 15 vary it between 1% and 20%).
    """

    rule_type: str
    rule_count: int
    match_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.rule_type not in RULE_TYPES:
            raise ValueError(f"unknown rule type {self.rule_type!r}")
        if self.rule_count <= 0:
            raise ValueError("rule_count must be positive")

    def rule_texts(self) -> list[str]:
        """The full rule base."""
        return rules_of_type(self.rule_type, self.rule_count)

    def synth_value(self) -> int:
        """The document synthValue triggering ``match_fraction`` of COMP
        rules (0 for the one-to-one workloads)."""
        if self.rule_type != "COMP":
            return 0
        return synth_value_for_fraction(self.rule_count, self.match_fraction)

    def documents(self, batch_size: int, start_index: int = 0) -> list[Document]:
        """A batch of documents honouring the matching contract.

        For OID/PATH/JOIN workloads the document indices must stay below
        ``rule_count`` so each document is matched by exactly one rule.
        """
        if self.rule_type != "COMP" and start_index + batch_size > self.rule_count:
            raise ValueError(
                f"documents {start_index}..{start_index + batch_size - 1} "
                f"exceed the rule base of {self.rule_count} one-to-one rules"
            )
        return benchmark_batch(
            batch_size, start_index=start_index, synth_value=self.synth_value()
        )

    def expected_matches_per_document(self) -> int:
        """How many rules one registered document triggers."""
        if self.rule_type == "COMP":
            return self.synth_value()
        return 1

    def label(self) -> str:
        if self.rule_type == "COMP":
            percent = round(self.match_fraction * 100)
            return f"{self.rule_type} n={self.rule_count} match={percent}%"
        return f"{self.rule_type} n={self.rule_count}"
