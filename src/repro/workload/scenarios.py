"""Workload assembly: rule bases + matching document batches.

Combines the generators of :mod:`repro.workload.rules` and
:mod:`repro.workload.documents` into the exact measurement setup of the
paper's Section 4: *"In a single measurement, we first created a rule
base consisting of rules of the same type.  Then, we registered a number
of RDF documents and measured the overall runtime of the filter
algorithm to process them."*
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rdf.model import Document
from repro.workload.documents import benchmark_batch
from repro.workload.rules import (
    RULE_TYPES,
    con_token,
    rules_of_type,
    synth_value_for_fraction,
)

__all__ = ["WorkloadSpec"]


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark configuration.

    ``match_fraction`` only matters for COMP and CON workloads: the
    fraction of the rule base every registered document triggers (the
    paper's Figures 13 and 15 vary it between 1% and 20%; the trigram
    experiments reuse the knob for ``contains`` rules).
    """

    rule_type: str
    rule_count: int
    match_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.rule_type not in RULE_TYPES:
            raise ValueError(f"unknown rule type {self.rule_type!r}")
        if self.rule_count <= 0:
            raise ValueError("rule_count must be positive")

    def rule_texts(self) -> list[str]:
        """The full rule base."""
        return rules_of_type(self.rule_type, self.rule_count)

    def synth_value(self) -> int:
        """The document synthValue triggering ``match_fraction`` of COMP
        rules (0 for the other workloads)."""
        if self.rule_type != "COMP":
            return 0
        return synth_value_for_fraction(self.rule_count, self.match_fraction)

    def matched_token_count(self) -> int:
        """How many CON tokens each document's host embeds (0 otherwise)."""
        if self.rule_type != "CON":
            return 0
        return synth_value_for_fraction(self.rule_count, self.match_fraction)

    def server_host(self, index: int) -> str | None:
        """The host name of document ``index`` (``None`` = default).

        CON documents embed the tokens of rules ``0 … k-1``, separated
        by ``.`` so no token match can straddle a boundary; the
        ``h{index}`` prefix keeps host values distinct per document, so
        the indexed path pays one trigram probe per document rather
        than one per batch.
        """
        if self.rule_type != "CON":
            return None
        tokens = [con_token(j) for j in range(self.matched_token_count())]
        return ".".join([f"h{index}", *tokens])

    def documents(self, batch_size: int, start_index: int = 0) -> list[Document]:
        """A batch of documents honouring the matching contract.

        For OID/PATH/JOIN workloads the document indices must stay below
        ``rule_count`` so each document is matched by exactly one rule.
        """
        if (
            self.rule_type not in ("COMP", "CON")
            and start_index + batch_size > self.rule_count
        ):
            raise ValueError(
                f"documents {start_index}..{start_index + batch_size - 1} "
                f"exceed the rule base of {self.rule_count} one-to-one rules"
            )
        return benchmark_batch(
            batch_size,
            start_index=start_index,
            synth_value=self.synth_value(),
            server_host=self.server_host,
        )

    def expected_matches_per_document(self) -> int:
        """How many rules one registered document triggers."""
        if self.rule_type == "COMP":
            return self.synth_value()
        if self.rule_type == "CON":
            return self.matched_token_count()
        return 1

    def label(self) -> str:
        if self.rule_type == "COMP":
            percent = round(self.match_fraction * 100)
            return f"COMP n={self.rule_count} match={percent}%"
        if self.rule_type == "CON":
            # Fractions are tiny here (k matched rules out of n); the
            # absolute token count reads better than "match=0%".
            return f"CON n={self.rule_count} k={self.matched_token_count()}"
        return f"{self.rule_type} n={self.rule_count}"
