"""Synthetic benchmark documents (paper, Section 4).

*"We registered RDF documents similar to the document of Figure 1, each
containing two resources, one of class CycleProvider, one of class
ServerInformation."*

Every generated document ``doc{i}.rdf`` holds:

- ``doc{i}.rdf#host`` — a ``CycleProvider`` with ``serverHost``,
  ``serverPort``, ``synthValue`` and a strong ``serverInformation``
  reference;
- ``doc{i}.rdf#info`` — the referenced ``ServerInformation`` with
  ``memory`` and ``cpu``.

Field values are chosen per rule type so the matching contract of the
paper holds: for OID/PATH/JOIN workloads document ``i`` is matched by
exactly rule ``i`` and vice versa; for COMP workloads every document is
matched by a fixed fraction of the rule base (see
:mod:`repro.workload.rules`).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.rdf.model import Document, URIRef

__all__ = [
    "benchmark_document",
    "benchmark_batch",
    "host_uri",
    "info_uri",
    "document_uri",
]

#: The serverHost of every benchmark document contains this needle so
#: JOIN rules' ``contains`` predicate matches all documents (Figure 10).
HOST_DOMAIN = "uni-passau.de"

#: The fixed CPU value JOIN rules test for equality.
JOIN_CPU = 600


def document_uri(index: int) -> str:
    return f"doc{index}.rdf"


def host_uri(index: int) -> URIRef:
    return URIRef(f"{document_uri(index)}#host")


def info_uri(index: int) -> URIRef:
    return URIRef(f"{document_uri(index)}#info")


def benchmark_document(
    index: int,
    synth_value: int = 0,
    memory: int | None = None,
    cpu: int = JOIN_CPU,
    server_host: str | None = None,
) -> Document:
    """One Figure-1-shaped document.

    ``memory`` defaults to ``index`` — the unique value PATH and JOIN
    rules key on.  ``synth_value`` is the COMP workload knob;
    ``server_host`` overrides the default host name (the CON workload
    embeds its matched tokens there).
    """
    doc = Document(document_uri(index))
    host = doc.new_resource("host", "CycleProvider")
    host.add(
        "serverHost",
        f"host{index}.{HOST_DOMAIN}" if server_host is None else server_host,
    )
    host.add("serverPort", 5000 + (index % 1000))
    host.add("synthValue", synth_value)
    host.add("serverInformation", info_uri(index))
    info = doc.new_resource("info", "ServerInformation")
    info.add("memory", index if memory is None else memory)
    info.add("cpu", cpu)
    return doc


def benchmark_batch(
    batch_size: int,
    start_index: int = 0,
    synth_value: int = 0,
    server_host: Callable[[int], str | None] | None = None,
) -> list[Document]:
    """A batch of consecutive benchmark documents.

    ``server_host`` maps a document index to its host name override
    (``None`` keeps the default).
    """
    return [
        benchmark_document(
            index,
            synth_value=synth_value,
            server_host=None if server_host is None else server_host(index),
        )
        for index in range(start_index, start_index + batch_size)
    ]
