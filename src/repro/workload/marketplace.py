"""The marketplace scenario: vocabulary-divergent publish/subscribe.

The worked example behind docs/SEMANTICS.md.  Sellers list items under
a small e-commerce schema but do not share a vocabulary: some spell the
asking price ``price``, others ``cost``, one publishes ``priceCents``;
categories arrive as ``car``, ``automobile``, ``truck`` or ``pickup``;
one feed grades condition as ``A``/``B``/``C`` instead of
``new``/``used``/``parts``.  Subscribers write their rules in *their*
vocabulary, and each degree of the ``semantics`` knob recovers one
family of the resulting misses:

- ``synonyms`` — ``cost``-spelled listings reach a ``price`` rule,
  ``automobile`` reaches a ``car`` watcher;
- ``taxonomy`` — ``truck`` and ``pickup`` listings reach a ``vehicle``
  watcher (transitively), and the standalone ``Pickup`` class joins the
  ``Vehicle`` extension through a runtime class edge;
- ``mappings`` — ``priceCents`` listings reach a ``price`` bound
  through an affine mapping, graded feeds reach a condition rule
  through an enum mapping.

:data:`MINIMUM_DEGREE` records, for every (subscriber, resource) pair
that ever matches, the smallest degree at which it does — the tests and
the CLI check the live engine against it.  Run it with::

    python -m repro.workload.marketplace --semantics taxonomy
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.mdv.provider import MetadataProvider
from repro.rdf.model import Document
from repro.rdf.schema import PropertyDef, PropertyKind, Schema
from repro.semantics.store import SEMANTICS_MODES

__all__ = [
    "MINIMUM_DEGREE",
    "SUBSCRIPTIONS",
    "expected_matches",
    "listings",
    "main",
    "marketplace_schema",
    "run_marketplace",
    "seed_vocabulary",
]


def marketplace_schema() -> Schema:
    """A small e-commerce schema with deliberate vocabulary overlap.

    ``price``, ``cost`` and ``priceCents`` all mean the asking price;
    ``condition`` and ``grade`` both describe wear.  ``Pickup`` is
    *deliberately* not declared a subclass of ``Vehicle`` — the
    scenario bridges the two with a runtime taxonomy edge instead.
    """
    schema = Schema()
    schema.define_class(
        "Listing",
        [
            PropertyDef("title", PropertyKind.STRING),
            PropertyDef("price", PropertyKind.INTEGER),
            PropertyDef("cost", PropertyKind.INTEGER),
            PropertyDef("priceCents", PropertyKind.INTEGER),
            PropertyDef("category", PropertyKind.STRING),
            PropertyDef("condition", PropertyKind.STRING),
            PropertyDef("grade", PropertyKind.STRING),
        ],
    )
    schema.define_class("Vehicle", superclass="Listing")
    schema.define_class("Truck", superclass="Vehicle")
    schema.define_class("Pickup", superclass="Listing")
    schema.freeze_check()
    return schema


#: The subscribers and the rules they write — each in *their* words.
SUBSCRIPTIONS: tuple[tuple[str, str], ...] = (
    ("bargain-hunter", "search Vehicle v register v where v.price <= 50"),
    (
        "vehicle-watcher",
        "search Listing l register l where l.category = 'vehicle'",
    ),
    ("car-watcher", "search Listing l register l where l.category = 'car'"),
    (
        "condition-new",
        "search Listing l register l where l.condition = 'new'",
    ),
)


def seed_vocabulary(mdp: MetadataProvider) -> None:
    """Register the marketplace vocabulary (all three degrees' worth)."""
    mdp.register_synonyms("property", ["price", "cost"])
    mdp.register_synonyms("value", ["car", "automobile"])
    mdp.register_taxonomy_edge("truck", "vehicle")
    mdp.register_taxonomy_edge("pickup", "truck")
    mdp.register_taxonomy_edge("Pickup", "Vehicle")
    mdp.register_affine_mapping("priceCents", "price", scale=0.01)
    mdp.register_enum_mapping(
        "grade", "condition", [("A", "new"), ("B", "used"), ("C", "parts")]
    )


def listings() -> list[Document]:
    """The seller feed: one listing per vocabulary-divergence family."""
    specs: list[tuple[str, str, dict[str, object]]] = [
        # Spelled exactly as the subscribers expect — matches at "off".
        ("classic", "Vehicle", {"price": 45, "category": "car"}),
        ("van", "Listing", {"category": "vehicle"}),
        # Property and value synonyms.
        ("cost-spelled", "Vehicle", {"cost": 40, "title": "roadster"}),
        ("automobile", "Listing", {"category": "automobile"}),
        # Value taxonomy (one hop, then transitively) and the runtime
        # class edge Pickup -> Vehicle.
        ("truck", "Listing", {"category": "truck"}),
        ("pickup", "Pickup", {"price": 30, "category": "pickup"}),
        # Mapping functions: affine (cents -> whole units) and enum.
        ("cents", "Vehicle", {"priceCents": 4500}),
        ("graded", "Listing", {"grade": "A"}),
        # Never matches anything, at any degree.
        ("expensive", "Vehicle", {"price": 500, "category": "boat"}),
    ]
    documents = []
    for label, rdf_class, properties in specs:
        doc = Document(f"listing-{label}.rdf")
        item = doc.new_resource("item", rdf_class)
        for prop, value in properties.items():
            item.add(prop, value)
        documents.append(doc)
    return documents


#: For every (subscriber, resource URI) pair that ever matches: the
#: smallest semantics degree at which the engine must report it.
MINIMUM_DEGREE: dict[tuple[str, str], int] = {
    ("bargain-hunter", "listing-classic.rdf#item"): 0,
    ("car-watcher", "listing-classic.rdf#item"): 0,
    ("vehicle-watcher", "listing-van.rdf#item"): 0,
    ("bargain-hunter", "listing-cost-spelled.rdf#item"): 1,
    ("car-watcher", "listing-automobile.rdf#item"): 1,
    ("vehicle-watcher", "listing-truck.rdf#item"): 2,
    ("vehicle-watcher", "listing-pickup.rdf#item"): 2,
    ("bargain-hunter", "listing-pickup.rdf#item"): 2,
    ("bargain-hunter", "listing-cents.rdf#item"): 3,
    ("condition-new", "listing-graded.rdf#item"): 3,
}


def expected_matches(semantics: str) -> dict[str, list[str]]:
    """The match sets :data:`MINIMUM_DEGREE` predicts for a degree."""
    degree = SEMANTICS_MODES.index(semantics)
    matches: dict[str, list[str]] = {
        subscriber: [] for subscriber, __ in SUBSCRIPTIONS
    }
    for (subscriber, uri), minimum in sorted(MINIMUM_DEGREE.items()):
        if minimum <= degree:
            matches[subscriber].append(uri)
    return matches


def run_marketplace(
    semantics: str = "off",
    triggering: str = "sql",
    parallelism: int = 1,
) -> dict[str, list[str]]:
    """Run the scenario end to end; returns matches per subscriber."""
    mdp = MetadataProvider(
        marketplace_schema(),
        name="marketplace",
        semantics=semantics,
        triggering=triggering,
        parallelism=parallelism,
    )
    try:
        seed_vocabulary(mdp)
        end_rules: dict[str, list[int]] = {}
        for subscriber, rule_text in SUBSCRIPTIONS:
            subscriptions = mdp.subscribe(subscriber, rule_text)
            end_rules[subscriber] = [s.end_rule for s in subscriptions]
        for doc in listings():
            mdp.register_document(doc)
        return {
            subscriber: sorted(
                str(uri)
                for end_rule in ends
                for uri in mdp.engine.current_matches(end_rule)
            )
            for subscriber, ends in end_rules.items()
        }
    finally:
        mdp.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workload.marketplace",
        description="Run the vocabulary-divergent marketplace scenario "
        "and check the engine against the expected match sets.",
    )
    parser.add_argument(
        "--semantics", choices=SEMANTICS_MODES, default="taxonomy",
        help="semantic degree to run at (default: taxonomy)",
    )
    parser.add_argument(
        "--triggering", choices=("sql", "counting"), default="sql",
        help="triggering path (default: sql)",
    )
    parser.add_argument(
        "--parallelism", type=int, default=1,
        help="triggering shards (default: 1)",
    )
    args = parser.parse_args(argv)
    matches = run_marketplace(
        args.semantics, args.triggering, args.parallelism
    )
    expected = expected_matches(args.semantics)
    print(json.dumps(
        {"semantics": args.semantics, "matches": matches}, indent=2
    ))
    if matches != expected:
        print(
            f"MISMATCH: expected {json.dumps(expected, indent=2)}",
            file=sys.stderr,
        )
        return 1
    print(f"ok: all match sets as predicted at degree {args.semantics!r}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
