"""Synthetic benchmark workloads (paper, Section 4 and Figure 10)."""

from repro.workload.documents import (
    HOST_DOMAIN,
    JOIN_CPU,
    benchmark_batch,
    benchmark_document,
    document_uri,
    host_uri,
    info_uri,
)
from repro.workload.rules import (
    RULE_TYPES,
    comp_rule,
    join_rule,
    oid_rule,
    path_rule,
    rules_of_type,
    synth_value_for_fraction,
)
from repro.workload.chaos import (
    ChaosReport,
    resource_snapshot,
    run_chaos_scenario,
)
from repro.workload.scenarios import WorkloadSpec

__all__ = [
    "ChaosReport",
    "resource_snapshot",
    "run_chaos_scenario",
    "HOST_DOMAIN",
    "JOIN_CPU",
    "benchmark_batch",
    "benchmark_document",
    "document_uri",
    "host_uri",
    "info_uri",
    "RULE_TYPES",
    "comp_rule",
    "join_rule",
    "oid_rule",
    "path_rule",
    "rules_of_type",
    "synth_value_for_fraction",
    "WorkloadSpec",
]
