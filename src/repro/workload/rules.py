"""Benchmark rule generators — the paper's Figure 10 rule types.

::

    OID:  search CycleProvider c register c where c = URI
    COMP: search CycleProvider c register c where c.synthValue > INT
    PATH: search CycleProvider c register c
          where c.serverInformation.memory = INT
    JOIN: search CycleProvider c register c
          where c.serverHost contains 'uni-passau.de'
            and c.serverInformation.cpu = 600
            and c.serverInformation.memory = INT
    CON:  search CycleProvider c register c
          where c.serverHost contains TOKEN

Matching contracts (paper, Section 4):

- **OID** rule ``i`` registers document ``i``'s CycleProvider by URI —
  exactly one rule per document and vice versa.  OID rules are pure
  triggering rules (no decomposition, no join evaluation).
- **PATH** rule ``i`` keys on the unique ``memory = i`` of document
  ``i`` — one-to-one matching, but through a decomposed join rule, so
  the complete filter machinery runs.
- **JOIN** rule ``i`` adds two more predicates that match *every*
  document (``contains`` on the shared domain, ``cpu = 600``), again
  one-to-one overall and with a deeper dependency tree.
- **COMP** rules carry thresholds ``0 … n-1``; a document with
  ``synthValue = v`` is matched by exactly ``v`` rules, so
  ``synth_value_for_fraction`` picks the value that triggers the desired
  percentage of the rule base.
- **CON** rule ``j`` tests ``serverHost contains`` a pseudo-random
  8-letter token unique to ``j`` (:func:`con_token`); a document whose
  host embeds the tokens ``0 … k-1`` is matched by exactly ``k`` rules
  — the pure-``contains`` analogue of the COMP contract, used by the
  trigram-index experiments (docs/TEXT_INDEX.md).  Tokens are drawn
  from 26^8 combinations; uniqueness over the generated range is
  asserted by the workload tests.
"""

from __future__ import annotations

import hashlib

from repro.workload.documents import HOST_DOMAIN, JOIN_CPU, host_uri

__all__ = [
    "oid_rule",
    "comp_rule",
    "path_rule",
    "join_rule",
    "con_rule",
    "con_token",
    "rules_of_type",
    "synth_value_for_fraction",
    "RULE_TYPES",
]

RULE_TYPES = ("OID", "COMP", "PATH", "JOIN", "CON")


def oid_rule(index: int) -> str:
    return (
        f"search CycleProvider c register c where c = '{host_uri(index)}'"
    )


def comp_rule(index: int) -> str:
    return (
        f"search CycleProvider c register c where c.synthValue > {index}"
    )


def path_rule(index: int) -> str:
    return (
        f"search CycleProvider c register c "
        f"where c.serverInformation.memory = {index}"
    )


def join_rule(index: int) -> str:
    return (
        f"search CycleProvider c register c "
        f"where c.serverHost contains '{HOST_DOMAIN}' "
        f"and c.serverInformation.cpu = {JOIN_CPU} "
        f"and c.serverInformation.memory = {index}"
    )


def con_token(index: int) -> str:
    """A deterministic pseudo-random 8-letter token for CON rule ``index``.

    Lowercase letters only, so a token can never straddle the ``.``
    separators of a benchmark host name — token ``j`` is a substring of
    the host exactly when the host embeds token ``j`` whole.
    """
    digest = hashlib.md5(f"con{index}".encode()).digest()
    return "".join(chr(97 + byte % 26) for byte in digest[:8])


def con_rule(index: int) -> str:
    return (
        f"search CycleProvider c register c "
        f"where c.serverHost contains '{con_token(index)}'"
    )


_GENERATORS = {
    "OID": oid_rule,
    "COMP": comp_rule,
    "PATH": path_rule,
    "JOIN": join_rule,
    "CON": con_rule,
}


def rules_of_type(rule_type: str, count: int, start_index: int = 0) -> list[str]:
    """``count`` rules of one Figure-10 type, indexed consecutively."""
    try:
        generator = _GENERATORS[rule_type]
    except KeyError:
        raise ValueError(
            f"unknown rule type {rule_type!r}; expected one of {RULE_TYPES}"
        ) from None
    return [generator(index) for index in range(start_index, start_index + count)]


def synth_value_for_fraction(rule_count: int, fraction: float) -> int:
    """The ``synthValue`` that triggers ``fraction`` of a COMP rule base.

    COMP rule ``j`` matches documents with ``synthValue > j``; a document
    with ``synthValue = v`` therefore matches rules ``0 … v-1`` — exactly
    ``v`` of the ``rule_count`` rules.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be within [0, 1], got {fraction}")
    return round(rule_count * fraction)
