"""Crash-recovery differential oracle (docs/DURABILITY.md).

The acceptance contract of the durability layer: a scripted pub/sub
workload that is killed at *any* statement or commit boundary, recovered
and resumed must be indistinguishable from the same workload run with no
crash — the stream of applied notification batches is byte-identical
(sources, sequence numbers, batch contents, order), the LMR cache holds
the same resources, and the post-run invariant audit is clean.

:func:`run_crash_scenario` executes one run: a durable provider
(``durable_delivery=True``) with one directly connected LMR, a seeded
workload of subscriptions, registrations, updates and a deletion.  With
a :class:`~repro.storage.durability.CrashPoint` the run is killed at
that boundary (:class:`~repro.errors.CrashError`), "restarted" — the
provider object is discarded and a new one constructed on the same
database with ``recovery="auto"`` — reattached, redelivered, and the
interrupted operation is retried.  Retries of operations the crashed run
had already committed are no-ops: a re-registration produces an empty
diff, a re-delete raises ``DocumentNotFoundError``, a re-subscribe
raises ``SubscriptionError``; both exceptions are absorbed only when a
crash preceded them.  Redelivered batches the LMR already applied are
dropped by its ``(source, seq)`` dedup index and never re-enter the
stream.

:func:`run_crash_sweep` enumerates every commit boundary plus every
``statement_stride``-th statement boundary of the workload (counted by a
targetless :class:`~repro.storage.durability.CrashPlan` during the
baseline run) and diffs each crashed run against the baseline.

CLI::

    python -m repro.workload.crashes --seed 7 --stride 5
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.analysis.invariants import audit_database
from repro.errors import CrashError, DocumentNotFoundError, SubscriptionError
from repro.mdv.provider import MetadataProvider
from repro.mdv.repository import LocalMetadataRepository
from repro.pubsub.notifications import NotificationBatch
from repro.rdf.model import Resource
from repro.rdf.schema import Schema, objectglobe_schema
from repro.storage.durability import (
    CrashPlan,
    CrashPoint,
    enumerate_crash_points,
)
from repro.storage.engine import Database
from repro.workload.chaos import resource_snapshot
from repro.workload.documents import benchmark_document, document_uri
from repro.workload.rules import comp_rule, con_rule, con_token

__all__ = [
    "crash_workload",
    "batch_image",
    "CrashRunResult",
    "CrashSweepReport",
    "run_crash_scenario",
    "run_crash_sweep",
]


def crash_workload(seed: int, documents: int = 6) -> list[tuple]:
    """The scripted operation list for one seed.

    Deterministic in the seed alone, so the baseline and every crashed
    run execute the identical workload.  Mixes the operation kinds whose
    crash-atomicity matters: subscriptions (with immediate initial
    delivery), registrations, updates that move resources across match
    thresholds (match, unmatch and contains-rule traffic alike) and a
    deletion (broadcast notifications plus multi-table removal).
    """
    rng = random.Random(seed)
    token = con_token(1)
    ops: list[tuple] = [
        ("subscribe", comp_rule(2)),
        ("subscribe", con_rule(1)),
    ]
    def synth() -> int:
        return rng.randint(0, 8)

    def host(index: int) -> str | None:
        # About half the documents embed the CON token in their host.
        if rng.random() < 0.5:
            return f"host{index}.{token}.example.org"
        return None

    for index in range(documents):
        ops.append(("register", index, synth(), rng.randint(10, 900),
                    host(index)))
    # A mid-stream subscription exercises initial-batch delivery from
    # current matches inside the crash window.
    ops.append(("subscribe", comp_rule(5)))
    for index in rng.sample(range(documents), min(3, documents)):
        ops.append(("register", index, synth(), rng.randint(10, 900),
                    host(index)))
    ops.append(("delete", rng.randrange(documents)))
    return ops


def _resource_image(resource: Resource) -> dict:
    return {
        "uri": str(resource.uri),
        "class": resource.rdf_class,
        "properties": {
            name: sorted(str(value) for value in resource.get(name))
            for name in sorted(resource.property_names())
        },
    }


def batch_image(batch: NotificationBatch) -> dict:
    """A canonical, comparable image of one applied batch."""
    notifications = []
    for notification in batch.notifications:
        if notification.kind == "match":
            notifications.append({
                "kind": "match",
                "sub_id": notification.sub_id,
                "rule": notification.rule_text,
                "resources": [
                    _resource_image(resource)
                    for resource in notification.payload.all_resources()
                ],
            })
        elif notification.kind == "unmatch":
            notifications.append({
                "kind": "unmatch",
                "sub_id": notification.sub_id,
                "rule": notification.rule_text,
                "uri": str(notification.uri),
            })
        else:
            notifications.append({
                "kind": "delete",
                "uri": str(notification.uri),
            })
    return {
        "source": batch.source,
        "seq": batch.seq,
        "subscriber": batch.subscriber,
        "notifications": notifications,
    }


@dataclass
class CrashRunResult:
    """Everything the differential check needs from one run."""

    stream: list[dict] = field(default_factory=list)
    cache: list[tuple] = field(default_factory=list)
    audit_findings: list[str] = field(default_factory=list)
    crash: CrashPoint | None = None
    #: Whether the installed plan actually fired.
    crashed: bool = False
    #: Crashes survived (restart + recovery cycles).
    recoveries: int = 0
    #: Total repairs reported by the startup recovery passes.
    repairs: int = 0
    #: Boundary totals observed by the run's (counting) crash plan.
    statements: int = 0
    commits: int = 0


def _new_provider(
    db: Database,
    schema: Schema,
    contains_index: str,
    parallelism: int,
    recovery: str = "off",
    triggering: str = "sql",
) -> MetadataProvider:
    return MetadataProvider(
        schema,
        name="mdp",
        db=db,
        durable_delivery=True,
        contains_index=contains_index,
        parallelism=parallelism,
        recovery=recovery,
        triggering=triggering,
    )


def _apply(provider: MetadataProvider, lmr: LocalMetadataRepository,
           op: tuple) -> None:
    kind = op[0]
    if kind == "subscribe":
        lmr.subscribe(op[1])
    elif kind == "register":
        __, index, synth_value, memory, server_host = op
        provider.register_document(
            benchmark_document(
                index,
                synth_value=synth_value,
                memory=memory,
                server_host=server_host,
            )
        )
    elif kind == "delete":
        provider.delete_document(document_uri(op[1]))
    else:  # pragma: no cover - workload generator is closed
        raise ValueError(f"unknown workload op {kind!r}")


def run_crash_scenario(
    seed: int,
    crash_point: CrashPoint | None = None,
    contains_index: str = "scan",
    parallelism: int = 1,
    documents: int = 6,
    triggering: str = "sql",
) -> CrashRunResult:
    """One workload run, optionally killed at ``crash_point``.

    Without a crash point a targetless counting plan is installed, so
    the result carries the run's statement/commit boundary totals — the
    input of :func:`~repro.storage.durability.enumerate_crash_points`.
    """
    schema = objectglobe_schema()
    db = Database(metrics=None)
    result = CrashRunResult(crash=crash_point)
    provider = _new_provider(
        db, schema, contains_index, parallelism, triggering=triggering
    )
    lmr = LocalMetadataRepository("lmr", provider)

    def attach(to_provider: MetadataProvider) -> None:
        def handler(batch: NotificationBatch) -> None:
            if lmr.apply_batch(batch):
                result.stream.append(batch_image(batch))

        to_provider.connect_subscriber(lmr.name, handler)

    attach(provider)
    plan = crash_point.plan() if crash_point is not None else CrashPlan()
    db.install_crash_plan(plan)
    try:
        for op in crash_workload(seed, documents):
            recovered_this_op = False
            while True:
                try:
                    _apply(provider, lmr, op)
                    break
                except CrashError:
                    result.crashed = True
                    result.recoveries += 1
                    recovered_this_op = True
                    db.clear_crash_plan()
                    provider.close()
                    provider = _new_provider(
                        db, schema, contains_index, parallelism,
                        recovery="auto", triggering=triggering,
                    )
                    report = provider.last_recovery
                    assert report is not None
                    result.repairs += report.repaired
                    result.audit_findings.extend(
                        f"[{d.code}] {d.message}"
                        for d in report.findings_after
                    )
                    lmr.reattach(provider)
                    attach(provider)
                    provider.deliver_pending()
                except (SubscriptionError, DocumentNotFoundError):
                    if recovered_this_op:
                        # The crashed attempt had already committed;
                        # the retry is redundant by design.
                        break
                    raise
    finally:
        live_plan = db.crash_plan
        if live_plan is not None:
            result.statements = live_plan.statements_seen
            result.commits = live_plan.commits_seen
            db.clear_crash_plan()
        provider.close()
    result.audit_findings.extend(
        f"[{d.code}] {d.message}" for d in audit_database(db).diagnostics
    )
    result.cache = sorted(
        resource_snapshot(resource) for resource in lmr.cache.resources()
    )
    db.close()
    return result


@dataclass
class CrashSweepReport:
    """Outcome of a full crash-point sweep for one configuration."""

    seed: int
    contains_index: str
    parallelism: int
    triggering: str = "sql"
    statements: int = 0
    commits: int = 0
    points_tested: int = 0
    points_fired: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.failures)} FAILURE(S)"
        return (
            f"seed={self.seed} contains_index={self.contains_index} "
            f"parallelism={self.parallelism} "
            f"triggering={self.triggering}: {self.points_tested} crash "
            f"point(s) over {self.statements} statements / "
            f"{self.commits} commits — {status}"
        )


def run_crash_sweep(
    seed: int,
    contains_index: str = "scan",
    parallelism: int = 1,
    statement_stride: int = 5,
    documents: int = 6,
    triggering: str = "sql",
) -> CrashSweepReport:
    """Kill the workload at every enumerated boundary and diff each run
    against the never-crashed baseline."""
    baseline = run_crash_scenario(
        seed,
        None,
        contains_index=contains_index,
        parallelism=parallelism,
        documents=documents,
        triggering=triggering,
    )
    report = CrashSweepReport(seed, contains_index, parallelism, triggering)
    report.statements = baseline.statements
    report.commits = baseline.commits
    if baseline.audit_findings:
        report.failures.append(
            f"baseline audit not clean: {baseline.audit_findings}"
        )
    points = enumerate_crash_points(
        baseline.statements, baseline.commits, statement_stride
    )
    for point in points:
        result = run_crash_scenario(
            seed,
            point,
            contains_index=contains_index,
            parallelism=parallelism,
            documents=documents,
            triggering=triggering,
        )
        report.points_tested += 1
        if result.crashed:
            report.points_fired += 1
        else:
            report.failures.append(f"{point}: plan never fired")
            continue
        if result.audit_findings:
            report.failures.append(
                f"{point}: audit findings after recovery: "
                f"{result.audit_findings}"
            )
        if result.stream != baseline.stream:
            report.failures.append(
                f"{point}: applied notification stream diverged "
                f"({len(result.stream)} vs {len(baseline.stream)} batches)"
            )
        if result.cache != baseline.cache:
            report.failures.append(
                f"{point}: LMR cache diverged "
                f"({len(result.cache)} vs {len(baseline.cache)} resources)"
            )
    return report


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Crash-recovery differential oracle sweep"
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--contains-index", choices=("scan", "trigram"), default="scan"
    )
    parser.add_argument("--parallelism", type=int, default=1)
    parser.add_argument(
        "--triggering", choices=("sql", "counting"), default="sql"
    )
    parser.add_argument(
        "--stride", type=int, default=5,
        help="test every Nth statement boundary (commits: all)",
    )
    parser.add_argument("--documents", type=int, default=6)
    args = parser.parse_args(argv)
    report = run_crash_sweep(
        args.seed,
        contains_index=args.contains_index,
        parallelism=args.parallelism,
        statement_stride=args.stride,
        documents=args.documents,
        triggering=args.triggering,
    )
    print(report.summary())
    for failure in report.failures:
        print(f"  FAIL {failure}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
