"""Socket-level chaos: kill -9 a served MDP mid-stream, then converge.

The simulated chaos scenario (:mod:`repro.workload.chaos`) proves the
reliability layers converge under injected link faults; this module
proves the same contract against *real* failure: an actual
``python -m repro.mdv serve`` MDP process killed with SIGKILL halfway
through a seeded registration stream, then restarted on the same port
and database.  No graceful drain, no flushed buffers — whatever
survives is what the durability knobs (``durability="safe"``,
``durable_delivery=True``, ``recovery="auto"``) actually persisted.

Convergence contract: after the restart, client-side retries (a
network error means the request *may not* have been processed —
re-registering a committed document is an empty diff, so no duplicate
notifications), the Outbox redrive on recovery, the LMR daemon's
dedup floor, and one ``resync``, the LMR cache must be byte-identical
(same canonical digest) to the cache of an uninterrupted run of the
same seed.

The tier-1 test runs a small stream; the nightly lane runs this
module's CLI at full scale::

    python -m repro.workload.socket_chaos --seed 7 --documents 120 --kill-at 60
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import random
import re
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field

from repro.errors import NetworkError
from repro.mdv.client import ServiceClient
from repro.net.codec import dumps
from repro.workload.chaos import resource_snapshot
from repro.workload.documents import benchmark_document

__all__ = [
    "ServedNode",
    "SocketChaosReport",
    "launch_node",
    "main",
    "run_socket_chaos",
]

_READY_PATTERN = re.compile(r"MDV-SERVE READY .*port=(\d+)")

#: The subscription every run installs before the stream starts.
CHAOS_RULE = "search CycleProvider c register c"


@dataclass
class ServedNode:
    """One ``mdv serve`` subprocess and how to reach / restart it."""

    name: str
    config_path: str
    process: subprocess.Popen
    port: int

    def kill_hard(self) -> None:
        """SIGKILL — no drain, no cleanup; the crash under test."""
        self.process.kill()
        self.process.wait(timeout=30)

    def terminate(self) -> None:
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
            try:
                self.process.wait(timeout=30)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck
                self.process.kill()
                self.process.wait(timeout=30)


def launch_node(config_path: str, timeout_s: float = 30.0) -> ServedNode:
    """Start ``python -m repro.mdv serve`` and wait for its READY line."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.mdv", "serve", "--config", config_path],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env={**os.environ, "PYTHONUNBUFFERED": "1"},
    )
    assert process.stdout is not None
    deadline = time.perf_counter() + timeout_s
    line = process.stdout.readline()
    while line:
        match = _READY_PATTERN.search(line)
        if match:
            with open(config_path, encoding="utf-8") as handle:
                name = json.load(handle)["name"]
            return ServedNode(name, config_path, process, int(match.group(1)))
        if time.perf_counter() > deadline:  # pragma: no cover - hang
            break
        line = process.stdout.readline()
    process.kill()
    _, stderr = process.communicate(timeout=10)
    raise RuntimeError(
        f"serve daemon for {config_path!r} never became ready: {stderr[-2000:]}"
    )


@dataclass
class SocketChaosReport:
    """Everything the convergence check needs from one run."""

    seed: int
    interrupted: bool
    #: Canonical digest of the LMR cache (the convergence oracle).
    cache_digest: str = ""
    #: Resource URI -> canonical image, for readable divergence output.
    cache_snapshot: dict[str, tuple] = field(default_factory=dict)
    lmr_stats: dict[str, int] = field(default_factory=dict)
    #: Registrations re-sent after a network error (interrupted runs).
    retries: int = 0
    duplicates_ignored: int = 0

    def summary(self) -> str:
        return (
            f"seed={self.seed} interrupted={self.interrupted} "
            f"resources={len(self.cache_snapshot)} retries={self.retries} "
            f"duplicates_ignored={self.duplicates_ignored} "
            f"digest={self.cache_digest[:12]}"
        )


def _write_config(path: str, config: dict) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(config, handle)
    return path


def _document_stream(seed: int, documents: int):
    """The seeded workload: fresh registrations mixed with updates."""
    rng = random.Random(seed)
    for ordinal in range(documents):
        if ordinal and rng.random() < 0.3:
            index = rng.randrange(ordinal)  # update an earlier document
        else:
            index = ordinal
        yield benchmark_document(
            index,
            memory=rng.randrange(1024),
            server_host=f"host-{rng.randrange(64)}.example",
        )


def _register_with_retry(
    client: ServiceClient, document, max_attempts: int = 60,
    backoff_s: float = 0.25,
) -> int:
    """Register, retrying while the daemon is down; returns retry count."""
    for attempt in range(max_attempts):
        try:
            client.register_document(document)
            return attempt
        except NetworkError:
            if attempt == max_attempts - 1:
                raise
            time.sleep(backoff_s)
    return max_attempts  # pragma: no cover - loop always returns/raises


def run_socket_chaos(
    seed: int,
    documents: int = 20,
    kill_at: int | None = None,
    workdir: str | None = None,
) -> SocketChaosReport:
    """One full scenario run; ``kill_at=None`` is the clean baseline."""
    interrupted = kill_at is not None
    with tempfile.TemporaryDirectory() as tempdir:
        base = str(workdir) if workdir is not None else tempdir
        os.makedirs(base, exist_ok=True)
        report = SocketChaosReport(seed=seed, interrupted=interrupted)
        mdp_config = _write_config(
            os.path.join(base, "mdp.json"),
            {
                "name": "mdp-1",
                "role": "mdp",
                "port": 0,
                "db_path": os.path.join(base, "mdp-1.db"),
                "durability": "safe",
                "durable_delivery": True,
                "recovery": "auto",
                "peers": {},
            },
        )
        mdp = launch_node(mdp_config)
        lmr_config = _write_config(
            os.path.join(base, "lmr.json"),
            {
                "name": "lmr-a",
                "role": "lmr",
                "port": 0,
                "provider": "mdp-1",
                "peers": {"mdp-1": ["127.0.0.1", mdp.port]},
            },
        )
        lmr = launch_node(lmr_config)
        # The MDP must know the LMR's (OS-assigned) port: fix both ports
        # in the config and restart it — also the config the mid-stream
        # restart reuses, so the crashed and reborn process are
        # indistinguishable to the LMR.
        mdp.terminate()
        _write_config(
            mdp_config,
            {
                "name": "mdp-1",
                "role": "mdp",
                "port": mdp.port,
                "db_path": os.path.join(base, "mdp-1.db"),
                "durability": "safe",
                "durable_delivery": True,
                "recovery": "auto",
                "peers": {"lmr-a": ["127.0.0.1", lmr.port]},
            },
        )
        mdp = launch_node(mdp_config)
        lmr_client = ServiceClient("chaos-driver", "lmr-a", "127.0.0.1",
                                   lmr.port)
        mdp_client = ServiceClient("chaos-driver", "mdp-1", "127.0.0.1",
                                   mdp.port, request_timeout_s=10.0)
        try:
            lmr_client.call("subscribe", CHAOS_RULE)
            for ordinal, document in enumerate(
                _document_stream(seed, documents)
            ):
                if interrupted and ordinal == kill_at:
                    mdp.kill_hard()  # SIGKILL mid-stream: the crash
                    mdp = launch_node(mdp_config)
                report.retries += _register_with_retry(mdp_client, document)
            lmr_client.call("resync")
            stats = lmr_client.call("stats")
            report.lmr_stats = dict(stats)
            report.duplicates_ignored = int(stats.get("duplicates_ignored", 0))
            resources = lmr_client.call("query", CHAOS_RULE.split(" register")[0])
            report.cache_snapshot = {
                str(resource.uri): resource_snapshot(resource)
                for resource in resources
            }
            canonical = dumps(
                [report.cache_snapshot[uri]
                 for uri in sorted(report.cache_snapshot)]
            )
            report.cache_digest = hashlib.sha256(canonical).hexdigest()
        finally:
            lmr_client.close()
            mdp_client.close()
            mdp.terminate()
            lmr.terminate()
        return report


def compare_runs(
    interrupted: SocketChaosReport, clean: SocketChaosReport
) -> list[str]:
    """The convergence assertions; returns human-readable failures."""
    failures: list[str] = []
    if interrupted.cache_digest != clean.cache_digest:
        missing = sorted(
            set(clean.cache_snapshot) - set(interrupted.cache_snapshot)
        )
        extra = sorted(
            set(interrupted.cache_snapshot) - set(clean.cache_snapshot)
        )
        failures.append(
            f"LMR caches diverged (missing={missing[:5]} extra={extra[:5]})"
        )
    received = interrupted.lmr_stats.get("batches_received", 0)
    applied = interrupted.lmr_stats.get("batches_applied", 0)
    if received - applied != interrupted.duplicates_ignored:
        failures.append(
            f"dedup counters inconsistent: received={received} "
            f"applied={applied} duplicates={interrupted.duplicates_ignored}"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workload.socket_chaos",
        description="kill -9 convergence check against real serve daemons",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--documents", type=int, default=120)
    parser.add_argument("--kill-at", type=int, default=None,
                        help="SIGKILL the MDP before this ordinal "
                             "(default: documents // 2)")
    args = parser.parse_args(argv)
    kill_at = args.kill_at if args.kill_at is not None else args.documents // 2
    print(f"socket chaos, seed {args.seed}: {args.documents} documents, "
          f"SIGKILL at {kill_at}")
    interrupted = run_socket_chaos(args.seed, args.documents, kill_at=kill_at)
    clean = run_socket_chaos(args.seed, args.documents, kill_at=None)
    print("interrupted:", interrupted.summary())
    print("clean:      ", clean.summary())
    failures = compare_runs(interrupted, clean)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"ok: converged after a kill -9 at ordinal {kill_at} "
              f"({interrupted.retries} registrations retried, "
              f"{interrupted.duplicates_ignored} duplicate batches ignored)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
