"""Full-text support for ``contains`` triggering rules.

The paper concedes that ``contains`` (and range) rules cannot use the
``(class, property, value)`` index: their triggering cost grows with the
rule base size and the match percentage (Section 3.4, Figures 13 and
15).  This package removes that scan for text predicates, in the
direction of Zervakis et al. (*Full-text Support for Publish/Subscribe
Ontology Systems*): the *needles* of registered ``contains`` rules are
tokenized into trigrams (:mod:`repro.text.ngrams`) and kept in an
inverted index (:mod:`repro.text.index`), so a published value probes
the postings for candidate rules instead of scanning every rule sharing
``(class, property)``.  Candidates are verified against the exact
substring semantics, so results are always identical to the scan —
see docs/TEXT_INDEX.md for the exactness argument.
"""

from repro.text.index import (
    CONTAINS_INDEX_MODES,
    drop_contains_rule,
    index_contains_rule,
    match_contains_indexed,
)
from repro.text.ngrams import (
    TRIGRAM_LENGTH,
    contains_match,
    contains_sql_condition,
    is_indexable,
    trigrams,
)

__all__ = [
    "CONTAINS_INDEX_MODES",
    "TRIGRAM_LENGTH",
    "contains_match",
    "contains_sql_condition",
    "drop_contains_rule",
    "index_contains_rule",
    "is_indexable",
    "match_contains_indexed",
    "trigrams",
]
