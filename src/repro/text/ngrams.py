"""Trigram tokenization and the one canonical ``contains`` semantics.

Every path that evaluates a ``contains`` predicate — the filter's
triggering join, the SQL query translator and the LMR's in-memory
evaluator — must agree on what "contains" means.  The semantics, stated
once and enforced through the helpers below:

- **Exact substring over canonical string values.**  ``needle contains``
  matches iff the needle occurs verbatim in the value: case-sensitive,
  accent-sensitive, compared codepoint by codepoint.  There is no
  normalization, collation or word splitting.
- **The empty needle matches every value.**  Python's ``'' in x`` is
  ``True`` and SQLite's ``instr(x, '') = 1 > 0`` — both backends agree
  by construction.
- **Values and needles are compared as text**, even when a needle
  happens to look numeric; the SQL renderer must therefore quote
  ``contains`` constants unconditionally (SQLite's ``instr`` applies
  numeric affinity to unquoted operands: ``instr('12345', 234) = 2``).

:func:`contains_match` is the Python-side implementation and
:func:`contains_sql_condition` renders the equivalent SQL fragment;
``tests/query/test_contains_crosspath.py`` asserts that all consumers
produce identical matches.

Tokenization for the inverted index (:mod:`repro.text.index`) is plain
character trigrams — every window of :data:`TRIGRAM_LENGTH` consecutive
codepoints.  The exactness lemma the index relies on: if ``needle`` is a
substring of ``value`` and ``len(needle) >= TRIGRAM_LENGTH``, every
trigram of ``needle`` is also a trigram of ``value`` — so probing for
rules whose trigram set is a subset of the value's trigram set can only
*over*-approximate the true matches, never miss one.  Needles shorter
than a trigram have no trigrams and fall back to the scan
(:func:`is_indexable`).
"""

from __future__ import annotations

from functools import lru_cache

__all__ = [
    "TRIGRAM_LENGTH",
    "trigrams",
    "is_indexable",
    "contains_match",
    "contains_sql_condition",
]

#: Window length of the n-gram tokenizer.  Three is the classic choice
#: (pg_trgm, code-search trigram indexes): long enough that postings
#: lists stay selective, short enough that most real needles qualify.
TRIGRAM_LENGTH = 3


@lru_cache(maxsize=4096)
def trigrams(text: str) -> frozenset[str]:
    """The set of character trigrams of ``text`` (empty when too short).

    Memoized: benchmark workloads and real metadata alike probe the same
    property values over and over, and needles are tokenized once per
    registration anyway.
    """
    if len(text) < TRIGRAM_LENGTH:
        return frozenset()
    return frozenset(
        text[i : i + TRIGRAM_LENGTH]
        for i in range(len(text) - TRIGRAM_LENGTH + 1)
    )


def is_indexable(needle: str) -> bool:
    """Whether a ``contains`` needle can use the trigram index.

    Shorter needles have no trigrams; rules carrying them stay on the
    scan join (and the linter flags them with ``MDV039``).
    """
    return len(needle) >= TRIGRAM_LENGTH


def contains_match(value: str, needle: str) -> bool:
    """The canonical ``contains`` semantics (see the module docstring)."""
    return needle in value


def contains_sql_condition(value_sql: str, needle_sql: str) -> str:
    """The SQL fragment equivalent to :func:`contains_match`.

    Both operands are already-rendered SQL expressions; string constants
    must be quoted by the caller so no numeric affinity applies.
    ``instr`` agrees with Python ``in`` on every case the language can
    produce: case sensitivity, UTF-8 codepoints and the empty needle.
    """
    return f"instr({value_sql}, {needle_sql}) > 0"
