"""The trigram inverted index over ``contains``-rule needles.

Two tables (DDL in :mod:`repro.storage.schema`) mirror the paper's
``FilterRulesCON`` for the indexable subset of the rules:

- ``filter_rules_con_tri`` — one row per (rule, extension class) whose
  needle has at least one trigram, carrying the needle and its distinct
  trigram count;
- ``text_postings`` — the inverted index proper: ``(trigram, rule_id)``.

Matching one published value then works like any text index probe: the
value's trigram set (shipped as one ``json_each`` parameter, so a probe
writes nothing) is joined against the postings, and the rules whose
*entire* trigram set was found survive (``COUNT(*) = trigram_count``).
Candidates are verified with the canonical substring check, so false
positives (needle trigrams scattered through the value without the
needle occurring contiguously) are filtered out and the result is
exactly the scan's — the probe cost scales with the value's trigram
postings, not with the rule base size.

Rules with needles shorter than a trigram never enter these tables;
the matcher keeps them on the paper's scan join
(:data:`repro.filter.matcher.TRIGGERING_JOINS` restricted to
``length(fr.value) < 3`` in trigram mode), so the union of both paths is
complete.  The registry maintains postings on registration *and*
unregistration regardless of any engine's ``contains_index`` mode — the
index is a property of the store, the knob only selects the read path.

Instruments (in the caller's registry): ``text.candidates``,
``text.verified``, ``text.false_positives``, ``text.fallback_rules``
(needles registered too short to index) and the per-probe latency
histogram ``text.probe_ms``.
"""

from __future__ import annotations

import json
import time
from collections.abc import Iterable

from repro.obs.metrics import MetricsRegistry, default_registry
from repro.storage.engine import Database
from repro.text.ngrams import contains_match, is_indexable, trigrams

__all__ = [
    "CONTAINS_INDEX_MODES",
    "index_contains_rule",
    "drop_contains_rule",
    "match_contains_indexed",
]

#: Valid values of the ``contains_index=`` knob on the filter engine and
#: the query translator: ``"scan"`` is the paper's O(rules) join (the
#: default, for fidelity), ``"trigram"`` the indexed probe.
CONTAINS_INDEX_MODES = ("scan", "trigram")

#: The probe: postings matched by the value's trigrams, grouped per
#: rule, kept when the whole needle-trigram set was found.  The value's
#: trigrams arrive as a JSON array parameter (``json_each``) — no
#: scratch table, no writes.  ``CROSS JOIN`` pins the join order to
#: *probe the postings per value trigram*; left to cost estimates the
#: planner prefers scanning all postings against the (statistics-free)
#: trigram set, which is O(postings) per probe — measured 5× slower.
_PROBE_SQL = (
    "SELECT fr.rule_id, fr.value FROM ("
    "  SELECT tp.rule_id AS rule_id, COUNT(*) AS matched"
    "  FROM json_each(?) g CROSS JOIN text_postings tp"
    "  WHERE tp.trigram = g.value"
    "  GROUP BY tp.rule_id"
    ") c JOIN filter_rules_con_tri fr ON fr.rule_id = c.rule_id "
    "WHERE fr.class = ? AND fr.property = ? "
    "AND fr.trigram_count = c.matched"
)


def index_contains_rule(
    db: Database,
    rule_id: int,
    classes: Iterable[str],
    prop: str,
    needle: str,
    metrics: MetricsRegistry | None = None,
) -> bool:
    """Add index rows for one registered ``contains`` rule.

    Returns ``False`` (and counts ``text.fallback_rules``) when the
    needle is too short to index — the rule stays scan-only.
    """
    registry = metrics if metrics is not None else default_registry()
    if not is_indexable(needle):
        registry.counter("text.fallback_rules").inc()
        return False
    grams = sorted(trigrams(needle))
    # OR IGNORE: semantic property-synonym expansion indexes the same
    # needle under several properties of one rule — the postings rows
    # (and, on re-expansion, the per-class rows) collide harmlessly.
    db.executemany(
        "INSERT OR IGNORE INTO filter_rules_con_tri "
        "(rule_id, class, property, value, trigram_count) "
        "VALUES (?, ?, ?, ?, ?)",
        ((rule_id, cls, prop, needle, len(grams)) for cls in classes),
    )
    db.executemany(
        "INSERT OR IGNORE INTO text_postings (trigram, rule_id) VALUES (?, ?)",
        ((gram, rule_id) for gram in grams),
    )
    return True


def drop_contains_rule(db: Database, rule_id: int) -> None:
    """Remove a rule's index rows (no-op for never-indexed rules)."""
    db.execute(
        "DELETE FROM filter_rules_con_tri WHERE rule_id = ?", (rule_id,)
    )
    db.execute("DELETE FROM text_postings WHERE rule_id = ?", (rule_id,))


def match_contains_indexed(
    db: Database, metrics: MetricsRegistry | None = None
) -> list[tuple[str, int]]:
    """Match ``filter_input`` against the indexed ``contains`` rules.

    Returns deduplicated ``(uri_reference, rule_id)`` hits, exactly the
    pairs the scan join over the indexable rules would produce.  The
    outer loop runs once per *distinct* ``(class, property, value)``
    triple that any indexed rule could possibly see — verification cost
    scales with distinct values times candidates, not with input rows.
    """
    registry = metrics if metrics is not None else default_registry()
    m_candidates = registry.counter("text.candidates")
    m_verified = registry.counter("text.verified")
    m_false = registry.counter("text.false_positives")
    m_probe = registry.histogram("text.probe_ms")

    values = db.query_all(
        "SELECT DISTINCT fi.class, fi.property, fi.value "
        "FROM filter_input fi "
        "WHERE EXISTS (SELECT 1 FROM filter_rules_con_tri fr "
        "WHERE fr.class = fi.class AND fr.property = fi.property)"
    )
    hits: dict[tuple[str, int], None] = {}
    for row in values:
        cls, prop, value = str(row[0]), str(row[1]), str(row[2])
        started = time.perf_counter()
        verified: list[int] = []
        grams = trigrams(value)
        # A value shorter than a trigram cannot contain any indexable
        # needle (every indexed needle is at least trigram-length).
        if grams:
            payload = json.dumps(sorted(grams))
            candidates = db.query_all(_PROBE_SQL, (payload, cls, prop))
            m_candidates.inc(len(candidates))
            for candidate in candidates:
                if contains_match(value, str(candidate[1])):
                    verified.append(int(candidate[0]))
                else:
                    m_false.inc()
            m_verified.inc(len(verified))
        m_probe.observe((time.perf_counter() - started) * 1000.0)
        if verified:
            uri_rows = db.query_all(
                "SELECT DISTINCT uri_reference FROM filter_input "
                "WHERE class = ? AND property = ? AND value = ?",
                (cls, prop, value),
            )
            for uri_row in uri_rows:
                uri = str(uri_row[0])
                for matched_rule in verified:
                    hits[(uri, matched_rule)] = None
    return list(hits)
