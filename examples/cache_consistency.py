"""Cache consistency walkthrough: updates, deletions, strong references.

Reenacts Section 3.5 of the paper against a live LMR cache:

1. a resource stops matching a rule — evicted, unless another rule
   still matches it;
2. a resource starts matching — inserted;
3. a resource keeps matching but its (strongly referenced) content
   changed — refreshed in place;
4. deletion of a referenced resource — the referencing resource is
   re-evaluated, strong-reference copies are garbage-collected.

Run:  python examples/cache_consistency.py
"""

from repro import (
    Document,
    LocalMetadataRepository,
    MetadataProvider,
    URIRef,
    objectglobe_schema,
)


def doc_with(index: int, host: str, memory: int) -> Document:
    doc = Document(f"doc{index}.rdf")
    provider = doc.new_resource("host", "CycleProvider")
    provider.add("serverHost", host)
    provider.add("serverInformation", URIRef(f"doc{index}.rdf#info"))
    info = doc.new_resource("info", "ServerInformation")
    info.add("memory", memory)
    info.add("cpu", 600)
    return doc


def show(step: str, lmr: LocalMetadataRepository) -> None:
    cached = {
        str(uri): {
            "rules": len(lmr.cache.get(uri).matched_subs),
            "strong_refs": lmr.cache.get(uri).strong_refcount,
        }
        for uri in lmr.cache.uris()
    }
    print(f"{step}\n  cache = {cached}")


def main() -> None:
    schema = objectglobe_schema()
    mdp = MetadataProvider(schema)
    lmr = LocalMetadataRepository("lmr", mdp)

    memory_rule = (
        "search CycleProvider c register c "
        "where c.serverInformation.memory > 64"
    )
    passau_rule = (
        "search CycleProvider c register c "
        "where c.serverHost contains 'passau'"
    )
    lmr.subscribe(memory_rule)
    lmr.subscribe(passau_rule)

    mdp.register_document(doc_with(1, "pirates.uni-passau.de", 92))
    show("registered doc1 (passau, 92MB) — matches BOTH rules", lmr)
    assert len(lmr.cache.get("doc1.rdf#host").matched_subs) == 2

    # Case 1: stops matching ONE rule — must stay (other rule holds).
    mdp.register_document(doc_with(1, "pirates.uni-passau.de", 16))
    show("memory drops to 16 — memory rule unmatches, passau rule holds", lmr)
    assert len(lmr.cache.get("doc1.rdf#host").matched_subs) == 1

    # Case 3: still matching, content changed — refreshed in place.
    mdp.register_document(doc_with(1, "pirates.uni-passau.de", 48))
    cached_memory = lmr.cache.resource("doc1.rdf#info").get_one("memory")
    show(f"memory now 48 — cache refreshed (sees {cached_memory})", lmr)
    assert cached_memory.value == 48

    # Stops matching the LAST rule — evicted, strong child collected.
    mdp.register_document(doc_with(1, "relocated.tum.de", 48))
    show("host moves to tum.de — evicted; strong child GC'd", lmr)
    assert len(lmr.cache) == 0

    # Case 2: starts matching.
    mdp.register_document(doc_with(1, "back.uni-passau.de", 512))
    show("host back in passau with 512MB — re-enters, both rules", lmr)

    # Deletion of the referenced resource re-evaluates the referrer.
    trimmed = doc_with(1, "back.uni-passau.de", 512)
    trimmed.remove(URIRef("doc1.rdf#info"))
    mdp.register_document(trimmed)
    show("ServerInformation deleted — memory rule unmatches, copy dropped", lmr)
    assert "doc1.rdf#info" not in lmr.cache
    assert len(lmr.cache.get("doc1.rdf#host").matched_subs) == 1

    # Unsubscribing drops the remaining coverage.
    lmr.unsubscribe(passau_rule)
    show("unsubscribed the passau rule", lmr)
    assert len(lmr.cache) == 0

    report = lmr.collect_garbage(cycles=True)
    print(f"\nfinal GC pass: {report}")
    print("cache consistency walkthrough OK")


if __name__ == "__main__":
    main()
