"""Operating MDV: persistence, batch registration, TTL mode, statistics.

The systems side of the reproduction, beyond the paper's algorithms:

1. a **file-backed** MDP that survives a restart with documents, rules
   and subscriptions intact;
2. the **periodic batching** mode the paper's evaluation motivates
   ("to process several documents in one batch"), via
   :class:`~repro.mdv.batching.BatchingRegistrar`;
3. the **TTL consistency** alternative of Section 3.5 — cheap updates,
   staleness bounded by the expiry pass;
4. the statistics snapshot operators monitor.

Run:  python examples/operating_mdv.py
"""

import tempfile
from pathlib import Path

from repro import (
    Document,
    LocalMetadataRepository,
    MetadataProvider,
    URIRef,
    objectglobe_schema,
)
from repro.mdv.batching import BatchingRegistrar
from repro.mdv.stats import collect_statistics
from repro.storage.engine import Database

RULE = (
    "search CycleProvider c register c "
    "where c.serverInformation.memory > 64"
)


def make_doc(index: int, memory: int) -> Document:
    doc = Document(f"doc{index}.rdf")
    provider = doc.new_resource("host", "CycleProvider")
    provider.add("serverHost", f"host{index}.uni-passau.de")
    provider.add("serverInformation", URIRef(f"doc{index}.rdf#info"))
    info = doc.new_resource("info", "ServerInformation")
    info.add("memory", memory)
    info.add("cpu", 600)
    return doc


def main() -> None:
    schema = objectglobe_schema()
    with tempfile.TemporaryDirectory() as tmp:
        db_path = str(Path(tmp) / "mdp.sqlite")

        # --- 1. run a provider, then restart it ------------------------
        mdp = MetadataProvider(schema, db=Database(db_path))
        mdp.connect_subscriber("ops-lmr", lambda batch: None)
        mdp.subscribe("ops-lmr", RULE)
        mdp.register_document(make_doc(0, memory=92))
        mdp.db.commit()
        mdp.db.close()
        print("provider stopped with 1 document on disk")

        mdp = MetadataProvider(schema, db=Database(db_path))
        print(
            "after restart:", mdp.document_count(), "document(s),",
            len(mdp.registry.subscriptions_of("ops-lmr")), "subscription(s)",
        )
        assert mdp.document_count() == 1

        # --- 2. batched imports ----------------------------------------
        lmr = LocalMetadataRepository("ops-lmr", mdp)
        lmr.subscribe(RULE + " and c.serverInformation.cpu > 100")
        registrar = BatchingRegistrar(mdp, max_batch=4, max_delay=3)
        for index in range(1, 8):
            registrar.submit(make_doc(index, memory=64 + index * 16))
        registrar.tick()
        registrar.flush()
        print(
            f"batched import: {registrar.stats.flushes} flushes, "
            f"avg batch {registrar.stats.average_batch_size:.1f}, "
            f"{mdp.document_count()} documents total"
        )
        assert mdp.document_count() == 8

        # --- 3. statistics ----------------------------------------------
        print("\n" + collect_statistics(mdp).summary())
        mdp.db.close()

    # --- 4. TTL consistency mode --------------------------------------
    print("\n--- TTL consistency mode ---")
    ttl_mdp = MetadataProvider(schema, consistency="ttl")
    ttl_lmr = LocalMetadataRepository("ttl-lmr", ttl_mdp)
    ttl_lmr.subscribe(RULE)
    ttl_mdp.register_document(make_doc(0, memory=92))
    ttl_mdp.register_document(make_doc(0, memory=16))  # stops matching
    stale = "doc0.rdf#host" in ttl_lmr.cache
    print("stale entry served before expiry:", stale)
    assert stale
    ttl_lmr.clock += 10
    evicted = ttl_lmr.expire(ttl=5)
    print(f"expiry pass evicted {evicted} entr(ies)")
    assert "doc0.rdf#host" not in ttl_lmr.cache
    print("\noperating MDV OK")


if __name__ == "__main__":
    main()
