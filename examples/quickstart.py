"""Quickstart: the MDV system in ~60 lines.

Sets up one Metadata Provider (MDP), one Local Metadata Repository (LMR)
subscribed to cycle providers in the 'uni-passau.de' domain, registers a
few RDF documents, and shows the cache staying consistent through an
update and a deletion.

Run:  python examples/quickstart.py
"""

from repro import (
    Document,
    LocalMetadataRepository,
    MetadataProvider,
    URIRef,
    objectglobe_schema,
)


def make_provider_document(index: int, host: str, memory: int) -> Document:
    """A document shaped like the paper's Figure 1."""
    doc = Document(f"doc{index}.rdf")
    provider = doc.new_resource("host", "CycleProvider")
    provider.add("serverHost", host)
    provider.add("serverPort", 5000 + index)
    provider.add("serverInformation", URIRef(f"doc{index}.rdf#info"))
    info = doc.new_resource("info", "ServerInformation")
    info.add("memory", memory)
    info.add("cpu", 600)
    return doc


def main() -> None:
    schema = objectglobe_schema()
    mdp = MetadataProvider(schema, name="mdp-1")
    lmr = LocalMetadataRepository("lmr-passau", mdp)

    # Subscribe: cycle providers in the Passau domain with enough memory.
    rule = (
        "search CycleProvider c register c "
        "where c.serverHost contains 'uni-passau.de' "
        "and c.serverInformation.memory > 64"
    )
    lmr.subscribe(rule)
    print(f"subscribed: {rule}\n")

    # Register metadata at the MDP; notifications flow automatically.
    mdp.register_document(make_provider_document(1, "pirates.uni-passau.de", 92))
    mdp.register_document(make_provider_document(2, "db.tum.de", 256))
    mdp.register_document(make_provider_document(3, "kat.uni-passau.de", 32))
    print("after registering 3 documents:", lmr.stats())

    # Queries are answered locally, from the cache.
    results = lmr.query("search CycleProvider c")
    print("local query results:", [str(r.uri) for r in results])
    assert [str(r.uri) for r in results] == ["doc1.rdf#host"]

    # An update can bring a resource into the cache...
    mdp.register_document(make_provider_document(3, "kat.uni-passau.de", 512))
    results = lmr.query("search CycleProvider c")
    print("after doc3 memory upgrade:", [str(r.uri) for r in results])
    assert len(results) == 2

    # ... or evict it (and its strongly referenced ServerInformation).
    mdp.register_document(make_provider_document(1, "pirates.uni-passau.de", 16))
    results = lmr.query("search CycleProvider c")
    print("after doc1 memory downgrade:", [str(r.uri) for r in results])
    assert [str(r.uri) for r in results] == ["doc3.rdf#host"]

    # Deletions propagate too.
    mdp.delete_document("doc3.rdf")
    print("after deleting doc3:", lmr.stats())
    assert lmr.query("search CycleProvider c") == []
    print("\nquickstart OK")


if __name__ == "__main__":
    main()
