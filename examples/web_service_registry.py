"""Web-service registry: MDV as a UDDI-style discovery substrate.

The paper's conclusion names web services as the next target: "For the
future we are going to focus on the support for web services and their
dynamic composition … as well as the support for such standards as UDDI
and WSDL for the description, administration, and discovery of web
services."  MDV itself is schema-generic — this example defines a
WSDL-flavoured schema (businesses publishing services with typed
operations), registers a small registry, and drives dynamic service
composition from an LMR cache:

- named rules act as reusable service categories (Section 2.3's
  "extension may be another subscription rule");
- a composition engine's LMR subscribes to the categories it needs and
  resolves a two-step pipeline locally;
- batch registration amortizes the filter over a crawl-style import.

Run:  python examples/web_service_registry.py
"""

from repro import (
    Document,
    LocalMetadataRepository,
    MetadataProvider,
    PropertyDef,
    PropertyKind,
    RefStrength,
    Schema,
    URIRef,
)


def web_service_schema() -> Schema:
    """Businesses → services → operations, WSDL/UDDI flavoured."""
    schema = Schema()
    schema.define_class(
        "Business",
        [
            PropertyDef("name", PropertyKind.STRING),
            PropertyDef("country", PropertyKind.STRING),
        ],
    )
    schema.define_class(
        "Operation",
        [
            PropertyDef("inputType", PropertyKind.STRING),
            PropertyDef("outputType", PropertyKind.STRING),
            PropertyDef("latencyMs", PropertyKind.INTEGER),
        ],
    )
    schema.define_class(
        "WebService",
        [
            PropertyDef("endpoint", PropertyKind.STRING),
            PropertyDef("category", PropertyKind.STRING),
            PropertyDef("costPerCall", PropertyKind.INTEGER),
            PropertyDef(
                "publishedBy",
                PropertyKind.REFERENCE,
                target_class="Business",
            ),
            PropertyDef(
                "operation",
                PropertyKind.REFERENCE,
                target_class="Operation",
                strength=RefStrength.STRONG,
                multivalued=True,
            ),
        ],
    )
    schema.freeze_check()
    return schema


def service_document(
    index: int,
    business: str,
    category: str,
    input_type: str,
    output_type: str,
    cost: int,
    latency: int,
) -> Document:
    doc = Document(f"svc{index}.rdf")
    company = doc.new_resource("biz", "Business")
    company.add("name", business)
    company.add("country", "DE" if index % 2 == 0 else "US")
    service = doc.new_resource("svc", "WebService")
    service.add("endpoint", f"https://{business.lower()}.example/{category}")
    service.add("category", category)
    service.add("costPerCall", cost)
    service.add("publishedBy", URIRef(f"svc{index}.rdf#biz"))
    service.add("operation", URIRef(f"svc{index}.rdf#op"))
    operation = doc.new_resource("op", "Operation")
    operation.add("inputType", input_type)
    operation.add("outputType", output_type)
    operation.add("latencyMs", latency)
    return doc


def main() -> None:
    schema = web_service_schema()
    registry = MetadataProvider(schema, name="uddi-mdp")

    # Named rules as service categories (rule-as-extension feature).
    registry.register_named_rule(
        "GeocoderServices",
        "search WebService s register s where s.category = 'geocoding'",
    )
    registry.register_named_rule(
        "FastGeocoders",
        "search GeocoderServices s register s "
        "where s.operation?.latencyMs < 100",
    )

    # The composition engine caches fast geocoders plus routing services.
    composer = LocalMetadataRepository("composer-lmr", registry)
    composer.subscribe("search FastGeocoders s register s")
    composer.subscribe(
        "search WebService s register s where s.category = 'routing' "
        "and s.costPerCall <= 3"
    )

    # A crawl imports the registry in one batch (one filter execution).
    catalogue = [
        service_document(0, "GeoCorp", "geocoding", "Address", "LatLon", 1, 40),
        service_document(1, "MapMonster", "geocoding", "Address", "LatLon", 2, 250),
        service_document(2, "RouteRus", "routing", "LatLon", "Route", 3, 120),
        service_document(3, "PathPro", "routing", "LatLon", "Route", 9, 60),
        service_document(4, "AdStats", "analytics", "Route", "Report", 1, 30),
    ]
    registry.register_documents(catalogue)
    print("registry size:", registry.document_count(), "documents")
    print("composer cache:", composer.stats(), "\n")

    # Dynamic composition: Address -> LatLon -> Route, cache-local.
    geocoders = composer.query(
        "search WebService s where s.operation?.inputType = 'Address' "
        "and s.operation?.outputType = 'LatLon'"
    )
    routers = composer.query(
        "search WebService s where s.operation?.inputType = 'LatLon' "
        "and s.operation?.outputType = 'Route'"
    )
    print("pipeline step 1 (geocoding):", [str(g.get_one("endpoint")) for g in geocoders])
    print("pipeline step 2 (routing):  ", [str(r.get_one("endpoint")) for r in routers])
    assert len(geocoders) == 1  # only the FAST geocoder was subscribed
    assert len(routers) == 1    # only the affordable router

    plan = (geocoders[0], routers[0])
    print(
        "\ncomposed plan:",
        " -> ".join(str(step.get_one("endpoint")) for step in plan),
    )

    # A price hike pushes the router out of the composer's cache.
    repriced = service_document(2, "RouteRus", "routing", "LatLon", "Route", 30, 120)
    registry.register_document(repriced)
    routers = composer.query(
        "search WebService s where s.category = 'routing'"
    )
    print("\nafter RouteRus price hike, cached routers:", len(routers))
    assert routers == []

    # And a new cheap router becomes available instantly.
    registry.register_document(
        service_document(5, "BudgetRoutes", "routing", "LatLon", "Route", 1, 200)
    )
    routers = composer.query("search WebService s where s.category = 'routing'")
    assert [str(r.get_one("endpoint")) for r in routers] == [
        "https://budgetroutes.example/routing"
    ]
    print("replacement router discovered:", str(routers[0].get_one("endpoint")))
    print("\nweb service registry OK")


if __name__ == "__main__":
    main()
