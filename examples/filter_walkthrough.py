"""The filter algorithm, step by step — the paper's Figures 3 to 9.

An annotated tour of the publish & subscribe machinery on the paper's
own worked example: rule decomposition (§3.3.1), the dependency graph
(§3.3.2), rule groups (§3.3.3), the triggering index tables (§3.3.4) and
the iteration trace of the filter run (§3.4, Figure 9).

Run:  python examples/filter_walkthrough.py
"""

from repro.filter.decompose import resources_atoms
from repro.filter.engine import FilterEngine
from repro.rdf.model import Document, URIRef
from repro.rdf.schema import objectglobe_schema
from repro.rules.decompose import decompose_rule
from repro.rules.graph import DependencyGraph
from repro.rules.normalize import normalize_rule
from repro.rules.parser import parse_rule
from repro.rules.registry import RuleRegistry
from repro.storage.engine import Database
from repro.storage.schema import create_all

RULE = (
    "search CycleProvider c register c "
    "where c.serverHost contains 'uni-passau.de' "
    "and c.serverInformation.memory > 64 "
    "and c.serverInformation.cpu > 500"
)


def figure1_document() -> Document:
    doc = Document("doc.rdf")
    host = doc.new_resource("host", "CycleProvider")
    host.add("serverHost", "pirates.uni-passau.de")
    host.add("serverPort", 5874)
    host.add("serverInformation", URIRef("doc.rdf#info"))
    info = doc.new_resource("info", "ServerInformation")
    info.add("memory", 92)
    info.add("cpu", 600)
    return doc


def dump_table(db, title, sql):
    print(f"--- {title} ---")
    rows = db.query_all(sql)
    for row in rows:
        print("  ", dict(row))
    if not rows:
        print("   (empty)")
    print()


def main() -> None:
    schema = objectglobe_schema()
    db = Database()
    create_all(db)
    registry = RuleRegistry(db)
    engine = FilterEngine(db, registry)

    # 1. Normalization (§3.3): paths split, shared prefixes deduplicated.
    print("== subscription rule ==")
    print(RULE, "\n")
    normalized = normalize_rule(parse_rule(RULE), schema)[0]
    print("== normalized form (cf. §3.3.1) ==")
    print(normalized, "\n")

    # 2. Decomposition into atomic rules (RuleA…RuleF of the paper).
    decomposed = decompose_rule(normalized, schema)
    print("== dependency tree (cf. Figure 5) ==")
    print(decomposed.render_tree(), "\n")

    # 3. Registration merges the tree into the global dependency graph
    #    and fills the triggering index tables (cf. Figures 7 and 8).
    registration = registry.register_subscription("lmr-1", RULE, decomposed)
    engine.initialize_rules(registration.created)
    dump_table(
        db, "AtomicRules (Figure 7)",
        "SELECT rule_id, kind, class, left_rule, right_rule, group_id "
        "FROM atomic_rules ORDER BY rule_id",
    )
    dump_table(
        db, "RuleDependencies (Figure 7)",
        "SELECT * FROM rule_dependencies ORDER BY target_rule, side",
    )
    dump_table(
        db, "RuleGroups (Figure 7)",
        "SELECT group_id, left_class, right_class, left_property, operator, "
        "register_side FROM rule_groups ORDER BY group_id",
    )
    dump_table(
        db, "FilterRulesGT (Figure 8)",
        "SELECT rule_id, class, property, value FROM filter_rules_gt",
    )
    dump_table(
        db, "FilterRulesCON (Figure 8)",
        "SELECT rule_id, class, property, value FROM filter_rules_con",
    )

    graph = DependencyGraph.load(db)
    print("dependency graph:", graph.stats(), "\n")

    # 4. Register the Figure 1 document: decomposition into atoms.
    document = figure1_document()
    print("== document atoms (FilterData, Figure 4) ==")
    for atom in resources_atoms(list(document)):
        print("  ", atom)
    print()

    # 5. Run the filter and show the ResultObjects trace (Figure 9).
    outcome = engine.process_insertions(list(document))
    run = outcome.passes[0]
    dump_table(
        db, "ResultObjects per iteration (Figure 9)",
        "SELECT iteration, uri_reference, rule_id FROM result_objects "
        "ORDER BY iteration, rule_id",
    )
    print(
        f"filter terminated after {run.iterations} join iterations "
        f"({run.triggering_hits} triggering hits)"
    )
    print("published matches:", {
        rule_id: sorted(map(str, uris))
        for rule_id, uris in outcome.matched.items()
    })
    assert outcome.matched == {
        registration.end_rule: {URIRef("doc.rdf#host")}
    }
    print("\nfilter walkthrough OK")
    db.close()


if __name__ == "__main__":
    main()
