"""ObjectGlobe-style marketplace: service discovery over the 3-tier MDV.

The paper's motivating application (Section 1) is ObjectGlobe, an open
marketplace of *cycle providers* (execute query operators), *data
providers* and *function providers*.  This example models the discovery
step of distributed query planning:

- a two-node MDP backbone replicates global metadata;
- a query optimizer in Passau needs cycle providers near it with enough
  memory — its LMR subscribes accordingly and answers discovery queries
  from the local cache, without crossing the WAN;
- the network simulator quantifies the benefit: discovery latency via
  the LMR versus browsing the MDP across the "Internet".

Run:  python examples/marketplace_discovery.py
"""

from repro import (
    Backbone,
    Document,
    LocalMetadataRepository,
    MDVClient,
    NetworkBus,
    URIRef,
    objectglobe_schema,
)

WAN_MS = 80.0
LAN_MS = 0.5


def cycle_provider(index: int, host: str, memory: int, cpu: int) -> Document:
    doc = Document(f"cp{index}.rdf")
    provider = doc.new_resource("host", "CycleProvider")
    provider.add("serverHost", host)
    provider.add("serverPort", 4000 + index)
    provider.add("serverInformation", URIRef(f"cp{index}.rdf#info"))
    info = doc.new_resource("info", "ServerInformation")
    info.add("memory", memory)
    info.add("cpu", cpu)
    return doc


def main() -> None:
    schema = objectglobe_schema()
    bus = NetworkBus(default_latency_ms=WAN_MS)
    backbone = Backbone(schema, bus=bus)
    mdp_eu = backbone.add_provider("mdp-eu")
    backbone.add_provider("mdp-us")

    # The optimizer's LMR runs in the same LAN as the optimizer.
    lmr = LocalMetadataRepository("lmr-passau", mdp_eu, bus=bus)
    optimizer = MDVClient("optimizer", lmr, bus=bus)
    bus.set_latency("optimizer", "lmr-passau", LAN_MS)

    # Interest: capable cycle providers in the regional domain.
    lmr.subscribe(
        "search CycleProvider c register c "
        "where c.serverHost contains '.de' "
        "and c.serverInformation.memory > 128"
    )

    # Providers register across the backbone (any node works).
    fleet = [
        ("pirates.uni-passau.de", 512, 900, "mdp-eu"),
        ("atlas.tum.de", 256, 700, "mdp-eu"),
        ("tiny.uni-passau.de", 64, 300, "mdp-eu"),
        ("bigiron.wisc.edu", 2048, 1200, "mdp-us"),
        ("edge.fu.de", 192, 500, "mdp-us"),
    ]
    for index, (host, memory, cpu) in enumerate(
        (h, m, c) for h, m, c, __ in fleet
    ):
        backbone.register_document(
            cycle_provider(index, host, memory, cpu), at=fleet[index][3]
        )
    print("backbone synchronized:", backbone.is_synchronized())
    print("LMR cache:", lmr.stats(), "\n")

    # --- discovery through the LMR (the fast path) --------------------
    bus.reset_stats()
    discovery = (
        "search CycleProvider c where c.serverInformation.cpu > 600"
    )
    local = optimizer.query(discovery)
    local_ms = bus.simulated_ms
    print(f"local discovery ({len(local)} hits): {local_ms:.1f} ms simulated")
    for resource in local:
        print("  ", resource.get_one("serverHost"))

    # --- the same discovery browsing the MDP (the slow path) ----------
    bus.reset_stats()
    remote = optimizer.browse(discovery)
    remote_ms = bus.simulated_ms
    print(
        f"remote browse  ({len(remote)} hits): {remote_ms:.1f} ms simulated"
    )

    speedup = remote_ms / local_ms
    print(f"\ncaching advantage: {speedup:.0f}x lower discovery latency")
    assert speedup > 10, "LAN-local discovery should dominate"

    # The remote browse sees everything; the cache sees the subscribed
    # subset — enough for the optimizer, by construction of its rules.
    assert {str(r.uri) for r in local} <= {str(r.uri) for r in remote}

    # A provider upgrade is published and immediately discoverable.
    backbone.register_document(
        cycle_provider(2, "tiny.uni-passau.de", 1024, 800), at="mdp-us"
    )
    upgraded = optimizer.query(discovery)
    print(
        "\nafter tiny.uni-passau.de upgrade:",
        [str(r.get_one("serverHost")) for r in upgraded],
    )
    assert any("tiny" in str(r.get_one("serverHost")) for r in upgraded)
    print("\nmarketplace discovery OK")


if __name__ == "__main__":
    main()
