"""Selective dissemination of XML documents — future work, realized.

The paper positions MDV against systems like SIFT and XFilter (Section
5) and names "the utilization of XML as data format … within the
publish & subscribe algorithm" as future work (Section 6).  This
example closes that loop with the :mod:`repro.xmlext` adapter: a stream
of schema-less XML job postings is filtered by MDV subscriptions, so
each subscriber's LMR receives exactly the postings its rules select —
XFilter-style selective dissemination running on the unchanged
RDBMS-based filter.

Run:  python examples/xml_feed_filtering.py
"""

from repro import LocalMetadataRepository, MetadataProvider
from repro.xmlext import infer_schema, xml_to_document

POSTING_TEMPLATE = """<feed>
  <posting id="p{idx}">
    <title>{title}</title>
    <area>{area}</area>
    <salary>{salary}</salary>
    <remote>{remote}</remote>
    <company id="c{idx}">
      <name>{company}</name>
      <city>{city}</city>
    </company>
  </posting>
</feed>
"""

POSTINGS = [
    dict(idx=0, title="Database kernel engineer", area="databases",
         salary=95000, remote="yes", company="QueryWorks", city="Passau"),
    dict(idx=1, title="Frontend developer", area="web",
         salary=70000, remote="yes", company="Clickify", city="Berlin"),
    dict(idx=2, title="Query optimizer intern", area="databases",
         salary=30000, remote="no", company="PlanCraft", city="Munich"),
    dict(idx=3, title="Distributed systems lead", area="databases",
         salary=120000, remote="no", company="ShardLabs", city="Passau"),
    dict(idx=4, title="Data engineer", area="analytics",
         salary=85000, remote="yes", company="PipeDream", city="Hamburg"),
]


def posting_xml(spec: dict) -> tuple[str, str]:
    return POSTING_TEMPLATE.format(**spec), f"feed{spec['idx']}.xml"


def main() -> None:
    # 1. Infer an MDV schema from a sample of the feed.
    sample_docs = [
        xml_to_document(*posting_xml(spec)) for spec in POSTINGS[:2]
    ]
    schema = infer_schema(sample_docs)
    print(
        "inferred classes:",
        {c: len(schema.class_def(c).properties) for c in schema.class_names()},
    )

    # 2. Subscribers register their interests as MDV rules.
    mdp = MetadataProvider(schema, name="feed-hub")
    alice = LocalMetadataRepository("alice", mdp)
    alice.subscribe(
        "search posting p register p "
        "where p.area = 'databases' and p.salary >= 90000"
    )
    bob = LocalMetadataRepository("bob", mdp)
    bob.subscribe(
        "search posting p register p where p.remote = 'yes'"
    )
    carol = LocalMetadataRepository("carol", mdp)
    carol.subscribe(
        "search posting p register p where p.company.city = 'Passau'"
    )

    # 3. The feed streams in; the filter routes each posting.
    for spec in POSTINGS:
        xml, uri = posting_xml(spec)
        mdp.register_document(xml_to_document(xml, uri))

    def titles(lmr):
        return sorted(
            str(r.get_one("title"))
            for r in lmr.query("search posting p")
        )

    print("\nalice (databases, >= 90k):", titles(alice))
    print("bob   (remote):            ", titles(bob))
    print("carol (company in Passau): ", titles(carol))

    assert titles(alice) == [
        "Database kernel engineer",
        "Distributed systems lead",
    ]
    assert len(titles(bob)) == 3
    assert titles(carol) == [
        "Database kernel engineer",
        "Distributed systems lead",
    ]

    # 4. An edit to a posting re-routes it.
    updated = dict(POSTINGS[2], salary=99000)
    mdp.register_document(xml_to_document(*posting_xml(updated)))
    print("\nafter the intern role is repriced to 99k:")
    print("alice:", titles(alice))
    assert "Query optimizer intern" in titles(alice)

    # Strong containment: the company subtree travels with the posting.
    entry = alice.cache.get("feed2.xml#c2")
    assert entry is not None and entry.strong_refcount == 1
    print("\ncompany subtree cached with the posting:", entry.resource.uri)
    print("\nxml feed filtering OK")


if __name__ == "__main__":
    main()
