"""Unit tests for the LMR garbage collector."""

from repro.mdv.cache import CacheStore
from repro.mdv.gc import GarbageCollector
from repro.pubsub.notifications import ResourcePayload
from repro.rdf.model import Document, URIRef
from repro.rdf.schema import PropertyDef, PropertyKind, RefStrength, Schema


def cyclic_schema() -> Schema:
    schema = Schema()
    schema.define_class(
        "Node",
        [
            PropertyDef(
                "peer",
                PropertyKind.REFERENCE,
                target_class="Node",
                strength=RefStrength.STRONG,
                multivalued=True,
            ),
            PropertyDef("name", PropertyKind.STRING),
        ],
    )
    schema.freeze_check()
    return schema


def test_sweep_finds_nothing_after_eager_cascade(schema, figure1):
    from repro.pubsub.closure import strong_closure

    cache = CacheStore(schema)
    host = figure1.get("doc.rdf#host")
    closure = strong_closure(host, schema, figure1.get)
    cache.apply_match(1, ResourcePayload(host.copy(), [c.copy() for c in closure]))
    cache.apply_unmatch(1, URIRef("doc.rdf#host"))
    report = GarbageCollector(schema).sweep(cache)
    assert report.evicted == 0
    assert report.examined == 0  # the cache is already empty


def test_sweep_collects_manually_broken_entries(schema, figure1):
    cache = CacheStore(schema)
    entry = cache.insert_local(figure1.get("doc.rdf#info").copy())
    entry.is_local = False  # simulate a bookkeeping bug
    report = GarbageCollector(schema).sweep(cache)
    assert report.evicted == 1
    assert len(cache) == 0


def build_cycle(cache, schema, matched=True):
    """Two nodes strongly referencing each other, reached from a root."""
    doc = Document("d.rdf")
    root = doc.new_resource("root", "Node")
    root.add("peer", URIRef("d.rdf#a"))
    a = doc.new_resource("a", "Node")
    a.add("peer", URIRef("d.rdf#b"))
    b = doc.new_resource("b", "Node")
    b.add("peer", URIRef("d.rdf#a"))
    payload = ResourcePayload(root.copy(), [a.copy(), b.copy()])
    cache.apply_match(1, payload)
    return doc


def test_cycle_survives_refcount_eviction():
    schema = cyclic_schema()
    cache = CacheStore(schema)
    build_cycle(cache, schema)
    # Unmatching the root releases it, but a and b keep each other alive:
    # the known limitation of pure reference counting.
    cache.apply_unmatch(1, URIRef("d.rdf#root"))
    assert "d.rdf#root" not in cache
    assert "d.rdf#a" in cache
    assert "d.rdf#b" in cache


def test_collect_cycles_reclaims_orphan_cycle():
    schema = cyclic_schema()
    cache = CacheStore(schema)
    build_cycle(cache, schema)
    cache.apply_unmatch(1, URIRef("d.rdf#root"))
    report = GarbageCollector(schema).collect_cycles(cache)
    assert report.cycles_broken == 2
    assert len(cache) == 0


def test_collect_cycles_keeps_reachable_cycle():
    schema = cyclic_schema()
    cache = CacheStore(schema)
    build_cycle(cache, schema)  # root still matched
    report = GarbageCollector(schema).collect_cycles(cache)
    assert report.evicted == 0
    assert len(cache) == 3


def test_collect_cycles_keeps_local_roots():
    schema = cyclic_schema()
    cache = CacheStore(schema)
    doc = Document("d.rdf")
    local = doc.new_resource("x", "Node")
    local.add("peer", URIRef("d.rdf#y"))
    y = doc.new_resource("y", "Node")
    cache.insert_local(local.copy())
    # y arrives as a strong child of the local resource.
    cache.apply_match(1, ResourcePayload(local.copy(), [y.copy()]))
    cache.apply_unmatch(1, URIRef("d.rdf#x"))
    report = GarbageCollector(schema).collect_cycles(cache)
    assert report.evicted == 0
    assert "d.rdf#y" in cache


def test_gc_report_str():
    schema = cyclic_schema()
    report = GarbageCollector(schema).sweep(CacheStore(schema))
    assert "gc(" in str(report)
