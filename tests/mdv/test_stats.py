"""Tests for the provider statistics snapshot."""

from repro.mdv.provider import MetadataProvider
from repro.mdv.repository import LocalMetadataRepository
from repro.mdv.stats import collect_statistics
from repro.rdf.model import Document, URIRef

from tests.conftest import PAPER_RULE


def make_doc(index):
    doc = Document(f"doc{index}.rdf")
    provider = doc.new_resource("host", "CycleProvider")
    provider.add("serverHost", "a.uni-passau.de")
    provider.add("serverInformation", URIRef(f"doc{index}.rdf#info"))
    info = doc.new_resource("info", "ServerInformation")
    info.add("memory", 92)
    info.add("cpu", 600)
    return doc


def test_empty_provider(schema):
    stats = collect_statistics(MetadataProvider(schema, name="empty"))
    assert stats.documents == 0
    assert stats.atoms == 0
    assert stats.subscriptions == 0
    assert "empty" in stats.summary()


def test_populated_provider(schema):
    mdp = MetadataProvider(schema, name="mdp-x")
    lmr = LocalMetadataRepository("lmr", mdp)
    lmr.subscribe(PAPER_RULE)
    mdp.register_named_rule(
        "AllProviders", "search CycleProvider c register c"
    )
    for index in range(3):
        mdp.register_document(make_doc(index))

    stats = collect_statistics(mdp)
    assert stats.documents == 3
    assert stats.resources == 6
    assert stats.atoms == 3 * 6  # 2 identity atoms + 4 property atoms
    assert stats.atomic_rules_triggering == 4  # 3 from PAPER_RULE + class
    assert stats.atomic_rules_join == 2
    assert stats.max_dependency_depth == 2
    assert stats.subscriptions == 1  # named rule excluded
    assert stats.named_rules == 1
    assert stats.filter_runs == 3
    assert stats.notifications_sent == 3
    assert stats.materialized_rows > 0


def test_summary_mentions_counts(schema):
    mdp = MetadataProvider(schema, name="mdp-y")
    mdp.register_document(make_doc(0))
    summary = collect_statistics(mdp).summary()
    assert "1 docs" in summary
    assert "2 resources" in summary
