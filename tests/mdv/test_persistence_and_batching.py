"""Tests for provider persistence (file-backed DB) and batch registration."""

import pytest

from repro.mdv.provider import MetadataProvider
from repro.mdv.repository import LocalMetadataRepository
from repro.rdf.model import Document, URIRef
from repro.storage.engine import Database


def make_doc(index, host="a.uni-passau.de", memory=92):
    doc = Document(f"doc{index}.rdf")
    provider = doc.new_resource("host", "CycleProvider")
    provider.add("serverHost", host)
    provider.add("serverInformation", URIRef(f"doc{index}.rdf#info"))
    info = doc.new_resource("info", "ServerInformation")
    info.add("memory", memory)
    info.add("cpu", 600)
    return doc


PASSAU_RULE = (
    "search CycleProvider c register c "
    "where c.serverHost contains 'passau'"
)


class TestPersistence:
    def test_reopen_restores_documents_and_rules(self, schema, tmp_path):
        path = str(tmp_path / "mdp.sqlite")
        first = MetadataProvider(schema, db=Database(path))
        first.connect_subscriber("lmr", lambda batch: None)
        first.subscribe("lmr", PASSAU_RULE)
        first.register_document(make_doc(1))
        first.db.commit()
        first.db.close()

        second = MetadataProvider(schema, db=Database(path))
        assert second.document_count() == 1
        resource = second.resource("doc1.rdf#host")
        assert resource is not None
        assert resource.get_one("serverHost").value == "a.uni-passau.de"
        # The rule catalogue survived too.
        assert len(second.registry.subscriptions_of("lmr")) == 1
        second.db.close()

    def test_update_after_reopen_publishes_correct_diff(self, schema, tmp_path):
        path = str(tmp_path / "mdp.sqlite")
        first = MetadataProvider(schema, db=Database(path))
        first.connect_subscriber("lmr", lambda batch: None)
        first.subscribe(
            "lmr",
            "search CycleProvider c register c "
            "where c.serverInformation.memory > 64",
        )
        first.register_document(make_doc(1, memory=92))
        first.db.commit()
        first.db.close()

        second = MetadataProvider(schema, db=Database(path))
        batches = []
        second.connect_subscriber("lmr", batches.append)
        outcome = second.register_document(make_doc(1, memory=16))
        assert outcome.unmatched  # the stored match was found and revoked
        assert batches
        second.db.close()

    def test_browse_after_reopen(self, schema, tmp_path):
        path = str(tmp_path / "mdp.sqlite")
        first = MetadataProvider(schema, db=Database(path))
        first.register_document(make_doc(1))
        first.db.commit()
        first.db.close()
        second = MetadataProvider(schema, db=Database(path))
        results = second.browse("search CycleProvider c")
        assert [str(r.uri) for r in results] == ["doc1.rdf#host"]
        second.db.close()


class TestBatchRegistration:
    def test_batch_single_filter_run(self, schema):
        mdp = MetadataProvider(schema)
        lmr = LocalMetadataRepository("lmr", mdp)
        lmr.subscribe(PASSAU_RULE)
        runs_before = mdp.engine.runs_executed
        outcome = mdp.register_documents([make_doc(i) for i in range(5)])
        assert mdp.engine.runs_executed == runs_before + 1
        assert mdp.document_count() == 5
        assert sum(len(v) for v in outcome.matched.values()) == 5
        assert len(lmr.cache) == 10  # 5 hosts + 5 strong children

    def test_batch_with_updates_falls_back(self, schema):
        mdp = MetadataProvider(schema)
        lmr = LocalMetadataRepository("lmr", mdp)
        lmr.subscribe(
            "search CycleProvider c register c "
            "where c.serverInformation.memory > 64"
        )
        mdp.register_document(make_doc(0, memory=92))
        outcome = mdp.register_documents(
            [make_doc(0, memory=16), make_doc(1, memory=128)]
        )
        # doc0 update revoked, doc1 fresh match — both in one outcome.
        assert outcome.unmatched
        assert any(
            URIRef("doc1.rdf#host") in uris
            for uris in outcome.matched.values()
        )
        assert "doc0.rdf#host" not in lmr.cache
        assert "doc1.rdf#host" in lmr.cache

    def test_batch_validates_every_document(self, schema):
        from repro.errors import SchemaValidationError

        mdp = MetadataProvider(schema)
        bad = Document("bad.rdf")
        bad.new_resource("x", "Mystery")
        with pytest.raises(SchemaValidationError):
            mdp.register_documents([make_doc(1), bad])
        # Nothing was registered: validation precedes any state change.
        assert mdp.document_count() == 0

    def test_batch_replicates_in_backbone(self, schema):
        from repro.mdv.backbone import Backbone

        backbone = Backbone(schema)
        origin = backbone.add_provider("a")
        peer = backbone.add_provider("b")
        origin.register_documents([make_doc(i) for i in range(3)])
        assert peer.document_count() == 3
        assert backbone.is_synchronized()

    def test_empty_batch_is_noop(self, schema):
        mdp = MetadataProvider(schema)
        outcome = mdp.register_documents([])
        assert not outcome.has_notifications
