"""Unit tests for the Metadata Provider (MDP)."""

import pytest

from repro.errors import (
    DocumentNotFoundError,
    SchemaValidationError,
    SubscriptionError,
)
from repro.mdv.provider import MetadataProvider
from repro.rdf.model import Document, URIRef
from repro.rdf.serializer import to_rdfxml


def make_doc(index, host="a.uni-passau.de", memory=92, cpu=600):
    doc = Document(f"doc{index}.rdf")
    provider = doc.new_resource("host", "CycleProvider")
    provider.add("serverHost", host)
    provider.add("serverInformation", URIRef(f"doc{index}.rdf#info"))
    info = doc.new_resource("info", "ServerInformation")
    info.add("memory", memory)
    info.add("cpu", cpu)
    return doc


@pytest.fixture()
def mdp(schema):
    return MetadataProvider(schema, name="mdp-test")


class CollectingSubscriber:
    def __init__(self, mdp, name="collector"):
        self.name = name
        self.batches = []
        mdp.connect_subscriber(name, self.batches.append)


class TestDocumentAdministration:
    def test_register_and_lookup(self, mdp):
        mdp.register_document(make_doc(1))
        assert mdp.document_count() == 1
        assert mdp.resource_count() == 2
        resource = mdp.resource("doc1.rdf#host")
        assert resource is not None
        assert resource.rdf_class == "CycleProvider"

    def test_register_from_xml(self, mdp, schema):
        xml = to_rdfxml(make_doc(1))
        mdp.register_document(xml, document_uri="doc1.rdf")
        assert mdp.resource("doc1.rdf#info") is not None

    def test_xml_requires_uri(self, mdp):
        with pytest.raises(ValueError):
            mdp.register_document("<rdf:RDF/>")

    def test_invalid_document_rejected(self, mdp):
        doc = Document("bad.rdf")
        doc.new_resource("x", "Mystery")
        with pytest.raises(SchemaValidationError):
            mdp.register_document(doc)
        assert mdp.document_count() == 0

    def test_reregistration_is_update(self, mdp):
        mdp.register_document(make_doc(1, memory=92))
        mdp.register_document(make_doc(1, memory=256))
        assert mdp.document_count() == 1
        assert (
            mdp.resource("doc1.rdf#info").get_one("memory").value == 256
        )

    def test_delete_document(self, mdp):
        mdp.register_document(make_doc(1))
        mdp.delete_document("doc1.rdf")
        assert mdp.document_count() == 0
        assert mdp.resource("doc1.rdf#host") is None
        assert mdp.resource_count() == 0

    def test_delete_unknown_document(self, mdp):
        with pytest.raises(DocumentNotFoundError):
            mdp.delete_document("ghost.rdf")

    def test_uri_ownership_enforced(self, mdp, schema):
        mdp.register_document(make_doc(1))
        thief = Document("thief.rdf")
        stolen = thief.new_resource("host", "CycleProvider")
        del stolen
        # A *different* document claiming an existing resource URI is
        # not representable through Document (URIs derive from the doc),
        # so check the guard directly on the resources table.
        evil = Document("doc1.rdf")
        evil.new_resource("host", "CycleProvider")
        # Same document URI: allowed (it is an update).
        mdp.register_document(evil)


class TestSubscriptions:
    def test_subscribe_receives_existing_matches(self, mdp, schema):
        mdp.register_document(make_doc(1))
        collector = CollectingSubscriber(mdp)
        mdp.subscribe(
            collector.name,
            "search CycleProvider c register c "
            "where c.serverHost contains 'passau'",
        )
        assert len(collector.batches) == 1
        (batch,) = collector.batches
        assert batch.notifications[0].uri == "doc1.rdf#host"

    def test_subscribe_then_register_notifies(self, mdp):
        collector = CollectingSubscriber(mdp)
        mdp.subscribe(
            collector.name,
            "search CycleProvider c register c "
            "where c.serverHost contains 'passau'",
        )
        assert collector.batches == []
        mdp.register_document(make_doc(1))
        assert len(collector.batches) == 1

    def test_or_rule_split_into_conjunct_subscriptions(self, mdp):
        collector = CollectingSubscriber(mdp)
        subs = mdp.subscribe(
            collector.name,
            "search CycleProvider c register c "
            "where c.serverHost contains 'passau' "
            "or c.serverHost contains 'tum'",
        )
        assert len(subs) == 2
        mdp.register_document(make_doc(1, host="x.tum.de"))
        assert len(collector.batches) == 1

    def test_unsubscribe_stops_notifications(self, mdp):
        collector = CollectingSubscriber(mdp)
        rule = (
            "search CycleProvider c register c "
            "where c.serverHost contains 'passau'"
        )
        mdp.subscribe(collector.name, rule)
        mdp.unsubscribe(collector.name, rule)
        mdp.register_document(make_doc(1))
        assert collector.batches == []

    def test_unsubscribe_or_rule_removes_all_conjuncts(self, mdp):
        collector = CollectingSubscriber(mdp)
        rule = (
            "search CycleProvider c register c "
            "where c.serverHost contains 'passau' "
            "or c.serverHost contains 'tum'"
        )
        mdp.subscribe(collector.name, rule)
        mdp.unsubscribe(collector.name, rule)
        assert mdp.registry.subscriptions_of(collector.name) == []

    def test_unsubscribe_unknown_raises(self, mdp):
        with pytest.raises(SubscriptionError):
            mdp.unsubscribe("ghost", "search CycleProvider c register c")

    def test_update_sends_unmatch(self, mdp):
        collector = CollectingSubscriber(mdp)
        mdp.subscribe(
            collector.name,
            "search CycleProvider c register c "
            "where c.serverInformation.memory > 64",
        )
        mdp.register_document(make_doc(1, memory=92))
        mdp.register_document(make_doc(1, memory=16))
        from repro.pubsub.notifications import UnmatchNotification

        last = collector.batches[-1]
        assert any(
            isinstance(n, UnmatchNotification) for n in last.notifications
        )


class TestNamedRules:
    def test_named_rule_as_extension(self, mdp):
        mdp.register_named_rule(
            "PassauHosts",
            "search CycleProvider c register c "
            "where c.serverHost contains 'passau'",
        )
        collector = CollectingSubscriber(mdp)
        mdp.subscribe(
            collector.name,
            "search PassauHosts p register p "
            "where p.serverInformation.memory > 64",
        )
        mdp.register_document(make_doc(1, memory=92))  # passau + 92
        mdp.register_document(make_doc(2, host="x.tum.de", memory=92))
        matched = {
            n.uri
            for batch in collector.batches
            for n in batch.notifications
        }
        assert matched == {URIRef("doc1.rdf#host")}

    def test_named_rule_with_existing_data(self, mdp):
        mdp.register_document(make_doc(1))
        mdp.register_named_rule(
            "PassauHosts",
            "search CycleProvider c register c "
            "where c.serverHost contains 'passau'",
        )
        collector = CollectingSubscriber(mdp)
        mdp.subscribe(
            collector.name, "search PassauHosts p register p"
        )
        assert len(collector.batches) == 1

    def test_or_in_named_rule_rejected(self, mdp):
        with pytest.raises(SubscriptionError):
            mdp.register_named_rule(
                "Bad",
                "search CycleProvider c register c "
                "where c.serverHost contains 'a' or c.serverHost contains 'b'",
            )


class TestBrowse:
    def test_browse_returns_content(self, mdp):
        mdp.register_document(make_doc(1))
        mdp.register_document(make_doc(2, host="x.tum.de"))
        results = mdp.browse(
            "search CycleProvider c where c.serverHost contains 'tum'"
        )
        assert [str(r.uri) for r in results] == ["doc2.rdf#host"]

    def test_browse_with_named_extension(self, mdp):
        mdp.register_named_rule(
            "PassauHosts",
            "search CycleProvider c register c "
            "where c.serverHost contains 'passau'",
        )
        mdp.register_document(make_doc(1))
        results = mdp.browse("search PassauHosts p")
        assert [str(r.uri) for r in results] == ["doc1.rdf#host"]


class TestSchemaExchange:
    def test_schema_document_roundtrips(self, mdp, schema):
        from repro.rdf.schema_io import parse_schema

        xml = mdp.schema_document()
        parsed = parse_schema(xml)
        assert sorted(parsed.class_names()) == sorted(schema.class_names())
        assert parsed.property_def(
            "CycleProvider", "serverInformation"
        ).is_strong

    def test_schema_over_the_bus(self, schema):
        from repro.net.bus import NetworkBus
        from repro.rdf.schema_io import parse_schema

        bus = NetworkBus()
        mdp = MetadataProvider(schema, name="mdp", bus=bus)
        xml = bus.send("newcomer", "mdp", "schema", None)
        assert parse_schema(xml).has_class("CycleProvider")


class TestEngineConfiguration:
    def test_join_evaluation_parameter(self, schema):
        probe = MetadataProvider(schema, join_evaluation="probe")
        assert probe.engine.join_evaluation == "probe"
        with pytest.raises(ValueError):
            MetadataProvider(schema, join_evaluation="psychic")

    def test_probe_provider_behaves_identically(self, schema):
        results = {}
        for mode in ("scan", "probe"):
            mdp = MetadataProvider(schema, join_evaluation=mode)
            mdp.connect_subscriber("lmr", lambda batch: None)
            mdp.subscribe(
                "lmr",
                "search CycleProvider c register c "
                "where c.serverInformation.memory > 64",
            )
            mdp.register_document(make_doc(1, memory=92))
            mdp.register_document(make_doc(1, memory=16))
            end = mdp.registry.subscriptions_of("lmr")[0].end_rule
            results[mode] = mdp.engine.current_matches(end)
        assert results["scan"] == results["probe"] == []


class TestSchemaBootstrap:
    def test_lmr_bootstraps_from_fetched_schema(self, schema):
        """A newcomer can build its local Schema from the wire format."""
        from repro.rdf.schema_io import parse_schema

        mdp = MetadataProvider(schema, name="mdp-src")
        fetched_schema = parse_schema(mdp.schema_document())
        from repro.mdv.repository import LocalMetadataRepository

        lmr = LocalMetadataRepository(
            "newcomer", mdp, schema=fetched_schema
        )
        lmr.subscribe(
            "search CycleProvider c register c "
            "where c.serverHost contains 'passau'"
        )
        mdp.register_document(make_doc(9))
        # Strong-ref closure still works: it relies on the fetched
        # schema's strength annotations surviving the round trip.
        assert "doc9.rdf#info" in lmr.cache
        assert lmr.query("search CycleProvider c")
