"""Unit tests for the Local Metadata Repository (LMR)."""

import pytest

from repro.errors import SubscriptionError
from repro.mdv.provider import MetadataProvider
from repro.mdv.repository import LocalMetadataRepository
from repro.net.bus import NetworkBus
from repro.rdf.model import Document, URIRef


def make_doc(index, host="a.uni-passau.de", memory=92, cpu=600):
    doc = Document(f"doc{index}.rdf")
    provider = doc.new_resource("host", "CycleProvider")
    provider.add("serverHost", host)
    provider.add("serverInformation", URIRef(f"doc{index}.rdf#info"))
    info = doc.new_resource("info", "ServerInformation")
    info.add("memory", memory)
    info.add("cpu", cpu)
    return doc


PASSAU_RULE = (
    "search CycleProvider c register c "
    "where c.serverHost contains 'passau'"
)


@pytest.fixture()
def world(schema):
    mdp = MetadataProvider(schema, name="mdp")
    lmr = LocalMetadataRepository("lmr", mdp)
    return mdp, lmr


class TestSubscriptionLifecycle:
    def test_subscribe_fills_cache(self, world):
        mdp, lmr = world
        mdp.register_document(make_doc(1))
        lmr.subscribe(PASSAU_RULE)
        assert "doc1.rdf#host" in lmr.cache
        assert "doc1.rdf#info" in lmr.cache  # strong closure

    def test_duplicate_subscription_rejected(self, world):
        __, lmr = world
        lmr.subscribe(PASSAU_RULE)
        with pytest.raises(SubscriptionError):
            lmr.subscribe(PASSAU_RULE)

    def test_unsubscribe_evicts(self, world):
        mdp, lmr = world
        mdp.register_document(make_doc(1))
        lmr.subscribe(PASSAU_RULE)
        lmr.unsubscribe(PASSAU_RULE)
        assert len(lmr.cache) == 0
        assert lmr.subscriptions() == []

    def test_unsubscribe_unknown(self, world):
        __, lmr = world
        with pytest.raises(SubscriptionError):
            lmr.unsubscribe(PASSAU_RULE)

    def test_or_rule_tracked_as_one(self, world):
        mdp, lmr = world
        rule = (
            "search CycleProvider c register c "
            "where c.serverHost contains 'passau' "
            "or c.serverHost contains 'tum'"
        )
        lmr.subscribe(rule)
        mdp.register_document(make_doc(1, host="x.tum.de"))
        assert "doc1.rdf#host" in lmr.cache
        lmr.unsubscribe(rule)
        assert len(lmr.cache) == 0


class TestCacheConsistency:
    def test_updates_propagate(self, world):
        mdp, lmr = world
        lmr.subscribe(
            "search CycleProvider c register c "
            "where c.serverInformation.memory > 64"
        )
        mdp.register_document(make_doc(1, memory=92))
        assert "doc1.rdf#host" in lmr.cache
        mdp.register_document(make_doc(1, memory=16))
        assert "doc1.rdf#host" not in lmr.cache
        mdp.register_document(make_doc(1, memory=512))
        assert "doc1.rdf#host" in lmr.cache
        assert (
            lmr.cache.resource("doc1.rdf#info").get_one("memory").value == 512
        )

    def test_deletion_propagates(self, world):
        mdp, lmr = world
        lmr.subscribe(PASSAU_RULE)
        mdp.register_document(make_doc(1))
        mdp.delete_document("doc1.rdf")
        assert len(lmr.cache) == 0

    def test_overlapping_rules_keep_resource(self, world):
        mdp, lmr = world
        lmr.subscribe(PASSAU_RULE)
        lmr.subscribe(
            "search CycleProvider c register c "
            "where c.serverInformation.memory > 64"
        )
        mdp.register_document(make_doc(1))
        # Memory falls: rule 2 unmatches, rule 1 (host) still holds.
        mdp.register_document(make_doc(1, memory=16))
        assert "doc1.rdf#host" in lmr.cache
        lmr.unsubscribe(PASSAU_RULE)
        assert "doc1.rdf#host" not in lmr.cache


class TestLocalQueries:
    def test_query_over_cache(self, world):
        mdp, lmr = world
        lmr.subscribe(PASSAU_RULE)
        mdp.register_document(make_doc(1))
        mdp.register_document(make_doc(2, host="x.tum.de"))
        results = lmr.query("search CycleProvider c")
        assert [str(r.uri) for r in results] == ["doc1.rdf#host"]

    def test_query_sees_strong_children(self, world):
        mdp, lmr = world
        lmr.subscribe(PASSAU_RULE)
        mdp.register_document(make_doc(1))
        results = lmr.query("search ServerInformation s where s.memory > 1")
        assert [str(r.uri) for r in results] == ["doc1.rdf#info"]

    def test_query_includes_local_metadata(self, world):
        __, lmr = world
        local = Document("local.rdf")
        info = local.new_resource("secret", "ServerInformation")
        info.add("memory", 1024)
        lmr.register_local_document(local)
        results = lmr.query("search ServerInformation s where s.memory > 512")
        assert [str(r.uri) for r in results] == ["local.rdf#secret"]

    def test_local_metadata_not_forwarded(self, world):
        mdp, lmr = world
        local = Document("local.rdf")
        local.new_resource("secret", "ServerInformation").add("memory", 1)
        lmr.register_local_document(local)
        assert mdp.document_count() == 0

    def test_register_document_forwards_to_mdp(self, world):
        mdp, lmr = world
        lmr.register_document(make_doc(1))
        assert mdp.document_count() == 1

    def test_delete_document_forwards(self, world):
        mdp, lmr = world
        lmr.register_document(make_doc(1))
        lmr.delete_document("doc1.rdf")
        assert mdp.document_count() == 0


class TestOverTheBus:
    def test_full_cycle_over_bus(self, schema):
        bus = NetworkBus()
        mdp = MetadataProvider(schema, name="mdp", bus=bus)
        lmr = LocalMetadataRepository("lmr", mdp, bus=bus)
        lmr.subscribe(PASSAU_RULE)
        mdp.register_document(make_doc(1))
        assert "doc1.rdf#host" in lmr.cache
        # subscribe request + notification batch crossed the bus.
        assert bus.total_messages >= 2

    def test_local_query_costs_no_messages(self, schema):
        bus = NetworkBus()
        mdp = MetadataProvider(schema, name="mdp", bus=bus)
        lmr = LocalMetadataRepository("lmr", mdp, bus=bus)
        lmr.subscribe(PASSAU_RULE)
        mdp.register_document(make_doc(1))
        before = bus.total_messages
        lmr.query("search CycleProvider c")
        assert bus.total_messages == before

    def test_stats(self, world):
        mdp, lmr = world
        lmr.subscribe(PASSAU_RULE)
        mdp.register_document(make_doc(1))
        stats = lmr.stats()
        assert stats["entries"] == 2
        assert stats["notifications"] >= 1


class TestNamedExtensionQueries:
    def test_local_query_with_named_extension(self, schema):
        mdp = MetadataProvider(schema)
        mdp.register_named_rule(
            "PassauHosts",
            "search CycleProvider c register c "
            "where c.serverHost contains 'passau'",
        )
        lmr = LocalMetadataRepository("lmr", mdp)
        lmr.subscribe("search CycleProvider c register c")
        mdp.register_document(make_doc(1))
        mdp.register_document(make_doc(2, host="x.tum.de"))
        results = lmr.query("search PassauHosts p")
        assert [str(r.uri) for r in results] == ["doc1.rdf#host"]

    def test_definitions_fetched_once_over_bus(self, schema):
        bus = NetworkBus()
        mdp = MetadataProvider(schema, name="mdp", bus=bus)
        mdp.register_named_rule(
            "PassauHosts",
            "search CycleProvider c register c "
            "where c.serverHost contains 'passau'",
        )
        lmr = LocalMetadataRepository("lmr", mdp, bus=bus)
        lmr.subscribe("search CycleProvider c register c")
        mdp.register_document(make_doc(1))
        before = bus.total_messages
        lmr.query("search PassauHosts p")
        after_first = bus.total_messages
        lmr.query("search PassauHosts p")
        assert after_first == before + 1     # one fetch
        assert bus.total_messages == after_first  # cached afterwards

    def test_plain_queries_never_fetch(self, schema):
        bus = NetworkBus()
        mdp = MetadataProvider(schema, name="mdp", bus=bus)
        lmr = LocalMetadataRepository("lmr", mdp, bus=bus)
        lmr.subscribe("search CycleProvider c register c")
        mdp.register_document(make_doc(1))
        before = bus.total_messages
        lmr.query("search CycleProvider c")
        assert bus.total_messages == before
