"""Integration scenario across all three tiers, over the simulated net.

Plays out a small "electronic marketplace" story: two MDPs in a
backbone, two LMRs with different interests, clients querying locally,
documents being registered, updated and deleted at different providers —
asserting at every step that each LMR's cache answers queries exactly as
the global state would.
"""

import pytest

from repro.mdv.backbone import Backbone
from repro.mdv.client import MDVClient
from repro.mdv.repository import LocalMetadataRepository
from repro.net.bus import NetworkBus
from repro.query.evaluator import evaluate_query
from repro.rdf.model import Document, URIRef
from repro.rules.ast import Query
from repro.rules.parser import parse_query, parse_rule


def make_doc(index, host, memory, cpu=600):
    doc = Document(f"doc{index}.rdf")
    provider = doc.new_resource("host", "CycleProvider")
    provider.add("serverHost", host)
    provider.add("serverInformation", URIRef(f"doc{index}.rdf#info"))
    info = doc.new_resource("info", "ServerInformation")
    info.add("memory", memory)
    info.add("cpu", cpu)
    return doc


PASSAU = (
    "search CycleProvider c register c "
    "where c.serverHost contains 'uni-passau.de'"
)
BIG_MEMORY = (
    "search CycleProvider c register c "
    "where c.serverInformation.memory > 64"
)


@pytest.fixture()
def world(schema):
    bus = NetworkBus()
    backbone = Backbone(schema, bus=bus)
    mdp_eu = backbone.add_provider("mdp-eu")
    mdp_us = backbone.add_provider("mdp-us")
    lmr_eu = LocalMetadataRepository("lmr-eu", mdp_eu, bus=bus)
    lmr_us = LocalMetadataRepository("lmr-us", mdp_us, bus=bus)
    alice = MDVClient("alice", lmr_eu)
    bob = MDVClient("bob", lmr_us)
    lmr_eu.subscribe(PASSAU)
    lmr_us.subscribe(BIG_MEMORY)
    return bus, backbone, lmr_eu, lmr_us, alice, bob


def oracle(documents, query_text, schema):
    pool = {r.uri: r for doc in documents.values() for r in doc}
    return {
        str(r.uri)
        for r in evaluate_query(parse_query(query_text), pool, schema)
    }


def check_cache_consistency(lmr, rule_texts, documents, schema):
    """The LMR cache holds exactly the union of its rules' matches."""
    expected = set()
    for text in rule_texts:
        rule = parse_rule(text)
        query = Query(rule.extensions, rule.register, rule.where)
        pool = {r.uri: r for doc in documents.values() for r in doc}
        expected |= {
            str(r.uri) for r in evaluate_query(query, pool, schema)
        }
    matched = {
        str(uri)
        for uri in lmr.cache.uris()
        if lmr.cache.get(uri).matched_subs
    }
    assert matched == expected


def test_marketplace_scenario(world, schema):
    bus, backbone, lmr_eu, lmr_us, alice, bob = world
    documents = {}

    # Register three providers at different backbone nodes.
    for index, host, memory, at in [
        (1, "pirates.uni-passau.de", 92, "mdp-eu"),
        (2, "db.tum.de", 256, "mdp-us"),
        (3, "kat.uni-passau.de", 32, "mdp-us"),
    ]:
        doc = make_doc(index, host, memory)
        backbone.register_document(doc, at=at)
        documents[doc.uri] = doc
    assert backbone.is_synchronized()

    check_cache_consistency(lmr_eu, [PASSAU], documents, schema)
    check_cache_consistency(lmr_us, [BIG_MEMORY], documents, schema)

    # Local queries agree with the global oracle restricted to interests.
    got = {str(r.uri) for r in alice.query("search CycleProvider c")}
    assert got == {"doc1.rdf#host", "doc3.rdf#host"}
    got = {str(r.uri) for r in bob.query("search CycleProvider c")}
    assert got == {"doc1.rdf#host", "doc2.rdf#host"}

    # Update: doc3 grows memory -> enters bob's cache via replication.
    updated = make_doc(3, "kat.uni-passau.de", 512)
    backbone.register_document(updated, at="mdp-eu")
    documents["doc3.rdf"] = updated
    check_cache_consistency(lmr_us, [BIG_MEMORY], documents, schema)
    assert "doc3.rdf#host" in lmr_us.cache

    # Update: doc1 loses memory -> leaves bob's cache, stays in alice's.
    shrunk = make_doc(1, "pirates.uni-passau.de", 16)
    backbone.register_document(shrunk, at="mdp-us")
    documents["doc1.rdf"] = shrunk
    check_cache_consistency(lmr_eu, [PASSAU], documents, schema)
    check_cache_consistency(lmr_us, [BIG_MEMORY], documents, schema)
    # Alice sees the refreshed content (strong child updated).
    cached_info = lmr_eu.cache.resource("doc1.rdf#info")
    assert cached_info.get_one("memory").value == 16

    # Deletion: doc2 disappears everywhere.
    backbone.delete_document("doc2.rdf", at="mdp-eu")
    del documents["doc2.rdf"]
    check_cache_consistency(lmr_us, [BIG_MEMORY], documents, schema)
    assert "doc2.rdf#host" not in lmr_us.cache

    # The whole exchange happened over the simulated network.
    assert bus.total_messages > 5
    assert bus.simulated_ms > 0

    # Browsing at an MDP agrees with the oracle over the global state.
    browsed = {
        str(r.uri)
        for r in alice.browse("search CycleProvider c")
    }
    assert browsed == oracle(documents, "search CycleProvider c", schema)


def test_garbage_collection_in_scenario(world, schema):
    __, backbone, lmr_eu, *__rest = world
    doc = make_doc(1, "pirates.uni-passau.de", 92)
    backbone.register_document(doc, at="mdp-eu")
    assert "doc1.rdf#info" in lmr_eu.cache  # strong child
    lmr_eu.unsubscribe(PASSAU)
    assert len(lmr_eu.cache) == 0
    report = lmr_eu.collect_garbage()
    assert report.evicted == 0  # eager cascade already cleaned up
