"""Property-based invariants for the LMR cache's reference counting.

After an arbitrary sequence of match / unmatch / delete notifications,
the strong reference counts on cache entries must equal a from-scratch
recount over the entries' strong edges, and every entry must be
retained for a reason (a matching rule, a positive refcount, or local
registration).
"""

from tests.conftest import prop_settings
from hypothesis import given, settings, strategies as st

from repro.mdv.cache import CacheStore
from repro.pubsub.closure import strong_targets
from repro.pubsub.notifications import ResourcePayload
from repro.rdf.model import Document, URIRef
from repro.rdf.schema import objectglobe_schema

SCHEMA = objectglobe_schema()
DOC_COUNT = 4
SUB_IDS = (1, 2)


def build_payload(index: int, target: int, memory: int) -> ResourcePayload:
    """A CycleProvider strongly referencing ``doc{target}``'s info."""
    doc = Document(f"doc{index}.rdf")
    host = doc.new_resource("host", "CycleProvider")
    host.add("serverHost", f"h{index}.de")
    host.add("serverInformation", URIRef(f"doc{target}.rdf#info"))
    info_doc = Document(f"doc{target}.rdf")
    info = info_doc.new_resource("info", "ServerInformation")
    info.add("memory", memory)
    info.add("cpu", 600)
    return ResourcePayload(host, [info])


@st.composite
def notification_sequences(draw):
    steps = []
    for __ in range(draw(st.integers(min_value=1, max_value=12))):
        kind = draw(st.sampled_from(["match", "unmatch", "delete"]))
        index = draw(st.integers(min_value=0, max_value=DOC_COUNT - 1))
        if kind == "match":
            steps.append(
                (
                    "match",
                    draw(st.sampled_from(SUB_IDS)),
                    index,
                    draw(st.integers(min_value=0, max_value=DOC_COUNT - 1)),
                    draw(st.integers(min_value=1, max_value=512)),
                )
            )
        elif kind == "unmatch":
            steps.append(
                ("unmatch", draw(st.sampled_from(SUB_IDS)), index)
            )
        else:
            steps.append(("delete", index))
    return steps


def recount_strong_refs(cache: CacheStore) -> dict[URIRef, int]:
    counts: dict[URIRef, int] = {uri: 0 for uri in cache.uris()}
    for uri in cache.uris():
        entry = cache.get(uri)
        for target in strong_targets(entry.resource, SCHEMA):
            if target in counts:
                counts[target] += 1
    return counts


@prop_settings(80)
@given(steps=notification_sequences())
def test_refcounts_match_recount(steps):
    cache = CacheStore(SCHEMA)
    for step in steps:
        if step[0] == "match":
            __, sub_id, index, target, memory = step
            cache.apply_match(sub_id, build_payload(index, target, memory))
        elif step[0] == "unmatch":
            __, sub_id, index = step
            cache.apply_unmatch(sub_id, URIRef(f"doc{index}.rdf#host"))
        else:
            __, index = step
            cache.apply_delete(URIRef(f"doc{index}.rdf#host"))

    recounted = recount_strong_refs(cache)
    for uri in cache.uris():
        entry = cache.get(uri)
        assert entry.strong_refcount == recounted[uri], uri
        assert entry.retained, uri


@prop_settings(80)
@given(steps=notification_sequences())
def test_unmatch_all_then_empty(steps):
    """Revoking every match empties the cache (no leaks, no dangling)."""
    cache = CacheStore(SCHEMA)
    for step in steps:
        if step[0] == "match":
            __, sub_id, index, target, memory = step
            cache.apply_match(sub_id, build_payload(index, target, memory))
        elif step[0] == "unmatch":
            __, sub_id, index = step
            cache.apply_unmatch(sub_id, URIRef(f"doc{index}.rdf#host"))
        else:
            __, index = step
            cache.apply_delete(URIRef(f"doc{index}.rdf#host"))
    for uri in list(cache.uris()):
        entry = cache.get(uri)
        if entry is None:
            continue
        for sub_id in list(entry.matched_subs):
            cache.apply_unmatch(sub_id, uri)
    # The ObjectGlobe schema has no strong cycles, so nothing survives.
    assert len(cache) == 0
