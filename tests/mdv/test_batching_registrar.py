"""Tests for the periodic batching registrar."""

import pytest

from repro.mdv.batching import BatchingRegistrar
from repro.mdv.provider import MetadataProvider
from repro.mdv.repository import LocalMetadataRepository
from repro.rdf.model import Document, URIRef


def make_doc(index, memory=92):
    doc = Document(f"doc{index}.rdf")
    provider = doc.new_resource("host", "CycleProvider")
    provider.add("serverHost", "a.uni-passau.de")
    provider.add("serverInformation", URIRef(f"doc{index}.rdf#info"))
    info = doc.new_resource("info", "ServerInformation")
    info.add("memory", memory)
    info.add("cpu", 600)
    return doc


@pytest.fixture()
def system(schema):
    mdp = MetadataProvider(schema)
    lmr = LocalMetadataRepository("lmr", mdp)
    lmr.subscribe(
        "search CycleProvider c register c "
        "where c.serverHost contains 'passau'"
    )
    return mdp, lmr


def test_flush_on_max_batch(system, schema):
    mdp, lmr = system
    registrar = BatchingRegistrar(mdp, max_batch=3, max_delay=100)
    assert registrar.submit(make_doc(0)) is None
    assert registrar.submit(make_doc(1)) is None
    outcome = registrar.submit(make_doc(2))
    assert outcome is not None
    assert registrar.pending == 0
    assert mdp.document_count() == 3
    assert len(lmr.query("search CycleProvider c")) == 3
    assert registrar.stats.flushes == 1
    assert registrar.stats.flush_sizes == [3]


def test_flush_on_staleness(system, schema):
    mdp, __ = system
    registrar = BatchingRegistrar(mdp, max_batch=100, max_delay=3)
    registrar.submit(make_doc(0))
    assert registrar.tick() is None
    assert registrar.tick() is None
    outcome = registrar.tick()  # third tick reaches max_delay
    assert outcome is not None
    assert mdp.document_count() == 1


def test_tick_without_queue_is_noop(system, schema):
    mdp, __ = system
    registrar = BatchingRegistrar(mdp, max_delay=1)
    assert registrar.tick() is None
    assert registrar.stats.flushes == 0


def test_resubmission_coalesces(system, schema):
    mdp, lmr = system
    registrar = BatchingRegistrar(mdp, max_batch=10)
    registrar.submit(make_doc(0, memory=16))
    registrar.submit(make_doc(0, memory=512))  # replaces the queued one
    assert registrar.pending == 1
    assert registrar.stats.coalesced == 1
    registrar.flush()
    assert (
        mdp.resource("doc0.rdf#info").get_one("memory").value == 512
    )
    # Exactly one filter execution happened for the whole flush.
    assert registrar.stats.flushes == 1


def test_manual_flush(system, schema):
    mdp, __ = system
    registrar = BatchingRegistrar(mdp)
    registrar.submit(make_doc(0))
    registrar.submit(make_doc(1))
    assert registrar.pending_uris() == ["doc0.rdf", "doc1.rdf"]
    outcome = registrar.flush()
    assert sum(len(v) for v in outcome.matched.values()) == 2
    assert registrar.pending == 0


def test_flush_mixing_update_and_insert(system, schema):
    mdp, lmr = system
    mdp.register_document(make_doc(0, memory=92))
    registrar = BatchingRegistrar(mdp)
    registrar.submit(make_doc(0, memory=128))  # update
    registrar.submit(make_doc(1))              # insert
    registrar.flush()
    assert mdp.document_count() == 2
    assert (
        mdp.resource("doc0.rdf#info").get_one("memory").value == 128
    )


def test_invalid_document_rejected_at_submit(system, schema):
    from repro.errors import SchemaValidationError

    mdp, __ = system
    registrar = BatchingRegistrar(mdp)
    bad = Document("bad.rdf")
    bad.new_resource("x", "Mystery")
    with pytest.raises(SchemaValidationError):
        registrar.submit(bad)
    assert registrar.pending == 0


def test_parameter_validation(system, schema):
    mdp, __ = system
    with pytest.raises(ValueError):
        BatchingRegistrar(mdp, max_batch=0)
    with pytest.raises(ValueError):
        BatchingRegistrar(mdp, max_delay=0)


def test_average_batch_size(system, schema):
    mdp, __ = system
    registrar = BatchingRegistrar(mdp, max_batch=2)
    for index in range(4):
        registrar.submit(make_doc(index))
    assert registrar.stats.average_batch_size == 2.0
    assert BatchingRegistrar(mdp).stats.average_batch_size == 0.0
