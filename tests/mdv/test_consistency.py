"""Tests for the alternative consistency strategies (paper, §3.5 end)."""

import pytest

from repro.mdv.cache import CacheStore
from repro.mdv.consistency import (
    FilterStrategy,
    ResourceListStrategy,
    TTLStrategy,
    expire_stale_entries,
)
from repro.mdv.provider import MetadataProvider
from repro.pubsub.notifications import ResourcePayload
from repro.rdf.diff import diff_documents
from repro.rdf.model import Document, Resource, URIRef

MEMORY_RULE = (
    "search CycleProvider c register c "
    "where c.serverInformation.memory > 64"
)


def make_doc(index, memory=92):
    doc = Document(f"doc{index}.rdf")
    provider = doc.new_resource("host", "CycleProvider")
    provider.add("serverHost", "a.uni-passau.de")
    provider.add("serverInformation", URIRef(f"doc{index}.rdf#info"))
    info = doc.new_resource("info", "ServerInformation")
    info.add("memory", memory)
    info.add("cpu", 600)
    return doc


def build(schema, strategy_class):
    mdp = MetadataProvider(schema, name="mdp")
    mdp.connect_subscriber("lmr", lambda batch: None)
    mdp.subscribe("lmr", MEMORY_RULE)
    strategy = strategy_class(mdp)
    return mdp, strategy


class TestFilterStrategy:
    def test_matches_and_unmatches(self, schema):
        mdp, strategy = build(schema, FilterStrategy)
        doc = make_doc(1)
        outcome = strategy.process_diff(diff_documents(None, doc))
        assert outcome.matched
        updated = doc.copy()
        updated.get("doc1.rdf#info").set("memory", 16)
        outcome = strategy.process_diff(diff_documents(doc, updated))
        assert outcome.unmatched
        assert strategy.cost.filter_passes == 4  # 1 insert + 3 update
        assert strategy.cost.full_rule_evaluations == 0


class TestResourceListStrategy:
    def test_insert_records_book(self, schema):
        mdp, strategy = build(schema, ResourceListStrategy)
        outcome = strategy.process_diff(diff_documents(None, make_doc(1)))
        assert outcome.matched
        assert URIRef("doc1.rdf#host") in strategy.book.by_resource

    def test_update_uses_full_rule_evaluation(self, schema):
        mdp, strategy = build(schema, ResourceListStrategy)
        doc = make_doc(1)
        strategy.process_diff(diff_documents(None, doc))
        # Update the provider itself so the book lookup fires.
        updated = doc.copy()
        updated.get("doc1.rdf#host").set("serverHost", "b.tum.de")
        outcome = strategy.process_diff(diff_documents(doc, updated))
        assert strategy.cost.full_rule_evaluations >= 1
        # The host still matches (rule keys on memory, not host).
        assert not outcome.unmatched

    def test_update_detects_unmatch(self, schema):
        mdp, strategy = build(schema, ResourceListStrategy)
        doc = make_doc(1)
        strategy.process_diff(diff_documents(None, doc))
        updated = doc.copy()
        # Cache the host; now break the match via the host's own change:
        # re-point the reference to a missing info.
        updated.get("doc1.rdf#host").set(
            "serverInformation", URIRef("gone.rdf#info")
        )
        outcome = strategy.process_diff(diff_documents(doc, updated))
        assert URIRef("doc1.rdf#host") in set().union(
            *outcome.unmatched.values()
        )

    def test_cost_grows_with_cached_rules(self, schema):
        mdp = MetadataProvider(schema, name="mdp")
        mdp.connect_subscriber("lmr", lambda batch: None)
        for index in range(5):
            mdp.subscribe(
                "lmr",
                f"search CycleProvider c register c "
                f"where c.serverInformation.memory > {60 + index}",
            )
        strategy = ResourceListStrategy(mdp)
        doc = make_doc(1)
        strategy.process_diff(diff_documents(None, doc))
        updated = doc.copy()
        updated.get("doc1.rdf#host").set("serverHost", "x.de")
        strategy.process_diff(diff_documents(doc, updated))
        assert strategy.cost.full_rule_evaluations == 5


class TestTTLStrategy:
    def test_no_unmatch_notifications(self, schema):
        mdp, strategy = build(schema, TTLStrategy)
        doc = make_doc(1)
        strategy.process_diff(diff_documents(None, doc))
        updated = doc.copy()
        updated.get("doc1.rdf#info").set("memory", 16)
        outcome = strategy.process_diff(diff_documents(doc, updated))
        assert outcome.unmatched == {}
        assert strategy.cost.filter_passes == 2

    def test_still_matching_resources_repullished(self, schema):
        mdp, strategy = build(schema, TTLStrategy)
        doc = make_doc(1)
        strategy.process_diff(diff_documents(None, doc))
        updated = doc.copy()
        updated.get("doc1.rdf#info").set("memory", 128)
        outcome = strategy.process_diff(diff_documents(doc, updated))
        # Refresh arrives as a match; LMR entries renew their TTL.
        assert outcome.matched


class TestTTLExpiry:
    def payload(self, schema, index=1, memory=92):
        doc = make_doc(index, memory)
        return ResourcePayload(doc.get(f"doc{index}.rdf#host").copy(), [])

    def test_expiry_evicts_stale_entries(self, schema):
        cache = CacheStore(schema)
        cache.apply_match(1, self.payload(schema), now=0)
        assert expire_stale_entries(cache, now=5, ttl=3) == 1
        assert len(cache) == 0

    def test_refresh_renews(self, schema):
        cache = CacheStore(schema)
        cache.apply_match(1, self.payload(schema), now=0)
        cache.apply_match(1, self.payload(schema), now=4)
        assert expire_stale_entries(cache, now=5, ttl=3) == 0
        assert len(cache) == 1

    def test_local_entries_never_expire(self, schema):
        cache = CacheStore(schema)
        resource = Resource("local.rdf#x", "ServerInformation")
        cache.insert_local(resource, now=0)
        assert expire_stale_entries(cache, now=100, ttl=1) == 0
