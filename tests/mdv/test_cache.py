"""Unit tests for the LMR cache store (rule matches + strong refcounts)."""

from repro.mdv.cache import CacheStore
from repro.pubsub.notifications import ResourcePayload
from repro.rdf.model import Document, Resource, URIRef


def payload_for(doc: Document, uri: str, schema) -> ResourcePayload:
    from repro.pubsub.closure import strong_closure

    resource = doc.get(uri)
    closure = strong_closure(resource, schema, doc.get)
    return ResourcePayload(resource.copy(), [c.copy() for c in closure])


def figure1_payload(figure1, schema):
    return payload_for(figure1, "doc.rdf#host", schema)


class TestMatches:
    def test_match_inserts_content_and_closure(self, schema, figure1):
        cache = CacheStore(schema)
        cache.apply_match(1, figure1_payload(figure1, schema))
        assert "doc.rdf#host" in cache
        assert "doc.rdf#info" in cache
        assert cache.get("doc.rdf#host").matched_subs == {1}
        assert cache.get("doc.rdf#info").strong_refcount == 1

    def test_second_rule_match_tracked(self, schema, figure1):
        cache = CacheStore(schema)
        cache.apply_match(1, figure1_payload(figure1, schema))
        cache.apply_match(2, figure1_payload(figure1, schema))
        assert cache.get("doc.rdf#host").matched_subs == {1, 2}
        # Refresh must not double-count the strong edge.
        assert cache.get("doc.rdf#info").strong_refcount == 1

    def test_unmatch_of_last_rule_evicts(self, schema, figure1):
        cache = CacheStore(schema)
        cache.apply_match(1, figure1_payload(figure1, schema))
        evicted = cache.apply_unmatch(1, URIRef("doc.rdf#host"))
        assert evicted
        assert "doc.rdf#host" not in cache
        # The strong child cascades away with its only parent.
        assert "doc.rdf#info" not in cache
        assert cache.evictions == 2

    def test_unmatch_with_remaining_rule_keeps(self, schema, figure1):
        cache = CacheStore(schema)
        cache.apply_match(1, figure1_payload(figure1, schema))
        cache.apply_match(2, figure1_payload(figure1, schema))
        assert not cache.apply_unmatch(1, URIRef("doc.rdf#host"))
        assert "doc.rdf#host" in cache

    def test_unmatch_of_unknown_uri_is_noop(self, schema):
        cache = CacheStore(schema)
        assert not cache.apply_unmatch(1, URIRef("ghost.rdf#x"))


class TestContentUpdates:
    def test_content_refresh_replaces_resource(self, schema, figure1):
        cache = CacheStore(schema)
        cache.apply_match(1, figure1_payload(figure1, schema))
        updated = figure1.copy()
        updated.get("doc.rdf#info").set("memory", 256)
        cache.apply_match(1, payload_for(updated, "doc.rdf#host", schema))
        assert cache.resource("doc.rdf#info").get_one("memory").value == 256

    def test_retarget_strong_reference_reconciles_counts(self, schema):
        cache = CacheStore(schema)
        doc = Document("d.rdf")
        host = doc.new_resource("host", "CycleProvider")
        host.add("serverInformation", URIRef("d.rdf#a"))
        a = doc.new_resource("a", "ServerInformation")
        a.add("memory", 1)
        b = doc.new_resource("b", "ServerInformation")
        b.add("memory", 2)
        cache.apply_match(1, payload_for(doc, "d.rdf#host", schema))
        assert cache.get("d.rdf#a").strong_refcount == 1

        retargeted = doc.copy()
        retargeted.get("d.rdf#host").set(
            "serverInformation", URIRef("d.rdf#b")
        )
        cache.apply_match(1, payload_for(retargeted, "d.rdf#host", schema))
        # Old child released and collected; new child accounted.
        assert "d.rdf#a" not in cache
        assert cache.get("d.rdf#b").strong_refcount == 1


class TestDeletes:
    def test_delete_removes_despite_matches(self, schema, figure1):
        cache = CacheStore(schema)
        cache.apply_match(1, figure1_payload(figure1, schema))
        assert cache.apply_delete(URIRef("doc.rdf#host"))
        assert "doc.rdf#host" not in cache
        assert "doc.rdf#info" not in cache

    def test_delete_unknown_is_noop(self, schema):
        cache = CacheStore(schema)
        assert not cache.apply_delete(URIRef("ghost.rdf#x"))


class TestLocalMetadata:
    def test_local_resources_never_evicted_by_unmatch(self, schema):
        cache = CacheStore(schema)
        resource = Resource("local.rdf#x", "ServerInformation")
        resource.add("memory", 1)
        cache.insert_local(resource)
        cache.apply_unmatch(1, URIRef("local.rdf#x"))
        assert "local.rdf#x" in cache

    def test_local_keeps_strong_children_alive(self, schema):
        cache = CacheStore(schema)
        doc = Document("local.rdf")
        host = doc.new_resource("host", "CycleProvider")
        host.add("serverInformation", URIRef("local.rdf#info"))
        info = doc.new_resource("info", "ServerInformation")
        info.add("memory", 1)
        cache.insert_local(info)
        cache.insert_local(host)
        assert cache.get("local.rdf#info").strong_refcount == 1


class TestDropSubscription:
    def test_drop_evicts_only_sole_matches(self, schema, figure1):
        cache = CacheStore(schema)
        cache.apply_match(1, figure1_payload(figure1, schema))
        other = Document("e.rdf")
        info = other.new_resource("info", "ServerInformation")
        info.add("memory", 5)
        cache.apply_match(1, payload_for(other, "e.rdf#info", schema))
        cache.apply_match(2, payload_for(other, "e.rdf#info", schema))
        evicted = cache.drop_subscription(1)
        assert evicted == 1  # the figure1 host (+ cascaded child not counted)
        assert "doc.rdf#host" not in cache
        assert "e.rdf#info" in cache


class TestSharedStrongChildren:
    def test_child_survives_until_last_parent_goes(self, schema):
        cache = CacheStore(schema)
        shared = URIRef("s.rdf#info")
        for index in (1, 2):
            doc = Document(f"p{index}.rdf")
            host = doc.new_resource("host", "CycleProvider")
            host.add("serverInformation", shared)
            shared_doc = Document("s.rdf")
            info = shared_doc.new_resource("info", "ServerInformation")
            info.add("memory", 7)
            payload = ResourcePayload(host.copy(), [info.copy()])
            cache.apply_match(index, payload)
        assert cache.get(shared).strong_refcount == 2
        cache.apply_unmatch(1, URIRef("p1.rdf#host"))
        assert shared in cache
        cache.apply_unmatch(2, URIRef("p2.rdf#host"))
        assert shared not in cache


def test_stats_shape(schema, figure1):
    cache = CacheStore(schema)
    cache.apply_match(1, figure1_payload(figure1, schema))
    resource = Resource("local.rdf#x", "ServerInformation")
    cache.insert_local(resource)
    stats = cache.stats()
    assert stats["entries"] == 3
    assert stats["matched"] == 1
    assert stats["strong_only"] == 1
    assert stats["local"] == 1
