"""Concurrency stress: mixed mutations from many threads, under faults.

Four worker threads hammer one provider (running the sharded filter,
``parallelism=4``) with register/update/delete plus subscribe/
unsubscribe, over a faulty bus link to one LMR.  Provider access is
serialized by a lock — SQLite objects are not safe for unsynchronized
concurrent use (docs/CONCURRENCY.md); the point of the test is the
*interleaving*: shard dispatch, rule-replica refresh and the LMR's
at-least-once delivery all race across thread boundaries.

Afterwards, everything must reconcile:

- the graph/store invariants of :mod:`repro.analysis.invariants` hold,
- the LMR cache equals the provider's materialized matches (no lost
  notifications),
- every received batch was applied exactly once or discarded as a
  duplicate (no double applications).
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.analysis.invariants import audit_database
from repro.mdv.provider import MetadataProvider
from repro.mdv.repository import LocalMetadataRepository
from repro.net.bus import NetworkBus
from repro.net.faults import FaultPlan, LinkFaults
from repro.rdf.schema import objectglobe_schema
from repro.storage.engine import Database
from repro.workload.documents import benchmark_document, document_uri

SEEDS = [1, 7, 42]

#: Duplicates and delays only: a *dropped* notification batch is an
#: availability problem handled by resync (exercised in the chaos
#: suite); here every batch must arrive so exactly-once application
#: can be asserted without a recovery pass.
STRESS_FAULTS = LinkFaults(duplicate_rate=0.25, delay_ms=1.0)

RULE = (
    "search CycleProvider c register c "
    "where c.serverInformation.memory > 64"
)
#: One per worker thread — subscribe/unsubscribe must not collide
#: across threads (an LMR rejects duplicate subscriptions).
EXTRA_RULES = [
    "search CycleProvider c register c where c.serverHost contains 'de'",
    "search ServerInformation s register s where s.memory > 128",
    "search CycleProvider c register c",
    "search CycleProvider c register c where c.serverInformation.cpu > 500",
]

_THREADS = 4
_OPS_PER_THREAD = 12
_DOCS_PER_THREAD = 6


def _worker(index: int, seed: int, lock, provider, lmr, errors) -> None:
    """One thread's operation stream over its private document keyspace.

    Document indexes are partitioned per thread (``base + i``) so two
    threads never write the same document; subscriptions are per-thread
    rules so subscribe/unsubscribe cannot collide either.
    """
    rng = random.Random(seed * 1000 + index)
    base = 1000 * index
    live: list[int] = []
    extra_rule = EXTRA_RULES[index % len(EXTRA_RULES)]
    subscribed = False
    try:
        for op in range(_OPS_PER_THREAD):
            choice = rng.random()
            with lock:
                if choice < 0.2 and not subscribed:
                    lmr.subscribe(extra_rule)
                    subscribed = True
                elif choice < 0.3 and subscribed:
                    lmr.unsubscribe(extra_rule)
                    subscribed = False
                elif choice < 0.55 and live:
                    doc_index = rng.choice(live)
                    provider.register_document(
                        benchmark_document(
                            doc_index, memory=rng.randint(10, 900)
                        )
                    )
                elif choice < 0.7 and live:
                    doc_index = live.pop(rng.randrange(len(live)))
                    provider.delete_document(document_uri(doc_index))
                elif len(live) < _DOCS_PER_THREAD:
                    doc_index = base + len(live)
                    provider.register_document(
                        benchmark_document(
                            doc_index, memory=rng.randint(10, 900)
                        )
                    )
                    live.append(doc_index)
    except Exception as exc:  # pragma: no cover - the assertion payload
        errors.append((index, exc))


@pytest.mark.parametrize("seed", SEEDS)
def test_concurrent_mutations_reconcile(seed):
    plan = FaultPlan(seed=seed, default_faults=STRESS_FAULTS)
    bus = NetworkBus(fault_plan=plan)
    db = Database(check_same_thread=False)
    provider = MetadataProvider(
        objectglobe_schema(), name="mdp", db=db, bus=bus, parallelism=4
    )
    lmr = LocalMetadataRepository("lmr-stress", provider, bus=bus)
    lock = threading.Lock()
    errors: list[tuple[int, Exception]] = []

    lmr.subscribe(RULE)
    threads = [
        threading.Thread(
            target=_worker,
            args=(index, seed, lock, provider, lmr, errors),
            name=f"stress-{index}",
        )
        for index in range(_THREADS)
    ]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not any(t.is_alive() for t in threads), "worker deadlocked"
        assert not errors, f"worker failures: {errors}"

        lmr.resync()

        # Store/graph invariants survive the interleaving.
        report = audit_database(provider.db)
        assert not report.has_errors, report

        # No lost notifications: the cache holds exactly the provider's
        # current matches for the always-on subscription.
        end_rule = provider.registry.subscriptions_for(
            provider.registry.end_rule_ids()
        )
        [sub] = [s for s in end_rule if s.rule_text == RULE]
        expected = {
            str(uri) for uri in provider.engine.current_matches(sub.end_rule)
        }
        cached = {
            str(r.uri)
            for r in lmr.cache.resources()
            if r.rdf_class == "CycleProvider"
        }
        assert expected <= cached

        # Exactly-once application: every received batch was either
        # applied or discarded as a duplicate, and duplicates were
        # actually injected (otherwise the fault plan did nothing).
        assert (
            lmr.dedup.applied + lmr.dedup.duplicates_ignored
            == lmr.batches_received
        )
        assert plan.faults_injected > 0
    finally:
        provider.close()
        db.close()
