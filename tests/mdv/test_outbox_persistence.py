"""Durable-outbox persistence: store roundtrips, recovery across a
process restart, redrive of persisted dead letters, durable dedup."""

import os

from repro.errors import NetworkError
from repro.mdv.outbox import DedupIndex, Outbox, OutboxStore, RetryPolicy
from repro.mdv.provider import MetadataProvider
from repro.mdv.repository import LocalMetadataRepository
from repro.storage.engine import Database
from repro.storage.schema import create_all
from repro.workload.documents import benchmark_document
from repro.workload.rules import comp_rule


class RecordingTransport:
    def __init__(self):
        self.calls = []
        self.down = False

    def __call__(self, destination, kind, payload):
        if self.down:
            raise NetworkError(f"link to {destination} down")
        self.calls.append((destination, kind, payload))


class TestOutboxStore:
    def test_record_watermarks_undelivered_roundtrip(self):
        db = Database()
        create_all(db)
        store = OutboxStore(db)
        outbox = Outbox("src", RecordingTransport(), store=store)
        outbox.enqueue("dst", "note", {"n": 1})
        outbox.enqueue("dst", "note", {"n": 2})
        outbox.enqueue("other", "note", {"n": 3})
        assert store.watermarks() == {"dst": 2, "other": 1}
        assert len(store.undelivered()) == 3
        store.mark_delivered("dst", 1)
        left = store.undelivered()
        assert [(e.destination, e.seq) for e in left] == [
            ("dst", 2), ("other", 1),
        ]
        # Payloads survive the pickle roundtrip intact.
        assert left[0].payload == {"n": 2}
        db.close()

    def test_entries_since_filters_by_destination_and_seq(self):
        db = Database()
        create_all(db)
        store = OutboxStore(db)
        outbox = Outbox("src", RecordingTransport(), store=store)
        for n in range(4):
            outbox.enqueue("dst", "note", n)
        entries = store.entries_since("dst", 2)
        assert [e.seq for e in entries] == [3, 4]
        assert store.entries_since("missing", 0) == []
        db.close()


class TestRestartRecovery:
    def test_recover_resumes_watermarks_and_tail(self, tmp_path):
        path = os.fspath(tmp_path / "node.db")
        db = Database(path)
        create_all(db)
        transport = RecordingTransport()
        outbox = Outbox("src", transport, store=OutboxStore(db))
        for n in (1, 2, 3):
            outbox.enqueue("dst", "note", n)
        outbox.flush()
        assert len(transport.calls) == 3
        # Two more enqueued but never flushed: the process "dies" here.
        outbox.enqueue("dst", "note", 4)
        outbox.enqueue("dst", "note", 5)
        db.close()

        db2 = Database(path)
        transport2 = RecordingTransport()
        restarted = Outbox("src", transport2, store=OutboxStore(db2))
        assert restarted.recover() == 2
        # Sequence numbers resume past everything persisted.
        assert restarted.reserve_seq("dst") == 6
        restarted.flush()
        assert [payload for _, _, payload in transport2.calls] == [4, 5]
        db2.close()

    def test_replay_since_works_across_process_restart(self, tmp_path):
        path = os.fspath(tmp_path / "node.db")
        db = Database(path)
        create_all(db)
        outbox = Outbox("src", RecordingTransport(), store=OutboxStore(db))
        for n in (1, 2, 3):
            outbox.enqueue("dst", "note", n)
        outbox.flush()  # acknowledged history now lives only in SQLite
        db.close()

        db2 = Database(path)
        transport = RecordingTransport()
        restarted = Outbox("src", transport, store=OutboxStore(db2))
        restarted.recover()
        assert restarted.replay_since("dst", 1) == 2
        restarted.flush()
        assert [payload for _, _, payload in transport.calls] == [2, 3]
        db2.close()

    def test_dead_letter_redrive_after_restart_outage(self, tmp_path):
        path = os.fspath(tmp_path / "node.db")
        db = Database(path)
        create_all(db)
        transport = RecordingTransport()
        transport.down = True
        outbox = Outbox(
            "src", transport, store=OutboxStore(db),
            policy=RetryPolicy(max_attempts=2, jitter_ms=0.0),
        )
        outbox.enqueue("dst", "note", "a")
        outbox.enqueue("dst", "note", "b")
        outbox.drain()
        assert outbox.dead_count("dst") == 2
        assert outbox.pending_count("dst") == 0
        # The link heals: redrive unparks and delivers in seq order.
        transport.down = False
        assert outbox.redrive("dst") == 2
        assert outbox.drain() == 2
        assert [payload for _, _, payload in transport.calls] == ["a", "b"]
        # Delivery marks persisted: a restarted node re-enqueues nothing.
        db.close()
        db2 = Database(path)
        restarted = Outbox(
            "src", RecordingTransport(), store=OutboxStore(db2)
        )
        assert restarted.recover() == 0
        db2.close()


class TestDurableDedup:
    def test_dedup_reloads_from_store(self):
        db = Database()
        create_all(db)
        index = DedupIndex(db)
        assert index.check_and_record("src", 1) is True
        assert index.check_and_record("src", 2) is True
        # A "restarted" receiver constructs a fresh index on the same db.
        reborn = DedupIndex(db)
        assert reborn.check_and_record("src", 1) is False
        assert reborn.check_and_record("src", 3) is True
        assert reborn.highest("src") == 3
        db.close()

    def test_prime_sets_a_floor(self):
        index = DedupIndex()
        index.prime("src", 5)
        assert index.check_and_record("src", 4) is False
        assert index.check_and_record("src", 6) is True
        assert index.highest("src") == 6
        assert index.watermarks() == {"src": 6}


class TestDurableProviderRestart:
    def test_restarted_provider_resumes_seq_stream(self, schema):
        mdp = MetadataProvider(schema, name="mdp", durable_delivery=True)
        lmr = LocalMetadataRepository("lmr", mdp)
        lmr.subscribe(comp_rule(2))
        mdp.register_document(benchmark_document(0, synth_value=5))
        high = mdp.outbox_watermark("lmr")
        assert high >= 1

        # New provider "process" on the same store.
        restarted = MetadataProvider(
            schema, name="mdp", db=mdp.db, durable_delivery=True,
            recovery="auto",
        )
        lmr.reattach(restarted)
        restarted.register_document(benchmark_document(1, synth_value=7))
        assert restarted.outbox_watermark("lmr") > high
        # The dedup index applied every batch exactly once.
        assert lmr.dedup.duplicates_ignored == 0
        assert len(lmr.cache.resources()) >= 2
