"""Unit tests for the reliable-delivery outbox and the dedup index."""

import random

import pytest

from repro.errors import NetworkError
from repro.mdv.outbox import DedupIndex, Outbox, RetryPolicy


class FlakyTransport:
    """Fails the first ``failures`` calls per destination, then delivers."""

    def __init__(self, failures=0, poison_kinds=()):
        self.failures = failures
        self.poison_kinds = set(poison_kinds)
        self.calls = []
        self._failed = {}

    def __call__(self, destination, kind, payload):
        self.calls.append((destination, kind, payload))
        if kind in self.poison_kinds:
            raise ValueError(f"receiver rejected {kind!r}")
        done = self._failed.get(destination, 0)
        if done < self.failures:
            self._failed[destination] = done + 1
            raise NetworkError(f"link to {destination} flaked")


class TestRetryPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            base_delay_ms=10.0, multiplier=2.0, max_delay_ms=35.0,
            jitter_ms=0.0,
        )
        rng = random.Random(0)
        delays = [policy.delay_for(attempt, rng) for attempt in (1, 2, 3, 4)]
        assert delays == [10.0, 20.0, 35.0, 35.0]

    def test_jitter_bounded(self):
        policy = RetryPolicy(base_delay_ms=10.0, jitter_ms=5.0)
        rng = random.Random(1)
        for _ in range(100):
            assert 10.0 <= policy.delay_for(1, rng) <= 15.0


class TestOutboxDelivery:
    def test_happy_path_delivers_in_seq_order(self):
        transport = FlakyTransport()
        outbox = Outbox("src", transport)
        outbox.enqueue("dst", "note", "first")
        outbox.enqueue("dst", "note", "second")
        assert outbox.flush() == 2
        assert [payload for _, _, payload in transport.calls] == [
            "first", "second",
        ]
        assert outbox.pending_count() == 0
        assert outbox.delivered == 2

    def test_seq_numbers_are_monotonic_per_destination(self):
        outbox = Outbox("src", FlakyTransport())
        assert outbox.enqueue("a", "x", 1).seq == 1
        assert outbox.enqueue("a", "x", 2).seq == 2
        assert outbox.enqueue("b", "x", 3).seq == 1  # independent stream

    def test_network_failure_backs_off_then_delivers(self):
        transport = FlakyTransport(failures=2)
        outbox = Outbox("src", transport)
        outbox.enqueue("dst", "note", "payload")
        assert outbox.flush() == 0  # first attempt fails, entry backed off
        assert outbox.pending_count("dst") == 1
        assert outbox.flush() == 0  # not due yet — no transport call made
        assert len(transport.calls) == 1
        assert outbox.drain() == 1  # drain sleeps out the backoff windows
        assert outbox.retries == 2
        assert outbox.pending_count() == 0

    def test_head_of_line_blocking_preserves_order(self):
        transport = FlakyTransport(failures=1)
        outbox = Outbox("src", transport)
        outbox.enqueue("dst", "note", "first")
        outbox.enqueue("dst", "note", "second")
        outbox.flush()  # head fails; "second" must not jump the queue
        assert len(transport.calls) == 1
        outbox.drain()
        assert [payload for _, _, payload in transport.calls] == [
            "first", "first", "second",
        ]

    def test_exhausted_retries_park_the_whole_destination(self):
        transport = FlakyTransport(failures=10**9)
        outbox = Outbox(
            "src", transport, policy=RetryPolicy(max_attempts=3)
        )
        outbox.enqueue("dst", "note", "first")
        outbox.enqueue("dst", "note", "second")
        outbox.drain()
        # Both entries dead-letter: delivering "second" past a lost
        # "first" would reorder the stream.
        assert outbox.dead_count("dst") == 2
        assert outbox.pending_count("dst") == 0
        first, second = outbox.dead_letters
        assert first.entry.seq == 1 and not first.poison
        assert "held back" in second.error
        # Parked: new enqueues wait for a redrive instead of delivering.
        outbox.enqueue("dst", "note", "third")
        before = len(transport.calls)
        assert outbox.drain() == 0
        assert len(transport.calls) == before

    def test_poison_failure_dead_letters_only_that_entry(self):
        transport = FlakyTransport(poison_kinds={"bad"})
        outbox = Outbox("src", transport)
        outbox.enqueue("dst", "bad", "rejected")
        outbox.enqueue("dst", "note", "fine")
        assert outbox.flush() == 1
        assert outbox.dead_count("dst") == 1
        (letter,) = outbox.dead_letters
        assert letter.poison
        assert "rejected" in letter.entry.payload

    def test_redrive_restores_seq_order_and_unparks(self):
        transport = FlakyTransport(failures=3)
        outbox = Outbox(
            "src", transport, policy=RetryPolicy(max_attempts=2)
        )
        outbox.enqueue("dst", "note", "first")
        outbox.enqueue("dst", "note", "second")
        outbox.drain()
        assert outbox.dead_count("dst") == 2
        outbox.enqueue("dst", "note", "third")  # arrives while parked
        assert outbox.redrive("dst") == 2
        assert outbox.dead_count("dst") == 0
        outbox.drain()
        delivered = [payload for _, _, payload in transport.calls[-3:]]
        assert delivered == ["first", "second", "third"]

    def test_replay_since_reenqueues_acknowledged_history(self):
        transport = FlakyTransport()
        outbox = Outbox("src", transport)
        for index in range(4):
            outbox.enqueue("dst", "note", f"payload-{index}")
        outbox.flush()
        assert outbox.replay_since("dst", after_seq=2) == 2
        outbox.flush()
        replayed = [payload for _, _, payload in transport.calls[-2:]]
        assert replayed == ["payload-2", "payload-3"]

    def test_lag_report_shows_backlog_and_last_error(self):
        transport = FlakyTransport(failures=10**9)
        outbox = Outbox("src", transport)
        outbox.enqueue("dst", "note", "stuck")
        outbox.flush()
        report = outbox.lag_report()
        assert report["dst"]["pending"] == 1
        assert "flaked" in report["dst"]["last_error"]
        assert "ok" not in report  # destinations without backlog omitted

    def test_own_clock_advances_without_wall_time(self):
        transport = FlakyTransport(failures=1)
        outbox = Outbox(
            "src",
            transport,
            policy=RetryPolicy(base_delay_ms=40.0, jitter_ms=0.0),
        )
        outbox.enqueue("dst", "note", "payload")
        outbox.drain()
        assert outbox._read_own_clock() == pytest.approx(40.0)


class TestDedupIndex:
    def test_first_delivery_applies_then_duplicates_ignored(self):
        dedup = DedupIndex()
        assert dedup.check_and_record("mdp", 1)
        assert not dedup.check_and_record("mdp", 1)
        assert not dedup.check_and_record("mdp", 1)
        assert dedup.applied == 1
        assert dedup.duplicates_ignored == 2

    def test_sources_are_independent(self):
        dedup = DedupIndex()
        assert dedup.check_and_record("a", 1)
        assert dedup.check_and_record("b", 1)
        assert dedup.duplicates_ignored == 0

    def test_highest_and_watermarks(self):
        dedup = DedupIndex()
        for seq in (1, 3, 2):
            dedup.check_and_record("mdp", seq)
        assert dedup.highest("mdp") == 3
        assert dedup.highest("unknown") == 0
        assert dedup.watermarks() == {"mdp": 3}
        assert dedup.seen_count("mdp") == 3
