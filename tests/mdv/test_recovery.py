"""Unit tests for the startup RecoveryManager (docs/DURABILITY.md)."""

from repro.mdv.provider import MetadataProvider
from repro.mdv.recovery import RecoveryManager
from repro.obs import default_registry
from repro.workload.documents import benchmark_document
from repro.workload.rules import comp_rule, con_rule, con_token


def make_provider(schema, contains_index="scan"):
    mdp = MetadataProvider(
        schema, name="mdp", contains_index=contains_index
    )
    mdp.subscribe("lmr", comp_rule(3))
    mdp.subscribe("lmr", con_rule(1))
    token = con_token(1)
    for index in range(4):
        host = f"host{index}.{token}.example.org" if index % 2 else None
        mdp.register_document(
            benchmark_document(index, synth_value=index * 2, server_host=host)
        )
    return mdp


class TestCleanStore:
    def test_clean_store_needs_no_repairs(self, schema):
        mdp = make_provider(schema)
        report = RecoveryManager(mdp.db, schema).recover()
        assert report.clean
        assert report.repaired == 0
        assert not report.findings_before

    def test_scratch_rows_are_not_repairs(self, schema):
        mdp = make_provider(schema)
        # Residue of an interrupted filter run: routine, not damage.
        mdp.db.execute(
            "INSERT INTO filter_input (uri_reference, class, property, "
            "value) VALUES ('x', 'C', 'p', 'v')"
        )
        mdp.db.commit()
        report = RecoveryManager(mdp.db, schema).recover()
        assert report.scratch_rows >= 1
        assert report.repaired == 0
        assert mdp.db.count("filter_input") == 0

    def test_recovery_counters(self, schema):
        mdp = make_provider(schema)
        registry = default_registry()
        RecoveryManager(mdp.db, schema).recover()
        assert registry.counter("recovery.runs").value == 1
        assert registry.counter("recovery.findings_after").value == 0


class TestTornStoreRepairs:
    def test_refcount_drift_repaired(self, schema):
        mdp = make_provider(schema)
        mdp.db.execute(
            "UPDATE atomic_rules SET refcount = refcount + 3 "
            "WHERE rule_id = (SELECT MIN(rule_id) FROM atomic_rules)"
        )
        mdp.db.commit()
        report = RecoveryManager(mdp.db, schema).recover()
        assert report.findings_before
        assert report.repairs["refcounts"] == 1
        assert report.clean

    def test_wiped_trigram_postings_rebuilt(self, schema):
        mdp = make_provider(schema, contains_index="trigram")
        assert mdp.db.count("text_postings") > 0
        mdp.db.execute("DELETE FROM text_postings")
        mdp.db.commit()
        report = RecoveryManager(mdp.db, schema).recover()
        assert report.repairs["text_index_rules"] >= 1
        assert report.clean
        assert mdp.db.count("text_postings") > 0

    def test_deleted_filter_data_rebuilt_from_xml(self, schema):
        mdp = make_provider(schema)
        before = mdp.db.count("filter_data")
        mdp.db.execute(
            "DELETE FROM filter_data WHERE uri_reference LIKE 'doc1.rdf%'"
        )
        mdp.db.commit()
        report = RecoveryManager(mdp.db, schema).recover()
        assert report.repairs["filter_data_documents"] >= 1
        assert report.clean
        assert mdp.db.count("filter_data") == before

    def test_stranded_atom_tree_collected(self, schema):
        mdp = make_provider(schema)
        # Simulate a crash between subscription teardown steps: the
        # subscription row vanishes but its rules/atoms stay behind.
        row = mdp.db.query_one("SELECT MIN(sub_id) AS s FROM subscriptions")
        mdp.db.execute(
            "DELETE FROM subscriptions WHERE sub_id = ?", (row["s"],)
        )
        mdp.db.commit()
        atoms_before = mdp.db.count("atomic_rules")
        report = RecoveryManager(mdp.db, schema).recover()
        # The ON DELETE CASCADE takes the subscription_rules rows with
        # it; what remains is refcount drift plus an unreachable tree.
        assert report.repairs["refcounts"] >= 1
        assert report.repairs["dead_atoms"] >= 1
        assert report.clean
        assert mdp.db.count("atomic_rules") < atoms_before

    def test_second_pass_is_idempotent(self, schema):
        mdp = make_provider(schema, contains_index="trigram")
        mdp.db.execute("DELETE FROM text_postings")
        mdp.db.execute(
            "UPDATE atomic_rules SET refcount = refcount + 1 "
            "WHERE rule_id = (SELECT MIN(rule_id) FROM atomic_rules)"
        )
        mdp.db.commit()
        first = RecoveryManager(mdp.db, schema).recover()
        assert first.repaired > 0
        second = RecoveryManager(mdp.db, schema).recover()
        assert second.repaired == 0
        assert second.clean

    def test_audit_only_mode_repairs_nothing(self, schema):
        mdp = make_provider(schema)
        mdp.db.execute(
            "UPDATE atomic_rules SET refcount = refcount + 1 "
            "WHERE rule_id = (SELECT MIN(rule_id) FROM atomic_rules)"
        )
        mdp.db.commit()
        report = RecoveryManager(mdp.db, schema).recover(repair=False)
        assert report.findings_before
        assert report.findings_after  # nothing was fixed
        assert report.repaired == 0


class TestProviderIntegration:
    def test_auto_recovery_on_startup(self, schema):
        mdp = make_provider(schema)
        mdp.db.execute(
            "UPDATE atomic_rules SET refcount = refcount + 2 "
            "WHERE rule_id = (SELECT MIN(rule_id) FROM atomic_rules)"
        )
        mdp.db.commit()
        restarted = MetadataProvider(
            schema, name="mdp2", db=mdp.db, recovery="auto"
        )
        assert restarted.last_recovery is not None
        assert restarted.last_recovery.repaired >= 1
        assert restarted.last_recovery.clean

    def test_recovery_off_by_default(self, schema):
        mdp = make_provider(schema)
        restarted = MetadataProvider(schema, name="mdp2", db=mdp.db)
        assert restarted.last_recovery is None

    def test_report_summary_mentions_repairs(self, schema):
        mdp = make_provider(schema)
        mdp.db.execute(
            "UPDATE atomic_rules SET refcount = refcount + 2 "
            "WHERE rule_id = (SELECT MIN(rule_id) FROM atomic_rules)"
        )
        mdp.db.commit()
        report = RecoveryManager(mdp.db, schema).recover()
        assert "refcounts=1" in report.summary()
