"""Unit tests for MDV clients and the replicated MDP backbone."""

import pytest

from repro.errors import MDVError
from repro.mdv.backbone import Backbone
from repro.mdv.client import MDVClient
from repro.mdv.provider import MetadataProvider
from repro.mdv.repository import LocalMetadataRepository
from repro.net.bus import NetworkBus
from repro.rdf.model import Document, URIRef


def make_doc(index, host="a.uni-passau.de", memory=92):
    doc = Document(f"doc{index}.rdf")
    provider = doc.new_resource("host", "CycleProvider")
    provider.add("serverHost", host)
    provider.add("serverInformation", URIRef(f"doc{index}.rdf#info"))
    info = doc.new_resource("info", "ServerInformation")
    info.add("memory", memory)
    info.add("cpu", 600)
    return doc


class TestClient:
    @pytest.fixture()
    def stack(self, schema):
        mdp = MetadataProvider(schema, name="mdp")
        lmr = LocalMetadataRepository("lmr", mdp)
        client = MDVClient("alice", lmr)
        return mdp, lmr, client

    def test_query_goes_to_lmr(self, stack):
        mdp, lmr, client = stack
        lmr.subscribe(
            "search CycleProvider c register c "
            "where c.serverHost contains 'passau'"
        )
        mdp.register_document(make_doc(1))
        mdp.register_document(make_doc(2, host="x.tum.de"))
        assert [str(r.uri) for r in client.query("search CycleProvider c")] == [
            "doc1.rdf#host"
        ]

    def test_browse_goes_to_mdp(self, stack):
        mdp, __, client = stack
        mdp.register_document(make_doc(2, host="x.tum.de"))
        results = client.browse(
            "search CycleProvider c where c.serverHost contains 'tum'"
        )
        assert [str(r.uri) for r in results] == ["doc2.rdf#host"]

    def test_select_for_caching_generates_oid_rule(self, stack):
        mdp, lmr, client = stack
        mdp.register_document(make_doc(1))
        (browsed,) = client.browse(
            "search CycleProvider c where c.serverHost contains 'passau'"
        )
        rule_text = client.select_for_caching(browsed)
        assert "register r where r = 'doc1.rdf#host'" in rule_text
        assert "doc1.rdf#host" in lmr.cache
        # Updates to the selected resource keep flowing.
        mdp.register_document(make_doc(1, memory=1024))
        cached = lmr.cache.resource("doc1.rdf#info")
        assert cached.get_one("memory").value == 1024

    def test_register_through_client(self, stack):
        mdp, lmr, client = stack
        client.register_document(make_doc(5))
        assert mdp.document_count() == 1
        client.register_local_document(_local_doc())
        assert mdp.document_count() == 1

    def test_client_over_bus(self, schema):
        bus = NetworkBus()
        mdp = MetadataProvider(schema, name="mdp", bus=bus)
        lmr = LocalMetadataRepository("lmr", mdp, bus=bus)
        client = MDVClient("alice", lmr, bus=bus)
        bus.set_latency("alice", "lmr", 0.5)  # LAN
        mdp.register_document(make_doc(1))
        client.query("search CycleProvider c")
        client.browse("search CycleProvider c")
        lan = bus.links[("alice", "lmr")]
        wan = bus.links[("alice", "mdp")]
        assert lan.latency_ms < wan.latency_ms


def _local_doc():
    doc = Document("local.rdf")
    doc.new_resource("x", "ServerInformation").add("memory", 1)
    return doc


class TestBackbone:
    def test_replication_synchronizes_all_providers(self, schema):
        backbone = Backbone(schema)
        europe = backbone.add_provider("mdp-eu")
        america = backbone.add_provider("mdp-us")
        backbone.register_document(make_doc(1), at="mdp-eu")
        assert europe.document_count() == 1
        assert america.document_count() == 1
        assert backbone.is_synchronized()

    def test_each_provider_serves_its_own_subscribers(self, schema):
        backbone = Backbone(schema)
        europe = backbone.add_provider("mdp-eu")
        america = backbone.add_provider("mdp-us")
        lmr_eu = LocalMetadataRepository("lmr-eu", europe)
        lmr_us = LocalMetadataRepository("lmr-us", america)
        lmr_eu.subscribe(
            "search CycleProvider c register c "
            "where c.serverHost contains 'passau'"
        )
        lmr_us.subscribe(
            "search CycleProvider c register c "
            "where c.serverHost contains 'tum'"
        )
        backbone.register_document(make_doc(1), at="mdp-us")
        backbone.register_document(make_doc(2, host="x.tum.de"), at="mdp-eu")
        assert "doc1.rdf#host" in lmr_eu.cache
        assert "doc1.rdf#host" not in lmr_us.cache
        assert "doc2.rdf#host" in lmr_us.cache

    def test_deletion_replicates(self, schema):
        backbone = Backbone(schema)
        backbone.add_provider("a")
        backbone.add_provider("b")
        backbone.register_document(make_doc(1), at="a")
        backbone.delete_document("doc1.rdf", at="b")
        assert all(
            p.document_count() == 0 for p in backbone.providers.values()
        )
        assert backbone.is_synchronized()

    def test_update_replicates(self, schema):
        backbone = Backbone(schema)
        backbone.add_provider("a")
        other = backbone.add_provider("b")
        backbone.register_document(make_doc(1, memory=92), at="a")
        backbone.register_document(make_doc(1, memory=256), at="b")
        assert (
            other.resource("doc1.rdf#info").get_one("memory").value == 256
        )
        assert backbone.is_synchronized()

    def test_duplicate_provider_name_rejected(self, schema):
        backbone = Backbone(schema)
        backbone.add_provider("a")
        with pytest.raises(MDVError):
            backbone.add_provider("a")

    def test_empty_backbone_rejected(self, schema):
        backbone = Backbone(schema)
        with pytest.raises(MDVError):
            backbone.register_document(make_doc(1))

    def test_replication_over_bus_accounted(self, schema):
        bus = NetworkBus()
        backbone = Backbone(schema, bus=bus)
        backbone.add_provider("a")
        backbone.add_provider("b")
        backbone.register_document(make_doc(1), at="a")
        assert ("a", "b") in bus.links
        assert backbone.replications == 1
