"""Provider snapshot/restore and LMR catch-up-from-snapshot."""

import os

from repro.mdv.provider import MetadataProvider
from repro.mdv.repository import LocalMetadataRepository
from repro.workload.chaos import resource_snapshot
from repro.workload.documents import benchmark_document, document_uri
from repro.workload.rules import comp_rule, con_rule, con_token


def populated_provider(schema):
    mdp = MetadataProvider(schema, name="mdp", durable_delivery=True)
    lmr = LocalMetadataRepository("lmr", mdp)
    lmr.subscribe(comp_rule(2))
    lmr.subscribe(con_rule(1))
    token = con_token(1)
    for index in range(4):
        host = f"host{index}.{token}.example.org" if index % 2 else None
        mdp.register_document(
            benchmark_document(index, synth_value=index * 3, server_host=host)
        )
    return mdp, lmr


def cache_image(lmr):
    return sorted(
        resource_snapshot(resource) for resource in lmr.cache.resources()
    )


class TestProviderSnapshot:
    def test_snapshot_is_independent_copy(self, schema):
        mdp, _ = populated_provider(schema)
        snap = mdp.snapshot()
        docs = snap.count("documents")
        assert docs == mdp.document_count()
        mdp.register_document(benchmark_document(9, synth_value=1))
        assert snap.count("documents") == docs  # unchanged
        snap.close()

    def test_snapshot_to_file_with_durability_override(self, schema, tmp_path):
        mdp, _ = populated_provider(schema)
        path = os.fspath(tmp_path / "snap.db")
        snap = mdp.snapshot(path, durability="safe")
        assert snap.path == path
        assert snap.durability == "safe"
        assert snap.count("documents") == mdp.document_count()
        snap.close()

    def test_new_provider_resumes_from_snapshot(self, schema):
        mdp, lmr = populated_provider(schema)
        snap = mdp.snapshot()
        restored = MetadataProvider(
            schema, name="mdp", db=snap, durable_delivery=True,
            recovery="auto",
        )
        assert restored.last_recovery is not None
        assert restored.last_recovery.clean
        assert restored.document_count() == mdp.document_count()
        # The restored node's streams continue past the snapshot.
        assert restored.outbox_watermark("lmr") == mdp.outbox_watermark("lmr")
        restored.delete_document(document_uri(0))
        assert restored.document_count() == mdp.document_count() - 1


class TestCatchUpFromSnapshot:
    def test_blank_lmr_catches_up_to_live_state(self, schema):
        mdp, live = populated_provider(schema)
        snap = mdp.snapshot()
        # Post-snapshot traffic the fresh LMR must replay, not miss.
        mdp.register_document(benchmark_document(7, synth_value=9))
        mdp.register_document(
            benchmark_document(1, synth_value=8)  # update across threshold
        )

        fresh = LocalMetadataRepository("lmr", mdp)
        cached = fresh.catch_up_from_snapshot(snap)
        assert cached > 0
        assert cache_image(fresh) == cache_image(live)
        # The snapshot prefix was skipped, never re-applied: no batch
        # arrived twice.
        assert fresh.dedup.duplicates_ignored == 0
        snap.close()

    def test_catch_up_with_no_post_snapshot_traffic(self, schema):
        mdp, live = populated_provider(schema)
        snap = mdp.snapshot()
        fresh = LocalMetadataRepository("lmr", mdp)
        fresh.catch_up_from_snapshot(snap)
        assert cache_image(fresh) == cache_image(live)
        assert fresh.dedup.duplicates_ignored == 0
        snap.close()
