"""Tests for the ``python -m repro.mdv`` command-line interface."""

import pytest

import repro.mdv.__main__ as cli


def test_demo_runs_and_reports(capsys):
    assert cli.main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "subscribing lmr-passau" in out
    assert "provider statistics" in out
    assert "network accounting" in out
    # The upgrade brings kat into the cache: 3 providers in the end.
    assert out.count("doc") > 4


def test_explain_valid_rule(capsys):
    assert (
        cli.main(
            [
                "explain",
                "search CycleProvider c register c "
                "where c.serverInformation.memory > 64",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "normalized:" in out
    assert "triggering" in out


def test_explain_invalid_rule(capsys):
    assert cli.main(["explain", "search Nonsense"]) == 1
    err = capsys.readouterr().err
    assert "error:" in err


def test_command_required():
    with pytest.raises(SystemExit):
        cli.main([])


def test_demo_metrics_dumps_registry_snapshot(capsys):
    assert cli.main(["demo", "--metrics"]) == 0
    out = capsys.readouterr().out
    assert '"counters"' in out
    assert '"mdp.registrations{mdp=mdp-1}": 5.0' in out
    assert '"lmr.batches_applied{lmr=lmr-passau}"' in out
    # Per-link gauges are folded in before the dump.
    assert '"net.link.messages{link=mdp-1->lmr-passau}"' in out


def test_metrics_flag_accepted_before_the_command(capsys):
    assert cli.main(["--metrics", "demo"]) == 0
    assert '"counters"' in capsys.readouterr().out
