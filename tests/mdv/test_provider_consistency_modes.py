"""Provider-level tests of the pluggable consistency strategies."""

import pytest

from repro.mdv.consistency import expire_stale_entries
from repro.mdv.provider import MetadataProvider
from repro.mdv.repository import LocalMetadataRepository
from repro.rdf.model import Document, URIRef

MEMORY_RULE = (
    "search CycleProvider c register c "
    "where c.serverInformation.memory > 64"
)


def make_doc(index, memory=92):
    doc = Document(f"doc{index}.rdf")
    provider = doc.new_resource("host", "CycleProvider")
    provider.add("serverHost", "a.uni-passau.de")
    provider.add("serverInformation", URIRef(f"doc{index}.rdf#info"))
    info = doc.new_resource("info", "ServerInformation")
    info.add("memory", memory)
    info.add("cpu", 600)
    return doc


def test_invalid_mode_rejected(schema):
    with pytest.raises(ValueError):
        MetadataProvider(schema, consistency="eventual-ish")


def test_resource_list_mode_full_cycle(schema):
    mdp = MetadataProvider(schema, consistency="resource-list")
    lmr = LocalMetadataRepository("lmr", mdp)
    lmr.subscribe(MEMORY_RULE)
    mdp.register_document(make_doc(1, memory=92))
    assert "doc1.rdf#host" in lmr.cache
    # Update below the threshold: precise eviction, like the filter.
    mdp.register_document(make_doc(1, memory=16))
    assert "doc1.rdf#host" not in lmr.cache
    # And back in.
    mdp.register_document(make_doc(1, memory=256))
    assert "doc1.rdf#host" in lmr.cache


def test_ttl_mode_keeps_stale_until_expiry(schema):
    mdp = MetadataProvider(schema, consistency="ttl")
    lmr = LocalMetadataRepository("lmr", mdp)
    lmr.subscribe(MEMORY_RULE)
    mdp.register_document(make_doc(1, memory=92))
    assert "doc1.rdf#host" in lmr.cache

    # The update stops the match, but TTL mode sends no unmatch:
    # the cache serves stale data …
    mdp.register_document(make_doc(1, memory=16))
    assert "doc1.rdf#host" in lmr.cache

    # … until the expiry pass reclaims entries that were not refreshed.
    evicted = expire_stale_entries(lmr.cache, now=lmr.clock + 10, ttl=5)
    assert evicted >= 1
    assert "doc1.rdf#host" not in lmr.cache


def test_ttl_mode_refresh_renews(schema):
    mdp = MetadataProvider(schema, consistency="ttl")
    lmr = LocalMetadataRepository("lmr", mdp)
    lmr.subscribe(MEMORY_RULE)
    mdp.register_document(make_doc(1, memory=92))
    # A still-matching update re-publishes and renews the entry.
    mdp.register_document(make_doc(1, memory=128))
    refreshed_at = lmr.cache.get("doc1.rdf#host").refreshed_at
    assert refreshed_at == lmr.clock
    assert expire_stale_entries(lmr.cache, now=lmr.clock, ttl=5) == 0


def test_ttl_mode_deletions_still_broadcast(schema):
    mdp = MetadataProvider(schema, consistency="ttl")
    lmr = LocalMetadataRepository("lmr", mdp)
    lmr.subscribe(MEMORY_RULE)
    mdp.register_document(make_doc(1))
    mdp.delete_document("doc1.rdf")
    assert "doc1.rdf#host" not in lmr.cache


def test_lmr_expire_wrapper(schema):
    mdp = MetadataProvider(schema, consistency="ttl")
    lmr = LocalMetadataRepository("lmr", mdp)
    lmr.subscribe(MEMORY_RULE)
    mdp.register_document(make_doc(1, memory=92))
    mdp.register_document(make_doc(1, memory=16))  # stale entry remains
    lmr.clock += 10
    assert lmr.expire(ttl=5) >= 1
    assert "doc1.rdf#host" not in lmr.cache
