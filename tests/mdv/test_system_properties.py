"""System-level property test: LMR caches track the global state.

Random sequences of register/update/delete operations at the MDP, with
two LMRs holding different rule sets.  Invariant, checked after every
settled sequence: each LMR's *matched* cache entries are exactly the
union of its rules evaluated (via the independent query oracle) over
the provider's current documents — and cached content is identical to
the provider's.
"""

from tests.conftest import prop_settings
from hypothesis import given, settings, strategies as st

from repro.mdv.provider import MetadataProvider
from repro.mdv.repository import LocalMetadataRepository
from repro.query.evaluator import evaluate_query
from repro.rdf.model import Document, URIRef
from repro.rdf.schema import objectglobe_schema
from repro.rules.ast import Query
from repro.rules.parser import parse_rule

SCHEMA = objectglobe_schema()
DOCS = 4

RULESETS = {
    "lmr-a": [
        "search CycleProvider c register c "
        "where c.serverHost contains 'passau'",
        "search CycleProvider c register c "
        "where c.serverInformation.memory > 3",
    ],
    "lmr-b": [
        "search ServerInformation s register s where s.cpu >= 2",
        "search CycleProvider c register c where c.synthValue != 1",
    ],
}

hosts = st.sampled_from(["a.uni-passau.de", "b.tum.de", "c.de"])
small_ints = st.integers(min_value=0, max_value=5)


def make_doc(index, host, synth, memory, cpu):
    doc = Document(f"doc{index}.rdf")
    provider = doc.new_resource("host", "CycleProvider")
    provider.add("serverHost", host)
    provider.add("synthValue", synth)
    provider.add("serverInformation", URIRef(f"doc{index}.rdf#info"))
    info = doc.new_resource("info", "ServerInformation")
    info.add("memory", memory)
    info.add("cpu", cpu)
    return doc


@st.composite
def operations(draw):
    steps = []
    for __ in range(draw(st.integers(min_value=1, max_value=10))):
        kind = draw(st.sampled_from(["register", "register", "delete"]))
        index = draw(st.integers(min_value=0, max_value=DOCS - 1))
        if kind == "register":
            steps.append(
                (
                    "register",
                    index,
                    draw(hosts),
                    draw(small_ints),
                    draw(small_ints),
                    draw(small_ints),
                )
            )
        else:
            steps.append(("delete", index))
    return steps


@prop_settings(30)
@given(steps=operations())
def test_lmr_caches_track_global_state(steps):
    mdp = MetadataProvider(SCHEMA)
    lmrs = {}
    for name, rules in RULESETS.items():
        lmr = LocalMetadataRepository(name, mdp)
        for rule in rules:
            lmr.subscribe(rule)
        lmrs[name] = lmr

    current: dict[str, Document] = {}
    for step in steps:
        if step[0] == "register":
            __, index, host, synth, memory, cpu = step
            doc = make_doc(index, host, synth, memory, cpu)
            mdp.register_document(doc)
            current[doc.uri] = doc
        else:
            __, index = step
            uri = f"doc{index}.rdf"
            if uri in current:
                mdp.delete_document(uri)
                del current[uri]

    pool = {r.uri: r for doc in current.values() for r in doc}
    for name, rules in RULESETS.items():
        lmr = lmrs[name]
        expected: set[URIRef] = set()
        for text in rules:
            rule = parse_rule(text)
            query = Query(rule.extensions, rule.register, rule.where)
            expected |= {
                r.uri for r in evaluate_query(query, pool, SCHEMA)
            }
        matched = {
            uri
            for uri in lmr.cache.uris()
            if lmr.cache.get(uri).matched_subs
        }
        assert matched == expected, name
        # Cached content equals provider content.
        for uri in matched:
            assert lmr.cache.resource(uri) == mdp.resource(uri), uri
