"""Tests for the generic-XML adapter (future-work extension)."""

import pytest

from repro.errors import DocumentParseError
from repro.mdv.provider import MetadataProvider
from repro.mdv.repository import LocalMetadataRepository
from repro.rdf.model import URIRef
from repro.rdf.schema import PropertyKind
from repro.xmlext.adapter import infer_schema, xml_to_document

CATALOG_XML = """<catalog>
  <book id="b1">
    <title>Principles of Distributed Database Systems</title>
    <year>1999</year>
    <price>79.5</price>
    <author id="a1">
      <name>Ozsu</name>
    </author>
    <tag>databases</tag>
    <tag>distribution</tag>
  </book>
  <book id="b2">
    <title>The Jini Specification</title>
    <year>1999</year>
    <price>35</price>
    <author id="a2">
      <name>Arnold</name>
    </author>
    <cites ref="cat.xml#b1"/>
  </book>
</catalog>
"""


@pytest.fixture()
def catalog():
    return xml_to_document(CATALOG_XML, "cat.xml")


class TestConversion:
    def test_resources_and_classes(self, catalog):
        classes = {str(r.uri): r.rdf_class for r in catalog}
        assert classes == {
            "cat.xml#b1": "book",
            "cat.xml#a1": "author",
            "cat.xml#b2": "book",
            "cat.xml#a2": "author",
        }

    def test_literal_properties_typed(self, catalog):
        book = catalog.get("cat.xml#b1")
        assert book.get_one("year").value == 1999
        assert book.get_one("price").value == 79.5
        assert book.get_one("title").value.startswith("Principles")

    def test_repeated_tags_become_multivalued(self, catalog):
        book = catalog.get("cat.xml#b1")
        assert sorted(v.value for v in book.get("tag")) == [
            "databases",
            "distribution",
        ]

    def test_nested_elements_hoisted_to_references(self, catalog):
        book = catalog.get("cat.xml#b1")
        assert book.get_one("author") == URIRef("cat.xml#a1")
        assert catalog.get("cat.xml#a1").get_one("name").value == "Ozsu"

    def test_ref_attribute_becomes_reference(self, catalog):
        book = catalog.get("cat.xml#b2")
        assert book.get_one("cites") == URIRef("cat.xml#b1")

    def test_synthetic_ids_for_anonymous_resources(self):
        xml = "<root><thing><part><x>1</x></part></thing></root>"
        doc = xml_to_document(xml, "d.xml")
        assert any(
            uri.local_name.startswith("thing-") for uri in doc.resources
        )

    def test_duplicate_ids_rejected(self):
        xml = "<root><a id='x'/><b id='x'/></root>"
        with pytest.raises(DocumentParseError):
            xml_to_document(xml, "d.xml")

    def test_malformed_xml_rejected(self):
        with pytest.raises(DocumentParseError):
            xml_to_document("<root", "d.xml")


class TestSchemaInference:
    def test_inferred_kinds(self, catalog):
        schema = infer_schema([catalog])
        assert schema.property_def("book", "year").kind is PropertyKind.INTEGER
        # price saw both int and float: widened to FLOAT.
        assert schema.property_def("book", "price").kind is PropertyKind.FLOAT
        assert schema.property_def("book", "title").kind is PropertyKind.STRING

    def test_nested_reference_is_strong(self, catalog):
        schema = infer_schema([catalog])
        assert schema.property_def("book", "author").is_strong

    def test_ref_attribute_is_weak(self, catalog):
        schema = infer_schema([catalog])
        cites = schema.property_def("book", "cites")
        assert cites.is_reference and not cites.is_strong

    def test_multivalued_detected(self, catalog):
        schema = infer_schema([catalog])
        assert schema.property_def("book", "tag").multivalued

    def test_documents_validate_against_inferred_schema(self, catalog):
        schema = infer_schema([catalog])
        schema.validate_document(catalog)

    def test_xml_strings_accepted(self):
        schema = infer_schema([CATALOG_XML], document_uris=["cat.xml"])
        assert schema.has_class("book")

    def test_xml_strings_need_uris(self):
        with pytest.raises(ValueError):
            infer_schema([CATALOG_XML])

    def test_mixed_reference_targets_rejected(self):
        # The same (class, property) pair referencing two different
        # target classes cannot be expressed in an MDV schema.
        xml = (
            "<root>"
            "<x id='x1'><link ref='d.xml#a1'/></x>"
            "<x id='x2'><link ref='d.xml#y1'/></x>"
            "<a id='a1'><v>1</v></a>"
            "<y id='y1'><w>2</w></y>"
            "</root>"
        )
        doc = xml_to_document(xml, "d.xml")
        with pytest.raises(DocumentParseError):
            infer_schema([doc])


class TestXmlOverMdv:
    """The headline claim: the unchanged filter serves XML content."""

    def test_subscribe_to_xml_content(self, catalog):
        schema = infer_schema([catalog])
        mdp = MetadataProvider(schema)
        lmr = LocalMetadataRepository("reader", mdp)
        lmr.subscribe(
            "search book b register b where b.year >= 1999 "
            "and b.price < 50"
        )
        mdp.register_document(catalog)
        cached = [str(u) for u in lmr.cache.uris()]
        # b2 matches; its strong author travels along.
        assert "cat.xml#b2" in cached
        assert "cat.xml#a2" in cached
        assert "cat.xml#b1" not in cached

    def test_updates_propagate_for_xml(self, catalog):
        schema = infer_schema([catalog])
        mdp = MetadataProvider(schema)
        lmr = LocalMetadataRepository("reader", mdp)
        lmr.subscribe("search book b register b where b.price < 50")
        mdp.register_document(catalog)
        assert "cat.xml#b2" in lmr.cache

        repriced = xml_to_document(
            CATALOG_XML.replace("<price>35</price>", "<price>99</price>"),
            "cat.xml",
        )
        mdp.register_document(repriced)
        assert "cat.xml#b2" not in lmr.cache

    def test_path_rules_over_xml(self, catalog):
        schema = infer_schema([catalog])
        mdp = MetadataProvider(schema)
        lmr = LocalMetadataRepository("reader", mdp)
        lmr.subscribe(
            "search book b register b where b.author.name contains 'Ozsu'"
        )
        mdp.register_document(catalog)
        matched = [
            str(uri)
            for uri in lmr.cache.uris()
            if lmr.cache.get(uri).matched_subs
        ]
        assert matched == ["cat.xml#b1"]
