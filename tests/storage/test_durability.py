"""Tests for crash-point injection and durability profiles."""

import os

import pytest

from repro.errors import CrashError
from repro.obs import default_registry
from repro.storage.durability import (
    DURABILITY_PROFILES,
    CrashPlan,
    CrashPoint,
    enumerate_crash_points,
    pragmas_for,
)
from repro.storage.engine import Database


class TestPragmaProfiles:
    def test_fast_profile_trades_durability_for_speed(self):
        pragmas = pragmas_for("/tmp/x.db", "fast")
        assert "PRAGMA journal_mode = MEMORY" in pragmas
        assert "PRAGMA synchronous = OFF" in pragmas

    def test_safe_profile_on_disk_uses_wal(self):
        pragmas = pragmas_for("/tmp/x.db", "safe")
        assert "PRAGMA journal_mode = WAL" in pragmas
        assert "PRAGMA synchronous = NORMAL" in pragmas

    def test_safe_profile_in_memory_keeps_memory_journal(self):
        pragmas = pragmas_for(":memory:", "safe")
        assert "PRAGMA journal_mode = MEMORY" in pragmas
        assert "PRAGMA synchronous = NORMAL" in pragmas

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            pragmas_for(":memory:", "medium-rare")

    def test_database_applies_profile(self, tmp_path):
        path = os.fspath(tmp_path / "safe.db")
        db = Database(path, durability="safe")
        assert db.durability == "safe"
        assert db.scalar("PRAGMA journal_mode") == "wal"
        db.close()

    def test_profiles_tuple_is_exhaustive(self):
        assert DURABILITY_PROFILES == ("fast", "safe")


class TestCrashPlan:
    def test_counts_without_targets(self):
        plan = CrashPlan()
        for _ in range(3):
            assert plan.on_statement() is False
        assert plan.on_commit() is False
        assert plan.statements_seen == 3
        assert plan.commits_seen == 1
        assert plan.fired is False

    def test_fires_once_at_statement_target(self):
        plan = CrashPlan(crash_at_statement=2)
        assert plan.on_statement() is False
        assert plan.on_statement() is True
        assert plan.fired is True
        assert plan.on_statement() is False  # never fires twice

    def test_fires_at_commit_target(self):
        plan = CrashPlan(crash_at_commit=1)
        assert plan.on_statement() is False
        assert plan.on_commit() is True


class TestCrashPoints:
    def test_enumerate_covers_commits_and_strided_statements(self):
        points = enumerate_crash_points(10, 2, statement_stride=5)
        boundaries = {(p.boundary, p.ordinal) for p in points}
        assert ("commit", 1) in boundaries
        assert ("commit", 2) in boundaries
        assert ("statement", 1) in boundaries
        assert ("statement", 6) in boundaries
        assert ("statement", 4) not in boundaries

    def test_point_builds_matching_plan(self):
        plan = CrashPoint("statement", 3).plan()
        assert plan.crash_at_statement == 3
        assert plan.crash_at_commit is None
        plan = CrashPoint("commit", 2).plan()
        assert plan.crash_at_commit == 2


class TestCrashInjection:
    def test_statement_crash_discards_open_transaction(self):
        db = Database()
        db.execute("CREATE TABLE t (a)")
        db.commit()
        db.install_crash_plan(CrashPlan(crash_at_statement=2))
        with pytest.raises(CrashError) as err:
            with db.transaction():
                db.execute("INSERT INTO t VALUES (1)")
                db.execute("INSERT INTO t VALUES (2)")
        assert err.value.boundary == "statement"
        db.clear_crash_plan()
        assert db.count("t") == 0
        db.close()

    def test_commit_crash_discards_the_committing_transaction(self):
        db = Database()
        db.execute("CREATE TABLE t (a)")
        db.commit()
        db.install_crash_plan(CrashPlan(crash_at_commit=1))
        with pytest.raises(CrashError):
            with db.transaction():
                db.execute("INSERT INTO t VALUES (1)")
        db.clear_crash_plan()
        assert db.count("t") == 0
        # The connection stays usable: this models a restarted process
        # reopening the same store.
        with db.transaction():
            db.execute("INSERT INTO t VALUES (3)")
        assert db.count("t") == 1
        db.close()

    def test_crash_counters(self):
        db = Database()
        registry = default_registry()
        db.install_crash_plan(CrashPlan(crash_at_statement=1))
        assert registry.counter("storage.crash.armed").value == 1
        with pytest.raises(CrashError):
            db.execute("SELECT 1")
        assert registry.counter("storage.crash.injected").value == 1
        db.clear_crash_plan()
        db.close()

    def test_cleared_plan_stops_firing(self):
        db = Database()
        db.install_crash_plan(CrashPlan(crash_at_statement=1))
        assert db.crash_plan is not None
        db.clear_crash_plan()
        assert db.crash_plan is None
        db.execute("SELECT 1")
        db.close()
