"""Unit tests for the SQLite engine wrapper."""

import pytest

from repro.errors import StorageError
from repro.storage.engine import Database


def test_row_access_by_name():
    db = Database()
    db.execute("CREATE TABLE t (a, b)")
    db.execute("INSERT INTO t VALUES (1, 'x')")
    row = db.query_one("SELECT * FROM t")
    assert row["a"] == 1
    assert row["b"] == "x"
    db.close()


def test_scalar_and_count():
    db = Database()
    db.execute("CREATE TABLE t (a)")
    db.executemany("INSERT INTO t VALUES (?)", [(i,) for i in range(5)])
    assert db.scalar("SELECT SUM(a) FROM t") == 10
    assert db.count("t") == 5
    assert db.count("t", "a > ?", (2,)) == 2
    db.close()


def test_scalar_of_empty_result_is_none():
    db = Database()
    db.execute("CREATE TABLE t (a)")
    assert db.query_one("SELECT a FROM t") is None
    db.close()


def test_transaction_commits():
    db = Database()
    db.execute("CREATE TABLE t (a)")
    with db.transaction():
        db.execute("INSERT INTO t VALUES (1)")
    assert db.count("t") == 1
    db.close()


def test_transaction_rolls_back_on_error():
    db = Database()
    db.execute("CREATE TABLE t (a)")
    db.commit()
    with pytest.raises(RuntimeError):
        with db.transaction():
            db.execute("INSERT INTO t VALUES (1)")
            raise RuntimeError("boom")
    assert db.count("t") == 0
    db.close()


def test_nested_transactions_join_outer():
    db = Database()
    db.execute("CREATE TABLE t (a)")
    db.commit()
    with pytest.raises(RuntimeError):
        with db.transaction():
            db.execute("INSERT INTO t VALUES (1)")
            with db.transaction():
                db.execute("INSERT INTO t VALUES (2)")
            raise RuntimeError("boom")
    assert db.count("t") == 0
    db.close()


def test_sql_errors_wrapped():
    db = Database()
    with pytest.raises(StorageError) as err:
        db.execute("SELECT * FROM missing_table")
    assert "missing_table" in str(err.value)
    db.close()


def test_executemany_errors_wrapped():
    db = Database()
    with pytest.raises(StorageError):
        db.executemany("INSERT INTO nope VALUES (?)", [(1,)])
    db.close()


def test_closed_database_rejected():
    db = Database()
    db.close()
    with pytest.raises(StorageError):
        db.execute("SELECT 1")
    db.close()  # idempotent


def test_clone_copies_data_and_is_independent():
    db = Database()
    db.execute("CREATE TABLE t (a)")
    db.execute("INSERT INTO t VALUES (1)")
    db.commit()
    duplicate = db.clone()
    duplicate.execute("INSERT INTO t VALUES (2)")
    assert db.count("t") == 1
    assert duplicate.count("t") == 2
    db.close()
    duplicate.close()


def test_table_names_sorted():
    db = Database()
    db.execute("CREATE TABLE zeta (a)")
    db.execute("CREATE TABLE alpha (a)")
    assert db.table_names() == ["alpha", "zeta"]
    db.close()


def test_explain_returns_plan_text():
    db = Database()
    db.execute("CREATE TABLE t (a PRIMARY KEY, b)")
    plan = db.explain("SELECT b FROM t WHERE a = ?", (1,))
    assert "t" in plan
    db.close()


def test_context_manager_closes():
    with Database() as db:
        db.execute("SELECT 1")
    with pytest.raises(StorageError):
        db.execute("SELECT 1")


def test_clone_to_disk_and_back(tmp_path):
    db = Database()
    db.execute("CREATE TABLE t (a)")
    db.execute("INSERT INTO t VALUES (1)")
    db.commit()
    path = str(tmp_path / "copy.db")
    on_disk = db.clone(path, durability="safe")
    assert on_disk.path == path
    assert on_disk.durability == "safe"
    assert on_disk.count("t") == 1
    on_disk.close()
    # The file persists: reopening it sees the data.
    reopened = Database(path, durability="safe")
    assert reopened.count("t") == 1
    reopened.close()
    db.close()


def test_clone_of_closed_database_raises():
    db = Database()
    db.close()
    with pytest.raises(StorageError) as err:
        db.clone()
    assert "closed" in str(err.value)


def test_commit_inside_transaction_block_rejected():
    db = Database()
    db.execute("CREATE TABLE t (a)")
    db.commit()
    with pytest.raises(StorageError) as err:
        with db.transaction():
            db.execute("INSERT INTO t VALUES (1)")
            db.commit()
    assert "transaction" in str(err.value)
    # The block's rollback ran: the partial work is gone.
    assert db.count("t") == 0
    db.close()


def test_rollback_inside_transaction_block_rejected():
    db = Database()
    with pytest.raises(StorageError):
        with db.transaction():
            db.rollback()
    db.close()


def test_nested_transaction_rolls_back_inner_only():
    db = Database()
    db.execute("CREATE TABLE t (a)")
    db.commit()
    with db.transaction():
        db.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.execute("INSERT INTO t VALUES (2)")
                raise RuntimeError("inner boom")
        db.execute("INSERT INTO t VALUES (3)")
    # The savepoint unwound row 2; rows 1 and 3 committed.
    rows = sorted(row["a"] for row in db.query_all("SELECT a FROM t"))
    assert rows == [1, 3]
    db.close()


def test_deeply_nested_savepoints():
    db = Database()
    db.execute("CREATE TABLE t (a)")
    db.commit()
    with db.transaction():
        db.execute("INSERT INTO t VALUES (1)")
        with db.transaction():
            db.execute("INSERT INTO t VALUES (2)")
            with pytest.raises(RuntimeError):
                with db.transaction():
                    db.execute("INSERT INTO t VALUES (3)")
                    raise RuntimeError("boom")
    rows = sorted(row["a"] for row in db.query_all("SELECT a FROM t"))
    assert rows == [1, 2]
    db.close()


def test_cross_thread_nested_transaction_rejected():
    import threading

    db = Database(check_same_thread=False)
    db.execute("CREATE TABLE t (a)")
    db.commit()
    failures = []

    def nested_from_other_thread():
        try:
            with db.transaction():
                pass
        except StorageError as exc:
            failures.append(str(exc))

    with db.transaction():
        db.execute("INSERT INTO t VALUES (1)")
        worker = threading.Thread(target=nested_from_other_thread)
        worker.start()
        worker.join()
    assert len(failures) == 1
    assert "thread" in failures[0]
    db.close()


def test_executescript_inside_transaction_rejected():
    db = Database()
    with pytest.raises(StorageError) as err:
        with db.transaction():
            db.executescript("CREATE TABLE t (a);")
    assert "executescript" in str(err.value)
    db.close()
