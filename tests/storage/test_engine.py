"""Unit tests for the SQLite engine wrapper."""

import pytest

from repro.errors import StorageError
from repro.storage.engine import Database


def test_row_access_by_name():
    db = Database()
    db.execute("CREATE TABLE t (a, b)")
    db.execute("INSERT INTO t VALUES (1, 'x')")
    row = db.query_one("SELECT * FROM t")
    assert row["a"] == 1
    assert row["b"] == "x"
    db.close()


def test_scalar_and_count():
    db = Database()
    db.execute("CREATE TABLE t (a)")
    db.executemany("INSERT INTO t VALUES (?)", [(i,) for i in range(5)])
    assert db.scalar("SELECT SUM(a) FROM t") == 10
    assert db.count("t") == 5
    assert db.count("t", "a > ?", (2,)) == 2
    db.close()


def test_scalar_of_empty_result_is_none():
    db = Database()
    db.execute("CREATE TABLE t (a)")
    assert db.query_one("SELECT a FROM t") is None
    db.close()


def test_transaction_commits():
    db = Database()
    db.execute("CREATE TABLE t (a)")
    with db.transaction():
        db.execute("INSERT INTO t VALUES (1)")
    assert db.count("t") == 1
    db.close()


def test_transaction_rolls_back_on_error():
    db = Database()
    db.execute("CREATE TABLE t (a)")
    db.commit()
    with pytest.raises(RuntimeError):
        with db.transaction():
            db.execute("INSERT INTO t VALUES (1)")
            raise RuntimeError("boom")
    assert db.count("t") == 0
    db.close()


def test_nested_transactions_join_outer():
    db = Database()
    db.execute("CREATE TABLE t (a)")
    db.commit()
    with pytest.raises(RuntimeError):
        with db.transaction():
            db.execute("INSERT INTO t VALUES (1)")
            with db.transaction():
                db.execute("INSERT INTO t VALUES (2)")
            raise RuntimeError("boom")
    assert db.count("t") == 0
    db.close()


def test_sql_errors_wrapped():
    db = Database()
    with pytest.raises(StorageError) as err:
        db.execute("SELECT * FROM missing_table")
    assert "missing_table" in str(err.value)
    db.close()


def test_executemany_errors_wrapped():
    db = Database()
    with pytest.raises(StorageError):
        db.executemany("INSERT INTO nope VALUES (?)", [(1,)])
    db.close()


def test_closed_database_rejected():
    db = Database()
    db.close()
    with pytest.raises(StorageError):
        db.execute("SELECT 1")
    db.close()  # idempotent


def test_clone_copies_data_and_is_independent():
    db = Database()
    db.execute("CREATE TABLE t (a)")
    db.execute("INSERT INTO t VALUES (1)")
    db.commit()
    duplicate = db.clone()
    duplicate.execute("INSERT INTO t VALUES (2)")
    assert db.count("t") == 1
    assert duplicate.count("t") == 2
    db.close()
    duplicate.close()


def test_table_names_sorted():
    db = Database()
    db.execute("CREATE TABLE zeta (a)")
    db.execute("CREATE TABLE alpha (a)")
    assert db.table_names() == ["alpha", "zeta"]
    db.close()


def test_explain_returns_plan_text():
    db = Database()
    db.execute("CREATE TABLE t (a PRIMARY KEY, b)")
    plan = db.explain("SELECT b FROM t WHERE a = ?", (1,))
    assert "t" in plan
    db.close()


def test_context_manager_closes():
    with Database() as db:
        db.execute("SELECT 1")
    with pytest.raises(StorageError):
        db.execute("SELECT 1")
