"""Unit tests for the physical schema DDL and typed table accessors."""

import pytest

from repro.storage.schema import (
    COMPARISON_TABLES,
    TRIGGER_TABLES,
    create_all,
    filter_rules_table,
)
from repro.storage.tables import (
    DocumentTable,
    FilterDataTable,
    FilterInputTable,
    MaterializedTable,
    ResourceTable,
    ResultObjectsTable,
)


class TestDDL:
    def test_all_tables_created(self, db):
        names = set(db.table_names())
        expected = {
            "documents",
            "resources",
            "filter_data",
            "filter_input",
            "atomic_rules",
            "rule_dependencies",
            "rule_groups",
            "result_objects",
            "materialized",
            "subscriptions",
            "subscription_rules",
            "named_rules",
            *COMPARISON_TABLES.values(),
            "filter_rules_class",
        }
        assert expected <= names

    def test_create_all_idempotent(self, db):
        create_all(db)
        create_all(db)

    def test_filter_rules_table_mapping(self):
        assert filter_rules_table(">") == "filter_rules_gt"
        assert filter_rules_table("contains") == "filter_rules_con"
        with pytest.raises(ValueError):
            filter_rules_table("between")

    def test_trigger_tables_inventory(self):
        assert "filter_rules_class" in TRIGGER_TABLES
        assert len(TRIGGER_TABLES) == 8  # class + 7 comparison operators

    def test_core_indexes_exist(self, db):
        rows = db.query_all(
            "SELECT name FROM sqlite_master WHERE type = 'index'"
        )
        names = {row["name"] for row in rows}
        assert "idx_fd_class_prop_value" in names
        assert "idx_ar_group" in names
        assert "idx_rd_source" in names


class TestDocumentTable:
    def test_upsert_and_get(self, db):
        table = DocumentTable(db)
        table.upsert("d.rdf", "<xml1/>")
        table.upsert("d.rdf", "<xml2/>")
        assert table.get_xml("d.rdf") == "<xml2/>"
        assert table.count() == 1
        assert table.exists("d.rdf")

    def test_delete_and_uris(self, db):
        table = DocumentTable(db)
        table.upsert("b.rdf", "<b/>")
        table.upsert("a.rdf", "<a/>")
        assert table.uris() == ["a.rdf", "b.rdf"]
        table.delete("a.rdf")
        assert table.uris() == ["b.rdf"]
        assert not table.exists("a.rdf")


class TestResourceTable:
    def test_insert_and_lookups(self, db):
        DocumentTable(db).upsert("d.rdf", "<x/>")
        table = ResourceTable(db)
        table.insert_many(
            [("d.rdf#a", "C", "d.rdf"), ("d.rdf#b", "D", "d.rdf")]
        )
        assert table.class_of("d.rdf#a") == "C"
        assert table.document_of("d.rdf#b") == "d.rdf"
        assert [str(u) for u in table.by_document("d.rdf")] == [
            "d.rdf#a",
            "d.rdf#b",
        ]
        assert table.count() == 2

    def test_upsert_semantics(self, db):
        DocumentTable(db).upsert("d.rdf", "<x/>")
        table = ResourceTable(db)
        table.insert_many([("d.rdf#a", "C", "d.rdf")])
        table.insert_many([("d.rdf#a", "C2", "d.rdf")])
        assert table.class_of("d.rdf#a") == "C2"
        assert table.count() == 1

    def test_delete_many(self, db):
        DocumentTable(db).upsert("d.rdf", "<x/>")
        table = ResourceTable(db)
        table.insert_many([("d.rdf#a", "C", "d.rdf")])
        table.delete_many(["d.rdf#a", "d.rdf#missing"])
        assert table.count() == 0


class TestFilterDataTable:
    def test_insert_and_atoms_of(self, db):
        table = FilterDataTable(db)
        table.insert_atoms(
            [
                ("d#a", "C", "p", "1"),
                ("d#a", "C", "q", "2"),
                ("d#b", "C", "p", "3"),
            ]
        )
        assert table.count() == 3
        assert table.atoms_of("d#a") == [
            ("d#a", "C", "p", "1"),
            ("d#a", "C", "q", "2"),
        ]

    def test_delete_for(self, db):
        table = FilterDataTable(db)
        table.insert_atoms([("d#a", "C", "p", "1"), ("d#b", "C", "p", "2")])
        table.delete_for(["d#a"])
        assert table.count() == 1


class TestTransientTables:
    def test_filter_input_clear_and_load(self, db):
        table = FilterInputTable(db)
        table.load([("d#a", "C", "p", "1")])
        assert table.count() == 1
        table.clear()
        assert table.count() == 0

    def test_result_objects(self, db):
        table = ResultObjectsTable(db)
        table.insert("d#a", 1, 0)
        table.insert("d#a", 1, 0)  # duplicate ignored
        table.insert("d#a", 2, 1)
        assert table.rows_at(0) == [("d#a", 1)]
        assert table.count_at(1) == 1
        assert table.all_pairs() == {("d#a", 1), ("d#a", 2)}
        table.clear()
        assert table.all_pairs() == set()


class TestMaterializedTable:
    def test_insert_and_query(self, db):
        table = MaterializedTable(db)
        table.insert_pairs([(1, "d#a"), (1, "d#a"), (1, "d#b")])
        assert [str(u) for u in table.uris_for(1)] == ["d#a", "d#b"]
        assert table.contains(1, "d#a")
        assert not table.contains(2, "d#a")
        assert table.count() == 2

    def test_delete_pairs_and_rules(self, db):
        table = MaterializedTable(db)
        table.insert_pairs([(1, "d#a"), (1, "d#b"), (2, "d#a")])
        table.delete_pairs([(1, "d#a")])
        assert table.count() == 2
        table.delete_rules([1])
        assert table.count() == 1
