"""Differential fuzzing: the registry ``dedupe`` knob against ``off``.

``dedupe="merge"`` shares one stored triggering entry between
semantically equivalent subscriptions; the contract is that the
*delivered* notification streams are byte-identical to the undeduped
path once rule ids are expanded to their riders.  The digest therefore
keys every outcome by ``(subscriber, rule_text)`` — looked up via
:meth:`RuleRegistry.subscriptions_for` **at publish time**, exactly as
the notification fan-out would — and excludes rule ids and filter-pass
internals (a merged base runs fewer passes by design).

Scenarios cover equivalent respellings of comparison, contains and
path rules, a late equivalent subscription mid-stream (it must inherit
the shared entry's materialized matches), updates, an unsubscribe of
one rider (the other must keep matching) and a deletion — under
serial/parallel × scan/trigram engines, seeds 1/7/42.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.filter.engine import FilterEngine
from repro.rdf.diff import deletion_diff, diff_documents
from repro.rdf.model import Document, URIRef
from repro.rdf.schema import objectglobe_schema
from repro.rules.decompose import decompose_rule
from repro.rules.normalize import normalize_rule
from repro.rules.parser import parse_rule
from repro.rules.registry import RuleRegistry
from repro.storage.engine import Database
from repro.storage.schema import create_all

SEEDS = [1, 7, 42]

_PREFIX = "search CycleProvider c register c where "

#: (base spelling, equivalent respelling) — different stored atoms,
#: identical match sets.
_EQUIVALENT_PAIRS = [
    (
        "c.synthValue > {n}",
        "c.synthValue > {n}.0 and c.synthValue > -1",
    ),
    (
        "c.serverHost contains 'passau'",
        "c.serverHost contains 'passau' and c.serverHost contains 'pas'",
    ),
    (
        "c.serverInformation.memory > {mem}",
        "c.serverInformation.memory > {mem}.0 "
        "and c.serverInformation.memory > 0",
    ),
]

_HOST_POOL = [
    "a.uni-passau.de",
    "b.tum.de",
    "c.uni-muenchen.de",
    "pastiche.org",
    "unrelated.example",
]


def _rule_pool(rng: random.Random) -> list[tuple[str, str]]:
    """(subscriber, rule_text) pairs — every base with its respelling."""
    pool: list[tuple[str, str]] = []
    for index, (base, equivalent) in enumerate(_EQUIVALENT_PAIRS):
        values = {"n": rng.choice([10, 50, 90]), "mem": rng.choice([32, 64])}
        pool.append((f"base{index}", _PREFIX + base.format(**values)))
        pool.append(
            (f"equiv{index}", _PREFIX + equivalent.format(**values))
        )
    # A couple of singletons keep the registry from being all-merged.
    pool.append(
        ("solo0", _PREFIX + f"c.serverPort > {rng.choice([1000, 5000])}")
    )
    pool.append(("solo1", _PREFIX + "c.serverHost contains 'tum'"))
    return pool


def _random_document(rng: random.Random, index: int) -> Document:
    doc = Document(f"doc{index}.rdf")
    provider = doc.new_resource("host", "CycleProvider")
    provider.add("serverHost", rng.choice(_HOST_POOL))
    provider.add("serverPort", rng.choice([80, 2000, 8080]))
    provider.add("synthValue", rng.choice([5, 25, 75, 95]))
    provider.add("serverInformation", URIRef(f"doc{index}.rdf#info"))
    info = doc.new_resource("info", "ServerInformation")
    info.add("memory", rng.choice([16, 48, 92, 256]))
    info.add("cpu", rng.choice([300, 550]))
    return doc


def _expand(registry: RuleRegistry, mapping) -> list:
    """Rule-id keyed match sets -> (subscriber, rule_text) keyed.

    The lookup happens at publish time, mirroring notification fan-out:
    a shared triggering entry expands to every rider registered *now*.
    """
    expanded = []
    for rule_id, uris in mapping.items():
        for sub in registry.subscriptions_for({rule_id}):
            expanded.append(
                [
                    sub.subscriber,
                    sub.rule_text,
                    sorted(str(u) for u in uris),
                ]
            )
    return sorted(expanded)


def _outcome_key(registry: RuleRegistry, outcome) -> dict:
    return {
        "matched": _expand(registry, outcome.matched),
        "unmatched": _expand(registry, outcome.unmatched),
        "deleted": sorted(str(u) for u in outcome.deleted),
    }


def run_scenario(
    seed: int, dedupe: str, contains_index: str, parallelism: int
) -> bytes:
    """One seeded workload; canonical digest of every delivered stream."""
    rng = random.Random(seed)
    schema = objectglobe_schema()
    db = Database()
    create_all(db)
    registry = RuleRegistry(db, dedupe=dedupe)
    engine = FilterEngine(
        db, registry, contains_index=contains_index, parallelism=parallelism
    )

    def subscribe(subscriber: str, text: str) -> int:
        normalized = normalize_rule(parse_rule(text), schema)
        assert len(normalized) == 1
        registration = registry.register_subscription(
            subscriber, text, decompose_rule(normalized[0], schema)
        )
        engine.initialize_rules(registration.created)
        return registration.end_rule

    try:
        pool = _rule_pool(rng)
        # Hold one respelling back: it subscribes mid-stream, after its
        # base has already materialized matches.
        late_subscriber, late_text = pool.pop(1)
        ends = {(s, t): subscribe(s, t) for s, t in pool}

        documents = [_random_document(rng, i) for i in range(10)]
        digests = []
        for doc in documents[:6]:
            digests.append(
                _outcome_key(
                    registry, engine.process_diff(diff_documents(None, doc))
                )
            )

        ends[(late_subscriber, late_text)] = subscribe(
            late_subscriber, late_text
        )
        for doc in documents[6:]:
            digests.append(
                _outcome_key(
                    registry, engine.process_diff(diff_documents(None, doc))
                )
            )

        # Updates flip values across every rule family's thresholds.
        for index in rng.sample(range(10), 3):
            old = documents[index]
            new = old.copy()
            host = new.get(f"doc{index}.rdf#host")
            host.set("serverHost", rng.choice(_HOST_POOL))
            host.set("synthValue", rng.choice([5, 95]))
            digests.append(
                _outcome_key(
                    registry, engine.process_diff(diff_documents(old, new))
                )
            )
            documents[index] = new

        # Drop one rider of a merged pair; its twin keeps matching.
        registry.unsubscribe(*pool[0])
        del ends[pool[0]]
        extra = _random_document(rng, 10)
        digests.append(
            _outcome_key(
                registry, engine.process_diff(diff_documents(None, extra))
            )
        )
        digests.append(
            _outcome_key(
                registry, engine.process_diff(deletion_diff(documents[2]))
            )
        )

        if dedupe == "merge":
            # Guard against a vacuous pass: the respellings really did
            # share triggering entries.
            assert len(set(ends.values())) < len(ends)

        final = {
            f"{subscriber}|{text}": sorted(
                str(u) for u in engine.current_matches(end)
            )
            for (subscriber, text), end in ends.items()
        }
        return json.dumps(
            {"digests": digests, "final": final}, sort_keys=True
        ).encode()
    finally:
        engine.close()
        db.close()


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "dedupe,contains_index,parallelism",
    [
        ("report", "scan", 1),
        ("merge", "scan", 1),
        ("merge", "trigram", 1),
        ("merge", "scan", 4),
        ("merge", "trigram", 4),
    ],
)
def test_dedupe_matches_off_oracle(seed, dedupe, contains_index, parallelism):
    baseline = run_scenario(
        seed, dedupe="off", contains_index="scan", parallelism=1
    )
    variant = run_scenario(seed, dedupe, contains_index, parallelism)
    assert variant == baseline
