"""Unit tests of the counting matcher's index maintenance.

The differential suite (:mod:`tests.filter.test_counting_differential`)
pins end-to-end parity; these tests target the index's own edge cases —
incremental re-sync off the mutation log, unregistration mid-stream,
shape-changing updates (a predicate moving between index families),
deduplicated rules sharing one entry, class-only degenerate rules and
the log-gap rebuild fallback.
"""

from __future__ import annotations

import pytest

from repro.filter.counting import CountingMatcher
from repro.obs.metrics import default_registry
from repro.rdf.namespaces import RDF_SUBJECT
from repro.rules.decompose import decompose_rule
from repro.rules.normalize import normalize_rule
from repro.rules.parser import parse_rule
from repro.rules.registry import RuleRegistry


def _subscribe(registry: RuleRegistry, schema, text: str, subscriber="lmr"):
    """Register one single-conjunct rule; returns its end rule id."""
    (normalized,) = normalize_rule(parse_rule(text), schema)
    registration = registry.register_subscription(
        subscriber, text, decompose_rule(normalized, schema)
    )
    return registration.end_rule


def _refresh(matcher: CountingMatcher, db, registry: RuleRegistry) -> bool:
    return matcher.refresh(
        db, registry.mutation_version, registry.mutation_log
    )


HOST_ATOM = ("d.rdf#h", "CycleProvider", "serverHost", "x.uni-passau.de")
SUBJECT_ATOM = ("d.rdf#h", "CycleProvider", RDF_SUBJECT, "d.rdf#h")


class TestIncrementalMaintenance:
    def test_fresh_matcher_rebuilds(self, db, registry, schema):
        _subscribe(registry, schema, "search CycleProvider c register c")
        matcher = CountingMatcher()
        assert _refresh(matcher, db, registry)
        assert default_registry().counter_values()["counting.rebuilds"] == 1
        assert matcher.rule_count == 1
        # Same version again: no work.
        assert not _refresh(matcher, db, registry)

    def test_incremental_equals_rebuild(self, db, registry, schema):
        rules = [
            "search CycleProvider c register c",
            "search CycleProvider c register c where c.synthValue > 3",
            "search CycleProvider c register c "
            "where c.serverHost contains 'passau'",
            "search CycleProvider c register c "
            "where c.serverHost = 'x.uni-passau.de'",
        ]
        incremental = CountingMatcher()
        _subscribe(registry, schema, rules[0])
        _refresh(incremental, db, registry)
        for text in rules[1:]:
            _subscribe(registry, schema, text)
            _refresh(incremental, db, registry)
        rebuilt = CountingMatcher()
        _refresh(rebuilt, db, registry)
        atoms = [
            SUBJECT_ATOM,
            HOST_ATOM,
            ("d.rdf#h", "CycleProvider", "synthValue", "5"),
        ]
        assert sorted(incremental.match(atoms)) == sorted(rebuilt.match(atoms))
        counters = default_registry().counter_values()
        # The three later rules arrived through the log, not rebuilds.
        assert counters["counting.incremental"] == 3.0

    def test_log_gap_falls_back_to_rebuild(self, db, registry, schema):
        matcher = CountingMatcher()
        _subscribe(registry, schema, "search CycleProvider c register c")
        _refresh(matcher, db, registry)
        rule = _subscribe(
            registry, schema,
            "search CycleProvider c register c where c.synthValue > 3",
        )
        # Pretend the log rotated past the gap: refresh sees the new
        # version but no covering entries and must rebuild.
        registry.mutation_log.clear()
        assert _refresh(matcher, db, registry)
        counters = default_registry().counter_values()
        assert counters["counting.rebuilds"] == 2.0
        hits = matcher.match(
            [("d.rdf#h", "CycleProvider", "synthValue", "5")]
        )
        assert ("d.rdf#h", rule) in hits

    def test_unregister_mid_stream(self, db, registry, schema):
        text = (
            "search CycleProvider c register c "
            "where c.serverHost contains 'passau'"
        )
        matcher = CountingMatcher()
        rule = _subscribe(registry, schema, text)
        keeper = _subscribe(
            registry, schema, "search CycleProvider c register c"
        )
        _refresh(matcher, db, registry)
        assert ("d.rdf#h", rule) in matcher.match([HOST_ATOM])

        registry.unsubscribe("lmr", text)
        # Incrementally applied (no rebuild): the dropped rule's postings
        # are gone, the survivor still fires.
        assert _refresh(matcher, db, registry)
        counters = default_registry().counter_values()
        assert counters["counting.rebuilds"] == 1.0
        hits = matcher.match([HOST_ATOM, SUBJECT_ATOM])
        assert ("d.rdf#h", rule) not in hits
        assert ("d.rdf#h", keeper) in hits
        assert matcher.rule_count == 1

    def test_shape_changing_update(self, db, registry, schema):
        # The subscriber's rule moves from the eq family to a range —
        # modelled as unsubscribe + re-subscribe, both picked up from
        # the log in one refresh.
        old = "search CycleProvider c register c where c.synthValue = 5"
        new = "search CycleProvider c register c where c.synthValue >= 5"
        matcher = CountingMatcher()
        old_rule = _subscribe(registry, schema, old)
        _refresh(matcher, db, registry)
        atom_eq = ("d.rdf#h", "CycleProvider", "synthValue", "5")
        atom_above = ("d.rdf#h", "CycleProvider", "synthValue", "7")
        assert matcher.match([atom_above]) == []

        registry.unsubscribe("lmr", old)
        new_rule = _subscribe(registry, schema, new)
        assert _refresh(matcher, db, registry)
        hits = matcher.match([atom_eq, atom_above])
        assert ("d.rdf#h", old_rule) not in hits
        assert ("d.rdf#h", new_rule) in hits
        assert matcher.rule_count == 1

    def test_duplicate_predicates_share_entry(self, db, registry, schema):
        text = (
            "search CycleProvider c register c "
            "where c.serverHost contains 'passau'"
        )
        matcher = CountingMatcher()
        first = _subscribe(registry, schema, text, subscriber="a")
        second = _subscribe(registry, schema, text, subscriber="b")
        assert first == second  # dedupe shares the stored rule
        _refresh(matcher, db, registry)
        assert matcher.rule_count == 1
        assert matcher.match([HOST_ATOM]) == [("d.rdf#h", first)]

        # Dropping one subscriber keeps the shared entry alive...
        registry.unsubscribe("a", text)
        _refresh(matcher, db, registry)
        assert matcher.match([HOST_ATOM]) == [("d.rdf#h", first)]
        # ...dropping the last one removes it.
        registry.unsubscribe("b", text)
        _refresh(matcher, db, registry)
        assert matcher.match([HOST_ATOM]) == []
        assert matcher.rule_count == 0

    def test_class_only_rule(self, db, registry, schema):
        rule = _subscribe(
            registry, schema, "search CycleProvider c register c"
        )
        matcher = CountingMatcher()
        _refresh(matcher, db, registry)
        # Fires on the identity atom, not on property atoms.
        assert matcher.match([SUBJECT_ATOM]) == [("d.rdf#h", rule)]
        assert matcher.match([HOST_ATOM]) == []
        # Other classes' subjects miss.
        assert (
            matcher.match(
                [("d.rdf#i", "ServerInformation", RDF_SUBJECT, "d.rdf#i")]
            )
            == []
        )


class TestMatching:
    def test_duplicate_atoms_dedupe(self, db, registry, schema):
        rule = _subscribe(
            registry, schema,
            "search CycleProvider c register c "
            "where c.serverHost contains 'passau'",
        )
        matcher = CountingMatcher()
        _refresh(matcher, db, registry)
        hits = matcher.match([HOST_ATOM, HOST_ATOM])
        assert hits == [("d.rdf#h", rule)]

    def test_parallel_dispatch_matches_serial(self, db, registry, schema):
        for text in (
            "search CycleProvider c register c",
            "search CycleProvider c register c where c.synthValue > 3",
            "search CycleProvider c register c "
            "where c.serverHost contains 'passau'",
        ):
            _subscribe(registry, schema, text)
        atoms = [
            SUBJECT_ATOM,
            HOST_ATOM,
            ("d.rdf#h", "CycleProvider", "synthValue", "5"),
            ("e.rdf#h", "CycleProvider", "synthValue", "2"),
            ("e.rdf#h", "CycleProvider", RDF_SUBJECT, "e.rdf#h"),
        ]
        serial = CountingMatcher()
        _refresh(serial, db, registry)
        with CountingMatcher(parallelism=4) as parallel:
            _refresh(parallel, db, registry)
            assert sorted(parallel.match(atoms)) == sorted(
                serial.match(atoms)
            )

    def test_empty_batch(self, db, registry, schema):
        matcher = CountingMatcher()
        _refresh(matcher, db, registry)
        assert matcher.match([]) == []

    def test_unknown_version_raises_nothing(self, db, registry, schema):
        # A matcher over an empty registry matches nothing anywhere.
        matcher = CountingMatcher()
        _refresh(matcher, db, registry)
        assert matcher.rule_count == 0
        assert matcher.match([HOST_ATOM, SUBJECT_ATOM]) == []


@pytest.mark.parametrize(
    "text,value,expected",
    [
        ("abc", "abc", 0.0),
        ("1.5x", "1.5x", 1.5),
        (" 42 ", " 42 ", 42.0),
        ("1e", "1e", 1.0),
        ("0x10", "0x10", 0.0),
        ("-.5", "-.5", -0.5),
    ],
)
def test_cast_real_spot_checks(db, text, value, expected):
    from repro.filter.counting import sqlite_cast_real

    assert sqlite_cast_real(text) == expected
    assert db.scalar("SELECT CAST(? AS REAL)", (value,)) == expected
