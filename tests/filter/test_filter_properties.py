"""Property-based tests: the filter versus an independent oracle.

The filter's final materialized matches must equal evaluating each
subscription rule as a *query* over the current global resource set.
The in-memory query evaluator shares nothing with the filter beyond the
normalizer (candidates + semi-joins + backtracking versus SQL over atom
tables), so agreement over random documents, rules and update sequences
is strong evidence of correctness — including the three-pass
update/delete algorithm.
"""

from tests.conftest import prop_settings
from hypothesis import given, settings, strategies as st

from repro.filter.engine import FilterEngine
from repro.query.evaluator import evaluate_query
from repro.rdf.diff import deletion_diff, diff_documents
from repro.rdf.model import Document, URIRef
from repro.rdf.schema import objectglobe_schema
from repro.rules.ast import Query
from repro.rules.decompose import decompose_rule
from repro.rules.normalize import normalize_rule
from repro.rules.parser import parse_rule
from repro.rules.registry import RuleRegistry
from repro.storage.engine import Database
from repro.storage.schema import create_all

SCHEMA = objectglobe_schema()

hosts = st.sampled_from(
    ["a.uni-passau.de", "b.tum.de", "c.uni-passau.de", "d.fu.de"]
)
small_ints = st.integers(min_value=0, max_value=5)


@st.composite
def documents(draw, count=st.integers(min_value=1, max_value=5)):
    """A list of Figure-1-shaped documents with cross/dangling references."""
    doc_count = draw(count)
    result = []
    for index in range(doc_count):
        doc = Document(f"doc{index}.rdf")
        provider = doc.new_resource("host", "CycleProvider")
        provider.add("serverHost", draw(hosts))
        provider.add("synthValue", draw(small_ints))
        # Reference this or an earlier/later info (possibly dangling).
        target = draw(st.integers(min_value=0, max_value=doc_count))
        provider.add("serverInformation", URIRef(f"doc{target}.rdf#info"))
        info = doc.new_resource("info", "ServerInformation")
        info.add("memory", draw(small_ints))
        info.add("cpu", draw(small_ints))
        result.append(doc)
    return result


comparison_ops = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])
ordering_ops = st.sampled_from(["<", "<=", ">", ">="])


@st.composite
def rules(draw):
    """A random subscription rule over the ObjectGlobe schema."""
    kind = draw(st.sampled_from(["class", "comp", "contains", "path", "join", "or"]))
    if kind == "class":
        cls = draw(st.sampled_from(["CycleProvider", "ServerInformation"]))
        return f"search {cls} x register x"
    if kind == "comp":
        op = draw(comparison_ops)
        value = draw(small_ints)
        return (
            f"search CycleProvider c register c where c.synthValue {op} {value}"
        )
    if kind == "contains":
        needle = draw(st.sampled_from(["passau", "tum", "de", "x"]))
        return (
            f"search CycleProvider c register c "
            f"where c.serverHost contains '{needle}'"
        )
    if kind == "path":
        prop = draw(st.sampled_from(["memory", "cpu"]))
        op = draw(comparison_ops)
        value = draw(small_ints)
        return (
            f"search CycleProvider c register c "
            f"where c.serverInformation.{prop} {op} {value}"
        )
    if kind == "join":
        op = draw(ordering_ops)
        value_a = draw(small_ints)
        value_b = draw(small_ints)
        return (
            f"search CycleProvider c register c "
            f"where c.serverInformation.memory {op} {value_a} "
            f"and c.serverInformation.cpu {op} {value_b} "
            f"and c.synthValue >= 0"
        )
    needle = draw(st.sampled_from(["passau", "tum"]))
    value = draw(small_ints)
    return (
        f"search CycleProvider c register c "
        f"where c.serverHost contains '{needle}' or c.synthValue > {value}"
    )


def build_system(rule_texts):
    db = Database()
    create_all(db)
    registry = RuleRegistry(db)
    engine = FilterEngine(db, registry)
    ends = []
    for index, text in enumerate(rule_texts):
        conjuncts = normalize_rule(parse_rule(text), SCHEMA)
        for c_index, normalized in enumerate(conjuncts):
            registration = registry.register_subscription(
                f"lmr{index}",
                f"{text}#or{c_index}" if len(conjuncts) > 1 else text,
                decompose_rule(normalized, SCHEMA),
            )
            engine.initialize_rules(registration.created)
            ends.append((text, registration.end_rule))
    return db, engine, ends


def oracle_matches(rule_text, resource_pool):
    rule = parse_rule(rule_text)
    query = Query(rule.extensions, rule.register, rule.where)
    return {
        resource.uri
        for resource in evaluate_query(query, resource_pool, SCHEMA)
    }


def filter_matches(engine, ends):
    merged = {}
    for text, end_rule in ends:
        merged.setdefault(text, set()).update(engine.current_matches(end_rule))
    return merged


@prop_settings(40)
@given(docs=documents(), rule_texts=st.lists(rules(), min_size=1, max_size=4))
def test_insert_matches_oracle(docs, rule_texts):
    db, engine, ends = build_system(rule_texts)
    try:
        for doc in docs:
            engine.process_diff(diff_documents(None, doc))
        pool = {r.uri: r for doc in docs for r in doc}
        actual = filter_matches(engine, ends)
        for text in set(rule_texts):
            assert actual[text] == oracle_matches(text, pool), text
    finally:
        db.close()


@prop_settings(40)
@given(
    docs=documents(),
    rule_texts=st.lists(rules(), min_size=1, max_size=3),
    data=st.data(),
)
def test_update_sequences_match_oracle(docs, rule_texts, data):
    """Random update/delete sequences preserve oracle agreement."""
    db, engine, ends = build_system(rule_texts)
    try:
        current = {}
        for doc in docs:
            engine.process_diff(diff_documents(None, doc))
            current[doc.uri] = doc
        steps = data.draw(st.integers(min_value=1, max_value=4))
        for __ in range(steps):
            uri = data.draw(st.sampled_from(sorted(current)), label="victim")
            action = data.draw(
                st.sampled_from(["tweak_info", "tweak_host", "delete"]),
                label="action",
            )
            doc = current[uri]
            if action == "delete":
                engine.process_diff(deletion_diff(doc))
                del current[uri]
                if not current:
                    break
                continue
            updated = doc.copy()
            if action == "tweak_info":
                info = updated.get(f"{uri}#info")
                info.set("memory", data.draw(small_ints, label="memory"))
                info.set("cpu", data.draw(small_ints, label="cpu"))
            else:
                host = updated.get(f"{uri}#host")
                host.set("serverHost", data.draw(hosts, label="host"))
                host.set("synthValue", data.draw(small_ints, label="synth"))
            engine.process_diff(diff_documents(doc, updated))
            current[uri] = updated
        pool = {r.uri: r for doc in current.values() for r in doc}
        actual = filter_matches(engine, ends)
        for text in set(rule_texts):
            assert actual[text] == oracle_matches(text, pool), text
    finally:
        db.close()
