"""Differential fuzzing: the trigram contains path against the scan.

The paper's O(rules) contains scan (``contains_index="scan"``,
``parallelism=1``) is the correctness oracle; every other configuration
— the trigram probe, the sharded evaluator, and their combination —
must produce a *byte-identical* digest of every publish outcome and of
the final materialized match sets.

The workload is contains-heavy on purpose: indexable needles, short
needles (the fallback scan join), needles sharing trigrams with each
other, and hosts crafted so that trigram candidates are sometimes false
positives.  Scenarios cover registrations, a mid-stream subscription
(postings replicated into shards off the mutation version), updates,
deletions and an unsubscribe (postings dropped).
"""

from __future__ import annotations

import json
import random

import pytest

from repro.filter.engine import FilterEngine
from repro.rdf.diff import deletion_diff, diff_documents
from repro.rdf.model import Document, URIRef
from repro.rdf.schema import objectglobe_schema
from repro.rules.decompose import decompose_rule
from repro.rules.normalize import normalize_rule
from repro.rules.parser import parse_rule
from repro.rules.registry import RuleRegistry
from repro.storage.engine import Database
from repro.storage.schema import create_all

SEEDS = [1, 7, 42]

# "abc-xbc-cde" contains every trigram of "abcde" scattered — a trigram
# candidate that must fail verification.  "pas" vs "passau" exercises
# prefix-sharing needles; "de"/"pa" ride the short-needle fallback.
_HOST_POOL = [
    "a.uni-passau.de",
    "b.tum.de",
    "c.uni-muenchen.de",
    "abc-xbc-cde.org",
    "abcde.org",
    "pa",
]

_FRAGMENTS = ["passau", "pas", "uni", "de", "pa", "abcde", "tum.de", ".org"]

_RULE_TEMPLATES = [
    "search CycleProvider c register c where c.serverHost contains '{frag}'",
    "search CycleProvider c register c "
    "where c.serverHost contains '{frag}' "
    "and c.serverHost contains '{frag2}'",
    "search CycleProvider c register c "
    "where c.serverHost contains '{frag}' "
    "and c.serverInformation.memory > {mem}",
    "search CycleProvider c register c "
    "where c.serverHost contains '{frag}' "
    "or c.serverHost contains '{frag2}'",
    "search CycleProvider c register c where c.serverInformation.cpu <= {cpu}",
]


def _random_rules(rng: random.Random, count: int) -> list[str]:
    rules = []
    for __ in range(count):
        template = rng.choice(_RULE_TEMPLATES)
        rules.append(
            template.format(
                frag=rng.choice(_FRAGMENTS),
                frag2=rng.choice(_FRAGMENTS),
                mem=rng.choice([32, 64, 128]),
                cpu=rng.choice([400, 500, 600]),
            )
        )
    # Dedup while preserving order; registering the same (subscriber,
    # rule) pair twice is an error.
    return list(dict.fromkeys(rules))


def _random_document(rng: random.Random, index: int) -> Document:
    doc = Document(f"doc{index}.rdf")
    provider = doc.new_resource("host", "CycleProvider")
    provider.add("serverHost", rng.choice(_HOST_POOL))
    provider.add("serverInformation", URIRef(f"doc{index}.rdf#info"))
    info = doc.new_resource("info", "ServerInformation")
    info.add("memory", rng.choice([16, 64, 92, 128, 256]))
    info.add("cpu", rng.choice([300, 450, 550, 700]))
    return doc


def _outcome_key(outcome) -> dict:
    """A canonical, JSON-serializable digest of one PublishOutcome."""
    return {
        "matched": sorted(
            (rule_id, sorted(str(u) for u in uris))
            for rule_id, uris in outcome.matched.items()
        ),
        "unmatched": sorted(
            (rule_id, sorted(str(u) for u in uris))
            for rule_id, uris in outcome.unmatched.items()
        ),
        "deleted": sorted(str(u) for u in outcome.deleted),
        "passes": [
            {"hits": p.triggering_hits, "iterations": p.iterations}
            for p in outcome.passes
        ],
    }


def run_scenario(seed: int, contains_index: str, parallelism: int) -> bytes:
    """One seeded publish/subscribe workload; returns a canonical digest."""
    rng = random.Random(seed)
    schema = objectglobe_schema()
    db = Database()
    create_all(db)
    registry = RuleRegistry(db)
    engine = FilterEngine(
        db, registry, contains_index=contains_index, parallelism=parallelism
    )

    conjunct_texts: dict[str, list[str]] = {}

    def subscribe(index: int, text: str) -> list[int]:
        # Or-rules normalize to several conjuncts; each is registered as
        # its own subscription (distinct rule_text per conjunct).
        ends = []
        conjunct_texts[text] = []
        for j, normalized in enumerate(normalize_rule(parse_rule(text), schema)):
            sub_text = text if j == 0 else f"{text} [conjunct {j}]"
            registration = registry.register_subscription(
                f"lmr{index}", sub_text, decompose_rule(normalized, schema)
            )
            engine.initialize_rules(registration.created)
            ends.append(registration.end_rule)
            conjunct_texts[text].append(sub_text)
        return ends

    try:
        rules = _random_rules(rng, 7)
        late_rule = rules.pop()
        ends = {text: subscribe(i, text) for i, text in enumerate(rules)}

        documents = [_random_document(rng, i) for i in range(12)]
        digests = []
        for doc in documents[:8]:
            digests.append(
                _outcome_key(engine.process_diff(diff_documents(None, doc)))
            )

        # Mid-stream subscription: new postings must reach the shard
        # replicas before the next publish.
        ends[late_rule] = subscribe(99, late_rule)
        for doc in documents[8:]:
            digests.append(
                _outcome_key(engine.process_diff(diff_documents(None, doc)))
            )

        # Updates: move hosts across the needle pool (match sets flip
        # between indexed, fallback and no-match rules).
        for index in rng.sample(range(12), 4):
            old = documents[index]
            new = old.copy()
            host = new.get(f"doc{index}.rdf#host")
            host.set("serverHost", rng.choice(_HOST_POOL))
            digests.append(
                _outcome_key(engine.process_diff(diff_documents(old, new)))
            )
            documents[index] = new

        # Unsubscribe (drops the rule's postings), then one more publish
        # and a deletion.
        for sub_text in conjunct_texts[rules[0]]:
            registry.unsubscribe("lmr0", sub_text)
        del ends[rules[0]]
        extra = _random_document(rng, 12)
        digests.append(
            _outcome_key(engine.process_diff(diff_documents(None, extra)))
        )
        digests.append(
            _outcome_key(engine.process_diff(deletion_diff(documents[3])))
        )

        final = {
            text: sorted(
                str(u)
                for end in end_rules
                for u in engine.current_matches(end)
            )
            for text, end_rules in ends.items()
        }
        return json.dumps(
            {"digests": digests, "final": final}, sort_keys=True
        ).encode()
    finally:
        engine.close()
        db.close()


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "contains_index,parallelism",
    [
        ("scan", 4),
        ("trigram", 1),
        ("trigram", 4),
    ],
)
def test_trigram_matches_scan_oracle(seed, contains_index, parallelism):
    baseline = run_scenario(seed, contains_index="scan", parallelism=1)
    variant = run_scenario(seed, contains_index, parallelism)
    assert variant == baseline
