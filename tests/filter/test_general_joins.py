"""Engine tests for general (non-reference) join predicates.

The paper's examples only join through reference properties
(``c.serverInformation = s``); the language, however, allows any
``X o Y`` with two path expressions — e.g. joining two independent
resources on a numeric comparison of their properties.  These tests
drive the both-properties join chain, including non-equality operators,
against the in-memory oracle.
"""

import pytest

from repro.query.evaluator import evaluate_query
from repro.rdf.diff import diff_documents
from repro.rdf.model import Document, URIRef
from repro.rules.ast import Query
from repro.rules.parser import parse_rule

from tests.conftest import register_rule


def server(index, memory, cpu):
    doc = Document(f"s{index}.rdf")
    info = doc.new_resource("info", "ServerInformation")
    info.add("memory", memory)
    info.add("cpu", cpu)
    return doc


CROSS_JOIN_RULE = (
    "search ServerInformation a, ServerInformation b register a "
    "where a.memory > b.cpu and b.cpu > 0"
)


def oracle(schema, rule_text, documents):
    rule = parse_rule(rule_text)
    query = Query(rule.extensions, rule.register, rule.where)
    pool = {r.uri: r for doc in documents for r in doc}
    return {r.uri for r in evaluate_query(query, pool, schema)}


class TestNumericCrossJoin:
    def test_insert_matches_oracle(self, db, registry, engine, schema):
        end = register_rule(engine, registry, schema, CROSS_JOIN_RULE)
        documents = [
            server(0, memory=100, cpu=50),
            server(1, memory=10, cpu=40),
            server(2, memory=45, cpu=200),
        ]
        for doc in documents:
            engine.process_diff(diff_documents(None, doc))
        expected = oracle(schema, CROSS_JOIN_RULE, documents)
        assert set(engine.current_matches(end)) == expected
        # Sanity: s0 (memory 100 > some cpu) and s2 (45 > 40) match.
        assert URIRef("s0.rdf#info") in expected
        assert URIRef("s2.rdf#info") in expected
        assert URIRef("s1.rdf#info") not in expected

    def test_delta_on_either_side(self, db, registry, engine, schema):
        """A later document can satisfy the join for an earlier one."""
        end = register_rule(engine, registry, schema, CROSS_JOIN_RULE)
        engine.process_diff(
            diff_documents(None, server(0, memory=100, cpu=500))
        )
        # Alone, s0 cannot match (needs some b with cpu < 100... itself!)
        # — actually a may join with itself: 100 > 500 is false, so no.
        assert engine.current_matches(end) == []
        engine.process_diff(diff_documents(None, server(1, memory=1, cpu=30)))
        # Now a=s0 joins b=s1 (100 > 30).
        assert URIRef("s0.rdf#info") in set(engine.current_matches(end))

    def test_update_propagates_both_sides(self, db, registry, engine, schema):
        end = register_rule(engine, registry, schema, CROSS_JOIN_RULE)
        left = server(0, memory=100, cpu=500)
        right = server(1, memory=1, cpu=30)
        engine.process_diff(diff_documents(None, left))
        engine.process_diff(diff_documents(None, right))
        assert URIRef("s0.rdf#info") in set(engine.current_matches(end))

        # Raise the right side's cpu above the left's memory: unmatch.
        updated = right.copy()
        updated.get("s1.rdf#info").set("cpu", 900)
        engine.process_diff(diff_documents(right, updated))
        documents = [left, updated]
        assert set(engine.current_matches(end)) == oracle(
            schema, CROSS_JOIN_RULE, documents
        )

    def test_self_pairing_allowed(self, db, registry, engine, schema):
        """A resource may join with itself when the predicate holds."""
        end = register_rule(engine, registry, schema, CROSS_JOIN_RULE)
        engine.process_diff(diff_documents(None, server(0, memory=50, cpu=10)))
        # a = b = s0: memory 50 > cpu 10 — matches.
        assert set(engine.current_matches(end)) == {URIRef("s0.rdf#info")}


class TestNotEqualJoin:
    RULE = (
        "search CycleProvider c, ServerInformation s register c "
        "where c.serverInformation != s and s.memory > 0 "
        "and c.serverPort > 0"
    )

    def test_matches_any_other_server(self, db, registry, engine, schema):
        """`!=` joins: c matches when some s is NOT its referenced one."""
        end = register_rule(engine, registry, schema, self.RULE)
        doc = Document("d.rdf")
        provider = doc.new_resource("host", "CycleProvider")
        provider.add("serverPort", 80)
        provider.add("serverInformation", URIRef("d.rdf#own"))
        own = doc.new_resource("own", "ServerInformation")
        own.add("memory", 4)
        engine.process_diff(diff_documents(None, doc))
        # Only its own server exists: != finds nothing.
        assert engine.current_matches(end) == []

        other = Document("e.rdf")
        info = other.new_resource("info", "ServerInformation")
        info.add("memory", 8)
        engine.process_diff(diff_documents(None, other))
        assert set(engine.current_matches(end)) == {URIRef("d.rdf#host")}
