"""Document decomposition must reproduce the paper's Figure 4 exactly."""

from repro.filter.decompose import document_atoms, resource_atoms, resources_atoms
from repro.rdf.model import Document, URIRef


def test_figure4_table_contents(figure1):
    """The FilterData rows for the Figure 1 document (paper, Figure 4)."""
    rows = set(document_atoms(figure1))
    assert rows == {
        ("doc.rdf#host", "CycleProvider", "rdf#subject", "doc.rdf#host"),
        ("doc.rdf#host", "CycleProvider", "serverHost", "pirates.uni-passau.de"),
        ("doc.rdf#host", "CycleProvider", "serverPort", "5874"),
        ("doc.rdf#host", "CycleProvider", "serverInformation", "doc.rdf#info"),
        ("doc.rdf#info", "ServerInformation", "rdf#subject", "doc.rdf#info"),
        ("doc.rdf#info", "ServerInformation", "memory", "92"),
        ("doc.rdf#info", "ServerInformation", "cpu", "600"),
    }


def test_identity_atom_first(figure1):
    host = figure1.get("doc.rdf#host")
    rows = resource_atoms(host)
    assert rows[0] == (
        "doc.rdf#host",
        "CycleProvider",
        "rdf#subject",
        "doc.rdf#host",
    )


def test_multivalued_property_one_row_per_value():
    doc = Document("d.rdf")
    resource = doc.new_resource("x", "Thing")
    resource.add("tag", "a")
    resource.add("tag", "b")
    rows = resource_atoms(resource)
    values = sorted(v for (__, __cls, prop, v) in rows if prop == "tag")
    assert values == ["a", "b"]


def test_reference_value_is_target_uri():
    doc = Document("d.rdf")
    resource = doc.new_resource("x", "Thing")
    resource.add("ref", URIRef("other.rdf#y"))
    rows = resource_atoms(resource)
    assert ("d.rdf#x", "Thing", "ref", "other.rdf#y") in rows


def test_resources_atoms_preserves_order(figure1):
    resources = list(figure1)
    rows = resources_atoms(resources)
    assert rows == [
        row for resource in resources for row in resource_atoms(resource)
    ]


def test_empty_resource_still_has_identity_atom():
    doc = Document("d.rdf")
    resource = doc.new_resource("bare", "Thing")
    rows = resource_atoms(resource)
    assert rows == [("d.rdf#bare", "Thing", "rdf#subject", "d.rdf#bare")]
