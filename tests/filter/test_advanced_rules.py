"""Engine-level tests for advanced rule shapes.

Covers shapes the paper implies but never walks through: deep paths
(two reference hops), subclass extensions, set-valued properties with
the ``?`` operator, named rules receiving incremental updates, and
self-join predicates — all through the full filter machinery including
the three-pass update algorithm.
"""

import pytest

from repro.filter.engine import FilterEngine
from repro.rdf.diff import deletion_diff, diff_documents
from repro.rdf.model import Document, URIRef
from repro.rules.decompose import decompose_rule
from repro.rules.normalize import normalize_rule
from repro.rules.parser import parse_rule
from repro.rules.registry import RuleRegistry


@pytest.fixture()
def rich_engine(db, rich_schema):
    registry = RuleRegistry(db)
    return rich_schema, registry, FilterEngine(db, registry)


def register(engine, registry, schema, text, subscriber="lmr"):
    normalized = normalize_rule(
        parse_rule(text), schema, registry.named_rule_types()
    )[0]
    decomposed = decompose_rule(
        normalized, schema, registry.named_producers()
    )
    registration = registry.register_subscription(
        subscriber, text, decomposed
    )
    engine.initialize_rules(registration.created)
    return registration.end_rule


class TestDeepPaths:
    def make_chain(self, index, memory):
        doc = Document(f"d{index}.rdf")
        data = doc.new_resource("dp", "DataProvider")
        data.add("collection", "stars")
        data.add("host", URIRef(f"d{index}.rdf#cp"))
        cycle = doc.new_resource("cp", "CycleProvider")
        cycle.add("serverPort", 80)
        cycle.add("serverInformation", URIRef(f"d{index}.rdf#si"))
        info = doc.new_resource("si", "ServerInformation")
        info.add("memory", memory)
        return doc

    def test_two_hop_path_rule(self, rich_engine):
        schema, registry, engine = rich_engine
        end = register(
            engine,
            registry,
            schema,
            "search DataProvider d register d "
            "where d.host.serverInformation.memory > 64",
        )
        doc = self.make_chain(1, memory=128)
        outcome = engine.process_insertions(list(doc))
        assert outcome.matched == {end: {URIRef("d1.rdf#dp")}}
        assert outcome.passes[0].iterations == 2  # one wave per join level

    def test_update_at_chain_end_propagates_two_hops(self, rich_engine):
        schema, registry, engine = rich_engine
        end = register(
            engine,
            registry,
            schema,
            "search DataProvider d register d "
            "where d.host.serverInformation.memory > 64",
        )
        doc = self.make_chain(1, memory=128)
        engine.process_insertions(list(doc))
        updated = doc.copy()
        updated.get("d1.rdf#si").set("memory", 8)
        outcome = engine.process_diff(diff_documents(doc, updated))
        assert outcome.unmatched == {end: {URIRef("d1.rdf#dp")}}


class TestSubclassExtensions:
    def test_superclass_rule_matches_subclasses(self, rich_engine):
        schema, registry, engine = rich_engine
        end = register(
            engine, registry, schema,
            "search Provider p register p where p.serverHost contains 'de'",
        )
        doc = Document("d.rdf")
        cycle = doc.new_resource("c", "CycleProvider")
        cycle.add("serverHost", "x.de")
        data = doc.new_resource("dp", "DataProvider")
        data.add("serverHost", "y.de")
        outcome = engine.process_insertions(list(doc))
        assert outcome.matched == {
            end: {URIRef("d.rdf#c"), URIRef("d.rdf#dp")}
        }

    def test_subclass_rule_ignores_siblings(self, rich_engine):
        schema, registry, engine = rich_engine
        end = register(
            engine, registry, schema,
            "search DataProvider p register p",
        )
        doc = Document("d.rdf")
        doc.new_resource("c", "CycleProvider")
        doc.new_resource("dp", "DataProvider")
        outcome = engine.process_insertions(list(doc))
        assert outcome.matched == {end: {URIRef("d.rdf#dp")}}


class TestSetValuedProperties:
    def test_any_operator_through_engine(self, rich_engine):
        schema, registry, engine = rich_engine
        end = register(
            engine, registry, schema,
            "search CycleProvider c register c where c.tags? = 'fast'",
        )
        doc = Document("d.rdf")
        tagged = doc.new_resource("a", "CycleProvider")
        tagged.add("tags", "cheap")
        tagged.add("tags", "fast")
        plain = doc.new_resource("b", "CycleProvider")
        plain.add("tags", "slow")
        outcome = engine.process_insertions(list(doc))
        assert outcome.matched == {end: {URIRef("d.rdf#a")}}

    def test_multivalued_reference_join(self, rich_engine):
        schema, registry, engine = rich_engine
        end = register(
            engine, registry, schema,
            "search CycleProvider c register c "
            "where c.mirrors?.serverHost contains 'passau'",
        )
        doc = Document("d.rdf")
        main = doc.new_resource("main", "CycleProvider")
        main.add("mirrors", URIRef("d.rdf#m1"))
        main.add("mirrors", URIRef("d.rdf#m2"))
        mirror1 = doc.new_resource("m1", "CycleProvider")
        mirror1.add("serverHost", "x.tum.de")
        mirror2 = doc.new_resource("m2", "CycleProvider")
        mirror2.add("serverHost", "y.uni-passau.de")
        outcome = engine.process_insertions(list(doc))
        assert URIRef("d.rdf#main") in outcome.matched[end]

    def test_removing_matching_value_unmatches(self, rich_engine):
        schema, registry, engine = rich_engine
        end = register(
            engine, registry, schema,
            "search CycleProvider c register c where c.tags? = 'fast'",
        )
        doc = Document("d.rdf")
        tagged = doc.new_resource("a", "CycleProvider")
        tagged.add("tags", "fast")
        tagged.add("tags", "cheap")
        engine.process_insertions(list(doc))
        updated = doc.copy()
        updated.get("d.rdf#a").set("tags", "cheap")
        outcome = engine.process_diff(diff_documents(doc, updated))
        assert outcome.unmatched == {end: {URIRef("d.rdf#a")}}


class TestSelfJoins:
    def test_self_join_through_engine(self, rich_engine):
        schema, registry, engine = rich_engine
        end = register(
            engine, registry, schema,
            "search ServerInformation s register s where s.memory = s.cpu",
        )
        doc = Document("d.rdf")
        balanced = doc.new_resource("a", "ServerInformation")
        balanced.add("memory", 8)
        balanced.add("cpu", 8)
        skewed = doc.new_resource("b", "ServerInformation")
        skewed.add("memory", 8)
        skewed.add("cpu", 16)
        outcome = engine.process_insertions(list(doc))
        assert outcome.matched == {end: {URIRef("d.rdf#a")}}

    def test_self_join_update(self, rich_engine):
        schema, registry, engine = rich_engine
        end = register(
            engine, registry, schema,
            "search ServerInformation s register s where s.memory = s.cpu",
        )
        doc = Document("d.rdf")
        resource = doc.new_resource("a", "ServerInformation")
        resource.add("memory", 8)
        resource.add("cpu", 8)
        engine.process_insertions(list(doc))
        updated = doc.copy()
        updated.get("d.rdf#a").set("cpu", 9)
        outcome = engine.process_diff(diff_documents(doc, updated))
        assert outcome.unmatched == {end: {URIRef("d.rdf#a")}}


class TestNamedRuleUpdates:
    """Updates must flow through named rules into derived subscriptions."""

    def setup_named(self, engine, registry, schema):
        normalized = normalize_rule(
            parse_rule(
                "search CycleProvider c register c "
                "where c.serverHost contains 'passau'"
            ),
            schema,
        )[0]
        registration = registry.register_named_rule(
            "PassauHosts",
            "search CycleProvider c register c "
            "where c.serverHost contains 'passau'",
            decompose_rule(normalized, schema),
        )
        engine.initialize_rules(registration.created)
        return register(
            engine, registry, schema,
            "search PassauHosts p register p where p.serverPort = 80",
        )

    def test_update_into_named_extension(self, rich_engine):
        schema, registry, engine = rich_engine
        end = self.setup_named(engine, registry, schema)
        doc = Document("d.rdf")
        provider = doc.new_resource("c", "CycleProvider")
        provider.add("serverHost", "x.tum.de")
        provider.add("serverPort", 80)
        outcome = engine.process_insertions(list(doc))
        assert outcome.matched == {}

        moved = doc.copy()
        moved.get("d.rdf#c").set("serverHost", "x.uni-passau.de")
        outcome = engine.process_diff(diff_documents(doc, moved))
        # Engine-level outcomes also list the named rule's own end rule
        # (the publisher skips the ~named~ pseudo-subscriber); the
        # derived subscription is what we assert on.
        assert outcome.matched.get(end) == {URIRef("d.rdf#c")}

        # And out again.
        back = moved.copy()
        back.get("d.rdf#c").set("serverHost", "x.tum.de")
        outcome = engine.process_diff(diff_documents(moved, back))
        assert outcome.unmatched.get(end) == {URIRef("d.rdf#c")}

    def test_delete_through_named_extension(self, rich_engine):
        schema, registry, engine = rich_engine
        end = self.setup_named(engine, registry, schema)
        doc = Document("d.rdf")
        provider = doc.new_resource("c", "CycleProvider")
        provider.add("serverHost", "x.uni-passau.de")
        provider.add("serverPort", 80)
        engine.process_insertions(list(doc))
        outcome = engine.process_diff(deletion_diff(doc))
        assert outcome.unmatched.get(end) == {URIRef("d.rdf#c")}
