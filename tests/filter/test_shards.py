"""Unit tests for the sharded triggering evaluator."""

from __future__ import annotations

import pytest

from repro.filter.engine import FilterEngine
from repro.filter.shards import MAX_SHARDS, ShardPlan, ShardPool
from repro.obs.metrics import MetricsRegistry
from repro.rules.registry import RuleRegistry
from repro.storage.engine import Database
from repro.storage.schema import create_all

from tests.conftest import register_rule


def test_shard_plan_is_deterministic_and_total():
    plan = ShardPlan(4)
    uris = [f"doc{i}.rdf#r" for i in range(100)]
    routes = [plan.shard_of(uri) for uri in uris]
    assert routes == [plan.shard_of(uri) for uri in uris]
    assert all(0 <= r < 4 for r in routes)
    # Not all resources on one shard (crc32 spreads this keyspace).
    assert len(set(routes)) > 1


def test_shard_plan_partitions_by_resource():
    plan = ShardPlan(3)
    rows = [
        ("a#1", "C", "p", "1"),
        ("a#1", "C", "q", "2"),
        ("b#2", "C", "p", "3"),
        ("a#1", "C", "r", "4"),  # non-contiguous same resource
    ]
    parts = plan.partition(rows)
    assert sum(len(p) for p in parts) == len(rows)
    for row in rows:
        assert row in parts[plan.shard_of(row[0])]


def test_shard_plan_rejects_bad_counts():
    with pytest.raises(ValueError):
        ShardPlan(0)
    with pytest.raises(ValueError):
        ShardPlan(MAX_SHARDS + 1)


@pytest.fixture()
def rule_db(schema):
    db = Database()
    create_all(db)
    registry = RuleRegistry(db)
    engine = FilterEngine(db, registry)
    register_rule(
        engine, registry, schema,
        "search ServerInformation s register s where s.memory > 64",
    )
    yield db, registry, engine
    engine.close()
    db.close()


def test_pool_matches_like_serial_joins(rule_db):
    db, registry, __ = rule_db
    rows = [
        ("x.rdf#i", "ServerInformation", "memory", "128"),
        ("y.rdf#i", "ServerInformation", "memory", "32"),
    ]
    with ShardPool(2, metrics=MetricsRegistry()) as pool:
        pool.refresh_rules(db, registry.mutation_version)
        hits = pool.match(rows)
    assert [uri for uri, __ in hits] == ["x.rdf#i"]


def test_refresh_rules_is_version_keyed(rule_db, schema):
    db, registry, engine = rule_db
    metrics = MetricsRegistry()
    with ShardPool(2, metrics=metrics) as pool:
        assert pool.refresh_rules(db, registry.mutation_version) is True
        assert pool.refresh_rules(db, registry.mutation_version) is False
        # A new rule bumps the version → next refresh reloads.
        register_rule(
            engine, registry, schema,
            "search ServerInformation s register s where s.cpu > 0",
        )
        assert pool.refresh_rules(db, registry.mutation_version) is True
        assert metrics.counter("filter.shard.rule_reloads").value == 2


def test_dispatch_records_metrics(rule_db):
    db, registry, __ = rule_db
    metrics = MetricsRegistry()
    rows = [("x.rdf#i", "ServerInformation", "memory", "128")]
    with ShardPool(2, metrics=metrics) as pool:
        pool.refresh_rules(db, registry.mutation_version)
        pool.match(rows)
    assert metrics.counter("filter.shard.dispatches").value == 1
    assert metrics.counter("filter.shard.rows").value == 1
    assert metrics.counter("filter.shard.hits").value == 1
    assert metrics.histogram("filter.shard.batch_ms").count >= 1


def test_pool_close_is_idempotent():
    pool = ShardPool(2, metrics=MetricsRegistry())
    pool.close()
    pool.close()


def test_engine_parallelism_validation(db, registry):
    with pytest.raises(ValueError):
        FilterEngine(db, registry, parallelism=0)
    with pytest.raises(ValueError):
        FilterEngine(db, registry, parallelism=MAX_SHARDS + 1)


def test_serial_engine_builds_no_pool(engine):
    assert engine.parallelism == 1
    engine.warm_shards()
    assert engine._shards is None
    engine.close()  # no-op, must not raise


def test_parallel_engine_close_is_idempotent(db, registry):
    engine = FilterEngine(db, registry, parallelism=2)
    engine.warm_shards()
    assert engine._shards is not None
    engine.close()
    assert engine._shards is None
    engine.close()
