"""Differential fuzzing: sharded evaluation against the serial oracle.

The serial filter (``parallelism=1``) is the correctness oracle; the
sharded evaluator (:mod:`repro.filter.shards`) must be *byte-identical*
to it — same :class:`PublishOutcome` match/unmatch sets, same triggering
hit counts, same iteration depths, same final materialized state — for
every workload, shard count and join-evaluation mode.

Each seeded scenario exercises the paths that could diverge:

- initial registrations (the single-pass insert path, with the
  dispatch/ingest overlap),
- a mid-stream subscription (forces a shard rule-replica refresh),
- updates and deletions (the three-pass diff algorithm: pass 2 feeds
  the shards from ``filter_data`` via ``input_uris``),
- an unsubscribe (rule garbage collection bumps the registry's
  mutation version).
"""

from __future__ import annotations

import json
import random

import pytest

from repro.filter.engine import FilterEngine
from repro.rdf.diff import deletion_diff, diff_documents
from repro.rdf.model import Document, URIRef
from repro.rdf.schema import objectglobe_schema
from repro.rules.decompose import decompose_rule
from repro.rules.normalize import normalize_rule
from repro.rules.parser import parse_rule
from repro.rules.registry import RuleRegistry
from repro.storage.engine import Database
from repro.storage.schema import create_all

SEEDS = [1, 7, 42]

_HOST_POOL = ["a.uni-passau.de", "b.tum.de", "c.fu.de", "d.lmu.de"]

_RULE_TEMPLATES = [
    "search CycleProvider c register c where c.serverHost contains '{frag}'",
    "search CycleProvider c register c where c.serverInformation.memory > {mem}",
    "search CycleProvider c register c where c.serverInformation.cpu <= {cpu}",
    "search ServerInformation s register s where s.memory >= {mem}",
    "search CycleProvider c register c "
    "where c.serverHost contains '{frag}' "
    "and c.serverInformation.cpu > {cpu}",
    "search CycleProvider c register c",
]


def _random_rules(rng: random.Random, count: int) -> list[str]:
    rules = []
    for __ in range(count):
        template = rng.choice(_RULE_TEMPLATES)
        rules.append(
            template.format(
                frag=rng.choice(["passau", "tum", "de", "uni"]),
                mem=rng.choice([32, 64, 128]),
                cpu=rng.choice([400, 500, 600]),
            )
        )
    # Dedup while preserving order; registering the same (subscriber,
    # rule) pair twice is an error.
    return list(dict.fromkeys(rules))


def _random_document(rng: random.Random, index: int) -> Document:
    doc = Document(f"doc{index}.rdf")
    provider = doc.new_resource("host", "CycleProvider")
    provider.add("serverHost", rng.choice(_HOST_POOL))
    provider.add("serverInformation", URIRef(f"doc{index}.rdf#info"))
    info = doc.new_resource("info", "ServerInformation")
    info.add("memory", rng.choice([16, 64, 92, 128, 256]))
    info.add("cpu", rng.choice([300, 450, 550, 700]))
    return doc


def _outcome_key(outcome) -> dict:
    """A canonical, JSON-serializable digest of one PublishOutcome."""
    return {
        "matched": sorted(
            (rule_id, sorted(str(u) for u in uris))
            for rule_id, uris in outcome.matched.items()
        ),
        "unmatched": sorted(
            (rule_id, sorted(str(u) for u in uris))
            for rule_id, uris in outcome.unmatched.items()
        ),
        "deleted": sorted(str(u) for u in outcome.deleted),
        "passes": [
            {"hits": p.triggering_hits, "iterations": p.iterations}
            for p in outcome.passes
        ],
    }


def run_scenario(seed: int, parallelism: int, join_evaluation: str) -> bytes:
    """One seeded publish/subscribe workload; returns a canonical digest."""
    rng = random.Random(seed)
    schema = objectglobe_schema()
    db = Database()
    create_all(db)
    registry = RuleRegistry(db)
    engine = FilterEngine(
        db, registry, join_evaluation=join_evaluation, parallelism=parallelism
    )

    def subscribe(index: int, text: str) -> int:
        normalized = normalize_rule(parse_rule(text), schema)[0]
        registration = registry.register_subscription(
            f"lmr{index}", text, decompose_rule(normalized, schema)
        )
        engine.initialize_rules(registration.created)
        return registration.end_rule

    try:
        rules = _random_rules(rng, 6)
        late_rule = rules.pop()
        ends = {text: subscribe(i, text) for i, text in enumerate(rules)}

        documents = [_random_document(rng, i) for i in range(12)]
        digests = []
        for doc in documents[:8]:
            digests.append(
                _outcome_key(engine.process_diff(diff_documents(None, doc)))
            )

        # Mid-stream subscription: the sharded path must refresh its
        # rule replicas before the next publish.
        ends[late_rule] = subscribe(99, late_rule)
        for doc in documents[8:]:
            digests.append(
                _outcome_key(engine.process_diff(diff_documents(None, doc)))
            )

        # Updates: flip memory/cpu on a few random documents.
        for index in rng.sample(range(12), 4):
            old = documents[index]
            new = old.copy()
            info = new.get(f"doc{index}.rdf#info")
            info.set("memory", rng.choice([8, 96, 512]))
            info.set("cpu", rng.choice([100, 650]))
            digests.append(
                _outcome_key(engine.process_diff(diff_documents(old, new)))
            )
            documents[index] = new

        # Unsubscribe (may garbage-collect atoms → version bump), then
        # one more publish and a deletion.
        registry.unsubscribe("lmr0", rules[0])
        del ends[rules[0]]
        extra = _random_document(rng, 12)
        digests.append(
            _outcome_key(engine.process_diff(diff_documents(None, extra)))
        )
        digests.append(
            _outcome_key(engine.process_diff(deletion_diff(documents[3])))
        )

        final = {
            text: sorted(str(u) for u in engine.current_matches(end))
            for text, end in ends.items()
        }
        return json.dumps(
            {"digests": digests, "final": final}, sort_keys=True
        ).encode()
    finally:
        engine.close()
        db.close()


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "parallelism,join_evaluation",
    [(2, "probe"), (4, "probe"), (8, "probe"), (4, "scan"), (1, "scan")],
)
def test_parallel_matches_serial(seed, parallelism, join_evaluation):
    baseline = run_scenario(seed, parallelism=1, join_evaluation="probe")
    variant = run_scenario(seed, parallelism, join_evaluation)
    assert variant == baseline


@pytest.mark.parametrize("seed", SEEDS)
def test_notification_order_matches_serial(seed):
    """Provider-level check: the ordered notification stream is equal."""
    from repro.mdv.provider import MetadataProvider

    def run(parallelism: int):
        rng = random.Random(seed)
        provider = MetadataProvider(
            objectglobe_schema(), parallelism=parallelism
        )
        received: list[tuple] = []

        def handler(batch) -> None:
            received.append(
                (
                    batch.subscriber,
                    [(n.kind, str(n.uri)) for n in batch],
                )
            )

        try:
            provider.connect_subscriber("lmr-diff", handler)
            for text in _random_rules(rng, 4):
                provider.subscribe("lmr-diff", text)
            for i in range(6):
                provider.register_document(_random_document(rng, i))
            return received
        finally:
            provider.close()

    assert run(4) == run(1)
