"""Property-based oracle tests over the *rich* schema.

Extends the basic oracle suite with the shapes the ObjectGlobe schema
cannot express: subclass extensions, multivalued (set-valued) reference
properties, two-hop paths and class changes on update.
"""

from tests.conftest import prop_settings
from hypothesis import given, settings, strategies as st

from repro.filter.engine import FilterEngine
from repro.query.evaluator import evaluate_query
from repro.rdf.diff import diff_documents
from repro.rdf.model import Document, URIRef
from repro.rdf.schema import PropertyDef, PropertyKind, RefStrength, Schema
from repro.rules.ast import Query
from repro.rules.decompose import decompose_rule
from repro.rules.normalize import normalize_rule
from repro.rules.parser import parse_rule
from repro.rules.registry import RuleRegistry
from repro.storage.engine import Database
from repro.storage.schema import create_all


def build_schema() -> Schema:
    schema = Schema()
    schema.define_class(
        "ServerInformation",
        [
            PropertyDef("memory", PropertyKind.INTEGER),
            PropertyDef("cpu", PropertyKind.INTEGER),
        ],
    )
    schema.define_class(
        "Provider",
        [
            PropertyDef("serverHost", PropertyKind.STRING),
            PropertyDef("tags", PropertyKind.STRING, multivalued=True),
        ],
    )
    schema.define_class(
        "CycleProvider",
        [
            PropertyDef(
                "serverInformation",
                PropertyKind.REFERENCE,
                target_class="ServerInformation",
                strength=RefStrength.STRONG,
            ),
            PropertyDef(
                "mirrors",
                PropertyKind.REFERENCE,
                target_class="Provider",
                multivalued=True,
            ),
        ],
        superclass="Provider",
    )
    schema.define_class(
        "DataProvider",
        [
            PropertyDef(
                "host",
                PropertyKind.REFERENCE,
                target_class="CycleProvider",
            ),
        ],
        superclass="Provider",
    )
    schema.freeze_check()
    return schema


SCHEMA = build_schema()

RULES = [
    "search Provider p register p where p.serverHost contains 'de'",
    "search Provider p register p where p.tags? = 'fast'",
    "search CycleProvider c register c "
    "where c.serverInformation.memory > 2",
    "search DataProvider d register d "
    "where d.host.serverInformation.cpu >= 3",
    "search CycleProvider c register c "
    "where c.mirrors?.serverHost contains 'passau'",
    "search DataProvider d register d",
]

hosts = st.sampled_from(["a.uni-passau.de", "b.tum.de", "c.org"])
tags = st.lists(
    st.sampled_from(["fast", "cheap", "slow"]), max_size=2, unique=True
)
small_ints = st.integers(min_value=0, max_value=5)


@st.composite
def worlds(draw):
    """3-5 documents: cycle providers, data providers, cross references."""
    count = draw(st.integers(min_value=2, max_value=4))
    documents = []
    for index in range(count):
        doc = Document(f"doc{index}.rdf")
        kind = draw(st.sampled_from(["cycle", "data"]))
        if kind == "cycle":
            provider = doc.new_resource("p", "CycleProvider")
            provider.add("serverHost", draw(hosts))
            for tag in draw(tags):
                provider.add("tags", tag)
            provider.add(
                "serverInformation", URIRef(f"doc{index}.rdf#info")
            )
            for __ in range(draw(st.integers(min_value=0, max_value=2))):
                target = draw(st.integers(min_value=0, max_value=count - 1))
                provider.add("mirrors", URIRef(f"doc{target}.rdf#p"))
            info = doc.new_resource("info", "ServerInformation")
            info.add("memory", draw(small_ints))
            info.add("cpu", draw(small_ints))
        else:
            provider = doc.new_resource("p", "DataProvider")
            provider.add("serverHost", draw(hosts))
            target = draw(st.integers(min_value=0, max_value=count - 1))
            provider.add("host", URIRef(f"doc{target}.rdf#p"))
        documents.append(doc)
    return documents


def build_system():
    db = Database()
    create_all(db)
    registry = RuleRegistry(db)
    engine = FilterEngine(db, registry)
    ends = {}
    for index, text in enumerate(RULES):
        normalized = normalize_rule(parse_rule(text), SCHEMA)[0]
        registration = registry.register_subscription(
            f"lmr{index}", text, decompose_rule(normalized, SCHEMA)
        )
        engine.initialize_rules(registration.created)
        ends[text] = registration.end_rule
    return db, engine, ends


def oracle(text, pool):
    rule = parse_rule(text)
    query = Query(rule.extensions, rule.register, rule.where)
    return {r.uri for r in evaluate_query(query, pool, SCHEMA)}


@prop_settings(30)
@given(documents=worlds())
def test_rich_insert_oracle(documents):
    db, engine, ends = build_system()
    try:
        for doc in documents:
            engine.process_diff(diff_documents(None, doc))
        pool = {r.uri: r for doc in documents for r in doc}
        for text, end in ends.items():
            assert set(engine.current_matches(end)) == oracle(text, pool), text
    finally:
        db.close()


@prop_settings(30)
@given(documents=worlds(), data=st.data())
def test_rich_update_oracle(documents, data):
    db, engine, ends = build_system()
    try:
        current = {}
        for doc in documents:
            engine.process_diff(diff_documents(None, doc))
            current[doc.uri] = doc
        for __ in range(data.draw(st.integers(min_value=1, max_value=3))):
            uri = data.draw(st.sampled_from(sorted(current)), label="victim")
            doc = current[uri]
            updated = doc.copy()
            provider = updated.get(f"{uri}#p")
            mutation = data.draw(
                st.sampled_from(["host", "tags", "info", "class_flip"]),
                label="mutation",
            )
            if mutation == "host":
                provider.set("serverHost", data.draw(hosts, label="h"))
            elif mutation == "tags":
                provider.remove("tags")
                for tag in data.draw(tags, label="t"):
                    provider.add("tags", tag)
            elif mutation == "info" and updated.get(f"{uri}#info"):
                info = updated.get(f"{uri}#info")
                info.set("memory", data.draw(small_ints, label="m"))
                info.set("cpu", data.draw(small_ints, label="c"))
            elif mutation == "class_flip" and provider.rdf_class == "DataProvider":
                # Swap a DataProvider for a plain Provider (keeps only
                # the superclass properties).
                fresh = Document(uri)
                replacement = fresh.new_resource("p", "Provider")
                for value in provider.get("serverHost"):
                    replacement.add("serverHost", value)
                updated = fresh
            engine.process_diff(diff_documents(doc, updated))
            current[uri] = updated
        pool = {r.uri: r for doc in current.values() for r in doc}
        for text, end in ends.items():
            assert set(engine.current_matches(end)) == oracle(text, pool), text
    finally:
        db.close()
