"""Tests of the three-pass update/delete algorithm (paper, Section 3.5).

The section distinguishes three update situations plus the reference
cases; each has a dedicated test:

1. the resource no longer matches a rule it previously did;
2. the resource newly matches a rule it previously did not;
3. the resource still matches (content refresh);
plus updates/deletions of *referenced* resources affecting referencing
resources, and the candidate/wrong-candidate distinction.
"""

from repro.rdf.diff import deletion_diff, diff_documents
from repro.rdf.model import Document, URIRef

from tests.conftest import PAPER_RULE, register_rule


def make_pair(index, memory=92, cpu=600, host="pirates.uni-passau.de"):
    doc = Document(f"doc{index}.rdf")
    provider = doc.new_resource("host", "CycleProvider")
    provider.add("serverHost", host)
    provider.add("serverPort", 5000 + index)
    provider.add("serverInformation", URIRef(f"doc{index}.rdf#info"))
    info = doc.new_resource("info", "ServerInformation")
    info.add("memory", memory)
    info.add("cpu", cpu)
    return doc


MEMORY_RULE = (
    "search CycleProvider c register c "
    "where c.serverInformation.memory > 64"
)


class TestDirectUpdates:
    def test_case1_no_longer_matches(self, db, registry, engine, schema):
        end = register_rule(engine, registry, schema, MEMORY_RULE)
        doc = make_pair(1)
        engine.process_diff(diff_documents(None, doc))
        updated = doc.copy()
        updated.get("doc1.rdf#info").set("memory", 32)
        outcome = engine.process_diff(diff_documents(doc, updated))
        assert outcome.unmatched == {end: {URIRef("doc1.rdf#host")}}
        assert outcome.matched == {}

    def test_case2_newly_matches(self, db, registry, engine, schema):
        end = register_rule(engine, registry, schema, MEMORY_RULE)
        doc = make_pair(1, memory=32)
        outcome = engine.process_diff(diff_documents(None, doc))
        assert outcome.matched == {}
        updated = doc.copy()
        updated.get("doc1.rdf#info").set("memory", 128)
        outcome = engine.process_diff(diff_documents(doc, updated))
        assert outcome.matched == {end: {URIRef("doc1.rdf#host")}}
        assert outcome.unmatched == {}

    def test_case3_still_matches_content_refresh(
        self, db, registry, engine, schema
    ):
        end = register_rule(engine, registry, schema, MEMORY_RULE)
        doc = make_pair(1, memory=92)
        engine.process_diff(diff_documents(None, doc))
        updated = doc.copy()
        updated.get("doc1.rdf#info").set("memory", 128)  # still > 64
        outcome = engine.process_diff(diff_documents(doc, updated))
        # Still matching: re-published (the LMR refreshes its copy).
        assert outcome.matched == {end: {URIRef("doc1.rdf#host")}}
        assert outcome.unmatched == {}

    def test_update_of_matched_resource_itself(self, db, registry, engine, schema):
        rule = (
            "search CycleProvider c register c "
            "where c.serverHost contains 'passau'"
        )
        end = register_rule(engine, registry, schema, rule)
        doc = make_pair(1)
        engine.process_diff(diff_documents(None, doc))
        updated = doc.copy()
        updated.get("doc1.rdf#host").set("serverHost", "db.tum.de")
        outcome = engine.process_diff(diff_documents(doc, updated))
        assert outcome.unmatched == {end: {URIRef("doc1.rdf#host")}}


class TestWrongCandidates:
    def test_still_matching_via_other_rule_not_unmatched(
        self, db, registry, engine, schema
    ):
        """A candidate that still matches the SAME rule via other data.

        Two ServerInformation resources referenced by one provider; one
        drops below the threshold, the other still qualifies — the
        provider must stay matched (wrong candidate, Section 3.5)."""
        doc = Document("doc1.rdf")
        provider = doc.new_resource("host", "CycleProvider")
        provider.add("serverHost", "h.passau.de")
        provider.add("serverInformation", URIRef("doc1.rdf#a"))
        info_a = doc.new_resource("a", "ServerInformation")
        info_a.add("memory", 100)

        doc2 = Document("doc2.rdf")
        provider2 = doc2.new_resource("host", "CycleProvider")
        provider2.add("serverHost", "h2.passau.de")
        provider2.add("serverInformation", URIRef("doc1.rdf#a"))

        end = register_rule(engine, registry, schema, MEMORY_RULE)
        engine.process_diff(diff_documents(None, doc))
        outcome = engine.process_diff(diff_documents(None, doc2))
        assert outcome.matched == {end: {URIRef("doc2.rdf#host")}}

        # Update the shared info: both providers re-evaluated.
        updated = doc.copy()
        updated.get("doc1.rdf#a").set("memory", 32)
        outcome = engine.process_diff(diff_documents(doc, updated))
        assert outcome.unmatched == {
            end: {URIRef("doc1.rdf#host"), URIRef("doc2.rdf#host")}
        }

    def test_candidate_rescued_by_second_reference(
        self, db, registry, engine, schema
    ):
        # One provider referencing two infos; killing one leaves the
        # match alive through the second (multi-valued reference is not
        # in the paper's schema, so use two providers' shared info in
        # reverse: here the provider has its own info plus a shared one).
        doc = Document("doc1.rdf")
        provider = doc.new_resource("host", "CycleProvider")
        provider.add("serverHost", "h.passau.de")
        provider.add("serverInformation", URIRef("doc1.rdf#a"))
        info = doc.new_resource("a", "ServerInformation")
        info.add("memory", 100)
        info.add("cpu", 700)

        end = register_rule(
            engine,
            registry,
            schema,
            "search CycleProvider c register c "
            "where c.serverInformation.memory > 64 "
            "and c.serverInformation.cpu > 500",
        )
        engine.process_diff(diff_documents(None, doc))
        updated = doc.copy()
        updated.get("doc1.rdf#a").set("cpu", 800)  # still matches
        outcome = engine.process_diff(diff_documents(doc, updated))
        assert outcome.matched == {end: {URIRef("doc1.rdf#host")}}
        assert outcome.unmatched == {}


class TestDeletions:
    def test_delete_document_unmatches(self, db, registry, engine, schema):
        end = register_rule(engine, registry, schema, MEMORY_RULE)
        doc = make_pair(1)
        engine.process_diff(diff_documents(None, doc))
        outcome = engine.process_diff(deletion_diff(doc))
        assert outcome.unmatched == {end: {URIRef("doc1.rdf#host")}}
        assert outcome.deleted == {
            URIRef("doc1.rdf#host"),
            URIRef("doc1.rdf#info"),
        }

    def test_delete_referenced_resource_only(self, db, registry, engine, schema):
        end = register_rule(engine, registry, schema, MEMORY_RULE)
        doc = make_pair(1)
        engine.process_diff(diff_documents(None, doc))
        updated = doc.copy()
        updated.remove("doc1.rdf#info")
        outcome = engine.process_diff(diff_documents(doc, updated))
        assert outcome.unmatched == {end: {URIRef("doc1.rdf#host")}}
        assert outcome.deleted == {URIRef("doc1.rdf#info")}

    def test_state_fully_cleaned(self, db, registry, engine, schema):
        register_rule(engine, registry, schema, PAPER_RULE)
        doc = make_pair(1)
        engine.process_diff(diff_documents(None, doc))
        engine.process_diff(deletion_diff(doc))
        assert db.count("filter_data") == 0
        assert db.count("materialized") == 0

    def test_reinsert_after_delete(self, db, registry, engine, schema):
        end = register_rule(engine, registry, schema, MEMORY_RULE)
        doc = make_pair(1)
        engine.process_diff(diff_documents(None, doc))
        engine.process_diff(deletion_diff(doc))
        outcome = engine.process_diff(diff_documents(None, make_pair(1)))
        assert outcome.matched == {end: {URIRef("doc1.rdf#host")}}


class TestMixedDiffs:
    def test_insert_update_delete_in_one_diff(self, db, registry, engine, schema):
        end = register_rule(engine, registry, schema, MEMORY_RULE)
        old = Document("d.rdf")
        keep = old.new_resource("keep", "CycleProvider")
        keep.add("serverInformation", URIRef("d.rdf#i1"))
        info1 = old.new_resource("i1", "ServerInformation")
        info1.add("memory", 100)
        gone = old.new_resource("gone", "CycleProvider")
        gone.add("serverInformation", URIRef("d.rdf#i1"))
        engine.process_diff(diff_documents(None, old))

        new = Document("d.rdf")
        keep2 = new.new_resource("keep", "CycleProvider")
        keep2.add("serverInformation", URIRef("d.rdf#i1"))
        info1b = new.new_resource("i1", "ServerInformation")
        info1b.add("memory", 90)  # updated, still matches
        fresh = new.new_resource("fresh", "CycleProvider")
        fresh.add("serverInformation", URIRef("d.rdf#i1"))

        outcome = engine.process_diff(diff_documents(old, new))
        assert outcome.matched[end] == {
            URIRef("d.rdf#keep"),
            URIRef("d.rdf#fresh"),
        }
        assert outcome.unmatched == {end: {URIRef("d.rdf#gone")}}

    def test_pure_insert_diff_takes_single_pass(self, db, registry, engine, schema):
        register_rule(engine, registry, schema, MEMORY_RULE)
        outcome = engine.process_diff(diff_documents(None, make_pair(1)))
        assert len(outcome.passes) == 1

    def test_update_diff_takes_three_passes(self, db, registry, engine, schema):
        register_rule(engine, registry, schema, MEMORY_RULE)
        doc = make_pair(1)
        engine.process_diff(diff_documents(None, doc))
        updated = doc.copy()
        updated.get("doc1.rdf#info").set("memory", 10)
        outcome = engine.process_diff(diff_documents(doc, updated))
        assert len(outcome.passes) == 3


class TestMaterializedConsistency:
    def test_incremental_equals_recomputation(self, db, registry, engine, schema):
        """After arbitrary updates, materialized sets must equal a full
        re-evaluation of every rule (the key state invariant)."""
        end = register_rule(engine, registry, schema, PAPER_RULE)
        documents = {i: make_pair(i, memory=50 + i * 30) for i in range(4)}
        for doc in documents.values():
            engine.process_diff(diff_documents(None, doc))

        # A few updates flipping matches back and forth.
        for index, new_memory in ((0, 200), (1, 10), (2, 65), (3, 10)):
            updated = documents[index].copy()
            updated.get(f"doc{index}.rdf#info").set("memory", new_memory)
            engine.process_diff(diff_documents(documents[index], updated))
            documents[index] = updated

        matches = set(engine.current_matches(end))
        expected = {
            URIRef(f"doc{i}.rdf#host")
            for i, doc in documents.items()
            if doc.get(f"doc{i}.rdf#info").get_one("memory").value > 64
        }
        assert matches == expected
