"""End-to-end reproduction of the paper's worked example (Figures 7–9).

Registers the Section 3.3.1 rule, then the Figure 1 document, and checks
the exact iteration trace of Figure 9:

- initial iteration: ``doc.rdf#info`` matches the two ServerInformation
  triggering rules, ``doc.rdf#host`` matches the contains rule;
- iteration 1: the identity join derives ``doc.rdf#info``;
- iteration 2: the reference join derives ``doc.rdf#host`` — the result.
"""

from repro.filter.decompose import resources_atoms
from repro.filter.matcher import match_triggering_rules
from repro.filter.joins import evaluate_groups_at
from repro.rdf.model import URIRef
from repro.storage.tables import FilterDataTable, FilterInputTable, ResultObjectsTable

from tests.conftest import PAPER_RULE, register_rule


def test_figure9_iteration_trace(db, registry, engine, schema, figure1):
    end_rule = register_rule(engine, registry, schema, PAPER_RULE)

    resources = list(figure1)
    atoms = resources_atoms(resources)
    FilterDataTable(db).insert_atoms(atoms)
    filter_input = FilterInputTable(db)
    filter_input.clear()
    filter_input.load(atoms)
    results = ResultObjectsTable(db)
    results.clear()

    # Initial iteration: three triggering hits (Figure 9, left table).
    hits = match_triggering_rules(db)
    assert hits == 3
    initial = results.rows_at(0)
    by_uri = {}
    for uri, rule_id in initial:
        by_uri.setdefault(uri, set()).add(rule_id)
    assert set(by_uri) == {"doc.rdf#host", "doc.rdf#info"}
    assert len(by_uri["doc.rdf#info"]) == 2  # memory > 64 and cpu > 500
    assert len(by_uri["doc.rdf#host"]) == 1  # serverHost contains …

    # Iteration 1: the identity join rule derives doc.rdf#info.
    inserted = evaluate_groups_at(db, 0, 1)
    assert inserted == 1
    assert results.rows_at(1) == [
        ("doc.rdf#info", results.rows_at(1)[0][1])
    ]
    assert results.rows_at(1)[0][0] == "doc.rdf#info"

    # Iteration 2: the end rule derives doc.rdf#host (Figure 9, right).
    inserted = evaluate_groups_at(db, 1, 2)
    assert inserted == 1
    assert results.rows_at(2) == [("doc.rdf#host", end_rule)]

    # Iteration 3: nothing more depends — the filter terminates.
    assert evaluate_groups_at(db, 2, 3) == 0


def test_engine_run_matches_trace(db, registry, engine, schema, figure1):
    end_rule = register_rule(engine, registry, schema, PAPER_RULE)
    outcome = engine.process_insertions(list(figure1))
    assert outcome.matched == {end_rule: {URIRef("doc.rdf#host")}}
    run = outcome.passes[0]
    assert run.triggering_hits == 3
    assert run.iterations == 2


def test_non_matching_document_produces_nothing(db, registry, engine, schema, figure1):
    # Lower the memory below the rule's threshold: no end match.
    figure1.get("doc.rdf#info").set("memory", 32)
    register_rule(engine, registry, schema, PAPER_RULE)
    outcome = engine.process_insertions(list(figure1))
    assert outcome.matched == {}


def test_partial_match_stops_at_identity_join(db, registry, engine, schema, figure1):
    # cpu below threshold: memory rule fires but the identity join fails.
    figure1.get("doc.rdf#info").set("cpu", 100)
    register_rule(engine, registry, schema, PAPER_RULE)
    outcome = engine.process_insertions(list(figure1))
    assert outcome.matched == {}
    assert outcome.passes[0].triggering_hits == 2
    assert outcome.passes[0].iterations == 0
