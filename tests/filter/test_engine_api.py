"""Tests for FilterEngine's less-traveled API surface."""

import pytest

from repro.filter.decompose import resources_atoms
from repro.filter.engine import FilterEngine
from repro.rdf.diff import diff_documents
from repro.rdf.model import Document, URIRef

from tests.conftest import register_rule


def make_pair(index, memory=92, cpu=600):
    doc = Document(f"doc{index}.rdf")
    provider = doc.new_resource("host", "CycleProvider")
    provider.add("serverHost", "a.uni-passau.de")
    provider.add("serverInformation", URIRef(f"doc{index}.rdf#info"))
    info = doc.new_resource("info", "ServerInformation")
    info.add("memory", memory)
    info.add("cpu", cpu)
    return doc


MEMORY_RULE = (
    "search CycleProvider c register c "
    "where c.serverInformation.memory > 64"
)


def test_invalid_join_evaluation_rejected(db, registry):
    with pytest.raises(ValueError):
        FilterEngine(db, registry, join_evaluation="turbo")


def test_run_with_input_uris_reads_filter_data(db, registry, engine, schema):
    end = register_rule(engine, registry, schema, MEMORY_RULE)
    doc = make_pair(1)
    engine.process_insertions(list(doc))
    # Re-running the filter over the stored atoms of the same resources
    # must re-derive the same matches.
    result = engine.run(
        input_uris=[str(r.uri) for r in doc], materialize=False
    )
    assert (end, URIRef("doc1.rdf#host")) in result.pairs


def test_run_with_unknown_uris_is_empty(db, registry, engine, schema):
    register_rule(engine, registry, schema, MEMORY_RULE)
    result = engine.run(input_uris=["ghost.rdf#x"])
    assert result.pairs == set()
    assert result.triggering_hits == 0


def test_collect_modes(db, registry, engine, schema):
    end = register_rule(engine, registry, schema, MEMORY_RULE)
    doc = make_pair(1)
    atoms = resources_atoms(list(doc))
    engine._filter_data.insert_atoms(atoms)

    all_result = engine.run(input_atoms=atoms, materialize=False, collect="all")
    assert len(all_result.pairs) > 1  # intermediate rules included

    end_result = engine.run(input_atoms=atoms, materialize=False, collect="end")
    assert {rule for rule, __ in end_result.pairs} == {end}

    none_result = engine.run(input_atoms=atoms, materialize=False, collect="none")
    assert none_result.pairs == set()
    assert engine.result_count() > 0  # SQL-side count still available


def test_runs_executed_counter(db, registry, engine, schema):
    register_rule(engine, registry, schema, MEMORY_RULE)
    before = engine.runs_executed
    engine.process_insertions(list(make_pair(1)))
    assert engine.runs_executed == before + 1
    doc = make_pair(2)
    engine.process_insertions(list(doc))
    updated = doc.copy()
    updated.get("doc2.rdf#info").set("memory", 10)
    engine.process_diff(diff_documents(doc, updated))
    assert engine.runs_executed == before + 5  # +1 insert, +3 update


def test_delete_resources_helper(db, registry, engine, schema):
    end = register_rule(engine, registry, schema, MEMORY_RULE)
    doc = make_pair(1)
    engine.process_insertions(list(doc))
    outcome = engine.delete_resources(list(doc))
    assert outcome.unmatched == {end: {URIRef("doc1.rdf#host")}}
    assert engine.current_matches(end) == []


def test_current_matches_sorted(db, registry, engine, schema):
    end = register_rule(engine, registry, schema, MEMORY_RULE)
    for index in (3, 1, 2):
        engine.process_insertions(list(make_pair(index)))
    assert engine.current_matches(end) == [
        "doc1.rdf#host",
        "doc2.rdf#host",
        "doc3.rdf#host",
    ]


def test_filter_run_result_helpers(db, registry, engine, schema):
    end = register_rule(engine, registry, schema, MEMORY_RULE)
    doc = make_pair(1)
    outcome = engine.process_insertions(list(doc))
    run = outcome.passes[0]
    assert run.uris_of({end}) == {URIRef("doc1.rdf#host")}
    assert URIRef("doc1.rdf#host") in run.all_uris()
    assert run.by_rule[end] == {URIRef("doc1.rdf#host")}


def test_publish_outcome_helpers(db, registry, engine, schema):
    end = register_rule(engine, registry, schema, MEMORY_RULE)
    doc = make_pair(1)
    outcome = engine.process_insertions(list(doc))
    assert outcome.has_notifications
    assert outcome.matched_uris() == {URIRef("doc1.rdf#host")}
    assert "matched=1" in outcome.summary()


def test_phase_timings_recorded(db, registry, engine, schema):
    register_rule(engine, registry, schema, MEMORY_RULE)
    outcome = engine.process_insertions(list(make_pair(1)))
    run = outcome.passes[0]
    assert run.triggering_seconds > 0
    assert run.join_seconds > 0  # join iterations ran
