"""All evaluation modes must produce identical matches.

The engine has three knobs — rule groups on/off (paper ablation),
member-scan vs delta-probe join evaluation, and atomic-rule
deduplication on/off.  They trade performance; results must be equal.
"""

import pytest

from repro.filter.engine import FilterEngine
from repro.rdf.diff import deletion_diff, diff_documents
from repro.rdf.model import Document, URIRef
from repro.rules.decompose import decompose_rule
from repro.rules.normalize import normalize_rule
from repro.rules.parser import parse_rule
from repro.rules.registry import RuleRegistry
from repro.storage.engine import Database
from repro.storage.schema import create_all

RULES = [
    "search CycleProvider c register c where c.serverHost contains 'passau'",
    "search CycleProvider c register c where c.serverInformation.memory > 64",
    "search CycleProvider c register c where c.serverInformation.cpu > 500",
    "search CycleProvider c register c "
    "where c.serverHost contains 'de' "
    "and c.serverInformation.memory > 64 and c.serverInformation.cpu > 500",
    "search ServerInformation s register s where s.memory >= 100",
    "search CycleProvider c register c",
]


def make_documents():
    documents = []
    specs = [
        (0, "a.uni-passau.de", 92, 600),
        (1, "b.tum.de", 128, 400),
        (2, "c.uni-passau.de", 32, 700),
        (3, "d.fu.de", 100, 501),
    ]
    for index, host, memory, cpu in specs:
        doc = Document(f"doc{index}.rdf")
        provider = doc.new_resource("host", "CycleProvider")
        provider.add("serverHost", host)
        provider.add("serverInformation", URIRef(f"doc{index}.rdf#info"))
        info = doc.new_resource("info", "ServerInformation")
        info.add("memory", memory)
        info.add("cpu", cpu)
        documents.append(doc)
    return documents


def run_scenario(schema, use_rule_groups, join_evaluation, deduplicate):
    db = Database()
    create_all(db)
    registry = RuleRegistry(db, deduplicate=deduplicate)
    engine = FilterEngine(db, registry, use_rule_groups, join_evaluation)
    ends = {}
    for index, text in enumerate(RULES):
        normalized = normalize_rule(parse_rule(text), schema)[0]
        registration = registry.register_subscription(
            f"lmr{index}", text, decompose_rule(normalized, schema)
        )
        engine.initialize_rules(registration.created)
        ends[text] = registration.end_rule

    documents = make_documents()
    outcomes = []
    for doc in documents:
        outcomes.append(engine.process_diff(diff_documents(None, doc)))

    # Exercise the update path too: flip memory of doc0, delete doc2.
    updated = documents[0].copy()
    updated.get("doc0.rdf#info").set("memory", 10)
    outcomes.append(engine.process_diff(diff_documents(documents[0], updated)))
    outcomes.append(engine.process_diff(deletion_diff(documents[2])))

    final = {
        text: frozenset(engine.current_matches(end))
        for text, end in ends.items()
    }
    db.close()
    return final


@pytest.mark.parametrize("use_rule_groups", [True, False])
@pytest.mark.parametrize("join_evaluation", ["scan", "probe"])
@pytest.mark.parametrize("deduplicate", [True, False])
def test_modes_agree(schema, use_rule_groups, join_evaluation, deduplicate):
    baseline = run_scenario(schema, True, "scan", True)
    variant = run_scenario(schema, use_rule_groups, join_evaluation, deduplicate)
    assert variant == baseline


def test_baseline_is_correct(schema):
    """Final state after doc0's memory drops to 10 and doc2 is deleted."""
    final = run_scenario(schema, True, "scan", True)
    host = lambda i: URIRef(f"doc{i}.rdf#host")  # noqa: E731
    info = lambda i: URIRef(f"doc{i}.rdf#info")  # noqa: E731
    assert final[RULES[0]] == frozenset({host(0)})
    assert final[RULES[1]] == frozenset({host(1), host(3)})
    assert final[RULES[2]] == frozenset({host(0), host(3)})
    assert final[RULES[3]] == frozenset({host(3)})
    assert final[RULES[4]] == frozenset({info(1), info(3)})
    assert final[RULES[5]] == frozenset({host(0), host(1), host(3)})
