"""Tests for resource class changes on re-registration.

RDF does not forbid re-registering a resource under a different class;
the filter must treat it as unmatching every old-class rule and
matching the new-class rules — which falls out of the three-pass
algorithm because old and new atoms carry different ``class`` columns.
"""

import pytest

from repro.filter.engine import FilterEngine
from repro.rdf.diff import diff_documents
from repro.rdf.model import Document, URIRef
from repro.rdf.schema import PropertyDef, PropertyKind, Schema
from repro.rules.decompose import decompose_rule
from repro.rules.normalize import normalize_rule
from repro.rules.parser import parse_rule
from repro.rules.registry import RuleRegistry
from repro.storage.engine import Database
from repro.storage.schema import create_all


@pytest.fixture()
def world():
    schema = Schema()
    schema.define_class(
        "Provider", [PropertyDef("serverHost", PropertyKind.STRING)]
    )
    schema.define_class("CycleProvider", [], superclass="Provider")
    schema.define_class("DataProvider", [], superclass="Provider")
    schema.freeze_check()
    db = Database()
    create_all(db)
    registry = RuleRegistry(db)
    engine = FilterEngine(db, registry)

    def register(text, subscriber="lmr"):
        normalized = normalize_rule(parse_rule(text), schema)[0]
        registration = registry.register_subscription(
            subscriber, text, decompose_rule(normalized, schema)
        )
        engine.initialize_rules(registration.created)
        return registration.end_rule

    yield schema, engine, register
    db.close()


def doc_with_class(class_name):
    doc = Document("d.rdf")
    resource = doc.new_resource("x", class_name)
    resource.add("serverHost", "h.de")
    return doc


def test_class_change_switches_class_rules(world):
    __, engine, register = world
    cycle_end = register("search CycleProvider c register c")
    data_end = register("search DataProvider d register d", "lmr2")

    old = doc_with_class("CycleProvider")
    engine.process_diff(diff_documents(None, old))
    new = doc_with_class("DataProvider")
    outcome = engine.process_diff(diff_documents(old, new))
    assert outcome.matched.get(data_end) == {URIRef("d.rdf#x")}
    assert outcome.unmatched.get(cycle_end) == {URIRef("d.rdf#x")}


def test_class_change_within_superclass_extension(world):
    """A superclass rule keeps matching across a subclass change."""
    __, engine, register = world
    provider_end = register(
        "search Provider p register p where p.serverHost contains 'de'"
    )
    old = doc_with_class("CycleProvider")
    engine.process_diff(diff_documents(None, old))
    new = doc_with_class("DataProvider")
    outcome = engine.process_diff(diff_documents(old, new))
    # Still matched (re-published as an update), never unmatched.
    assert outcome.matched.get(provider_end) == {URIRef("d.rdf#x")}
    assert provider_end not in outcome.unmatched
    assert engine.current_matches(provider_end) == ["d.rdf#x"]


def test_class_change_out_of_extension(world):
    __, engine, register = world
    cycle_end = register("search CycleProvider c register c")
    old = doc_with_class("CycleProvider")
    engine.process_diff(diff_documents(None, old))
    new = doc_with_class("Provider")
    outcome = engine.process_diff(diff_documents(old, new))
    assert outcome.unmatched.get(cycle_end) == {URIRef("d.rdf#x")}
    assert engine.current_matches(cycle_end) == []
