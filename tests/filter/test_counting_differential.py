"""Differential fuzzing: the counting matcher against the sql backend.

``triggering="sql"`` with the paper's contains scan and ``parallelism=1``
is the correctness oracle; the in-memory counting matcher
(``triggering="counting"``) must produce a *byte-identical* digest of
every publish outcome and of the final materialized match sets across
the same seeded workloads the trigram differential uses — registrations,
a mid-stream subscription (counting index refreshed off the mutation
log), updates, deletions and an unsubscribe (index entries dropped).

The workload mixes indexable and short ``contains`` needles, range
conjuncts over ``memory``/``cpu`` (the sorted-bound arrays plus the
``sqlite_cast_real`` replica) and trigram false-positive hosts, so the
counting index's three predicate families and its verify step are all
on the hook.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.filter.engine import FilterEngine
from repro.rdf.diff import deletion_diff, diff_documents
from repro.rdf.schema import objectglobe_schema
from repro.rules.decompose import decompose_rule
from repro.rules.normalize import normalize_rule
from repro.rules.parser import parse_rule
from repro.rules.registry import RuleRegistry
from repro.storage.engine import Database
from repro.storage.schema import create_all
from tests.filter.test_text_differential import (
    SEEDS,
    _HOST_POOL,
    _outcome_key,
    _random_document,
    _random_rules,
)


def run_scenario(
    seed: int, triggering: str, contains_index: str, parallelism: int
) -> bytes:
    """One seeded publish/subscribe workload; returns a canonical digest."""
    rng = random.Random(seed)
    schema = objectglobe_schema()
    db = Database()
    create_all(db)
    registry = RuleRegistry(db)
    engine = FilterEngine(
        db,
        registry,
        contains_index=contains_index,
        parallelism=parallelism,
        triggering=triggering,
    )

    conjunct_texts: dict[str, list[str]] = {}

    def subscribe(index: int, text: str) -> list[int]:
        ends = []
        conjunct_texts[text] = []
        for j, normalized in enumerate(normalize_rule(parse_rule(text), schema)):
            sub_text = text if j == 0 else f"{text} [conjunct {j}]"
            registration = registry.register_subscription(
                f"lmr{index}", sub_text, decompose_rule(normalized, schema)
            )
            engine.initialize_rules(registration.created)
            ends.append(registration.end_rule)
            conjunct_texts[text].append(sub_text)
        return ends

    try:
        rules = _random_rules(rng, 7)
        late_rule = rules.pop()
        ends = {text: subscribe(i, text) for i, text in enumerate(rules)}

        documents = [_random_document(rng, i) for i in range(12)]
        digests = []
        for doc in documents[:8]:
            digests.append(
                _outcome_key(engine.process_diff(diff_documents(None, doc)))
            )

        # Mid-stream subscription: the counting index must pick the new
        # rule up incrementally (mutation log) before the next publish.
        ends[late_rule] = subscribe(99, late_rule)
        for doc in documents[8:]:
            digests.append(
                _outcome_key(engine.process_diff(diff_documents(None, doc)))
            )

        for index in rng.sample(range(12), 4):
            old = documents[index]
            new = old.copy()
            host = new.get(f"doc{index}.rdf#host")
            host.set("serverHost", rng.choice(_HOST_POOL))
            digests.append(
                _outcome_key(engine.process_diff(diff_documents(old, new)))
            )
            documents[index] = new

        # Unsubscribe (drops the rule's counting-index entries), then
        # one more publish and a deletion.
        for sub_text in conjunct_texts[rules[0]]:
            registry.unsubscribe("lmr0", sub_text)
        del ends[rules[0]]
        extra = _random_document(rng, 12)
        digests.append(
            _outcome_key(engine.process_diff(diff_documents(None, extra)))
        )
        digests.append(
            _outcome_key(engine.process_diff(deletion_diff(documents[3])))
        )

        final = {
            text: sorted(
                str(u)
                for end in end_rules
                for u in engine.current_matches(end)
            )
            for text, end_rules in ends.items()
        }
        return json.dumps(
            {"digests": digests, "final": final}, sort_keys=True
        ).encode()
    finally:
        engine.close()
        db.close()


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "contains_index,parallelism",
    [
        ("scan", 1),
        ("scan", 4),
        ("trigram", 1),
        ("trigram", 4),
    ],
)
def test_counting_matches_sql_oracle(seed, contains_index, parallelism):
    baseline = run_scenario(
        seed, triggering="sql", contains_index="scan", parallelism=1
    )
    variant = run_scenario(seed, "counting", contains_index, parallelism)
    assert variant == baseline
