"""Property tests pinning the counting matcher to its SQL ground truth.

Two layers:

- :func:`repro.filter.counting.sqlite_cast_real` must agree with the
  engine's actual ``CAST(? AS REAL)`` on arbitrary text — the range
  index orders bounds by that conversion, so any divergence (junk
  prefixes, lone exponents, hex spellings, whitespace) would silently
  skew range verdicts;
- :meth:`CountingMatcher.match` over a random rule base and a random
  atom batch must return exactly the ``(uri, rule)`` pairs the paper's
  relational triggering joins (:func:`select_triggering_hits`) produce
  for the same ``filter_input`` — the per-batch analogue of the
  end-to-end differential suite.
"""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.filter.counting import CountingMatcher, sqlite_cast_real
from repro.filter.matcher import select_triggering_hits
from repro.rdf.namespaces import RDF_SUBJECT
from repro.rdf.schema import objectglobe_schema
from repro.rules.decompose import decompose_rule
from repro.rules.normalize import normalize_rule
from repro.rules.parser import parse_rule
from repro.rules.registry import RuleRegistry
from repro.storage.engine import Database
from repro.storage.schema import create_all
from repro.storage.tables import FilterInputTable
from tests.conftest import prop_settings

SCHEMA = objectglobe_schema()

# Dense in the shapes sqlite3AtoF treats specially: signs, lone dots,
# partial exponents, hex prefixes, embedded whitespace — plus arbitrary
# printable junk.
_numericish = st.text(
    alphabet="0123456789+-.eExX \t\nabz", min_size=0, max_size=12
)
_any_text = st.text(max_size=12)


@given(st.one_of(_numericish, _any_text))
@prop_settings(max_examples=300)
def test_cast_real_matches_sqlite(text):
    db = Database()
    try:
        assert sqlite_cast_real(text) == db.scalar(
            "SELECT CAST(? AS REAL)", (text,)
        )
    finally:
        db.close()


# ----------------------------------------------------------------------
# match_rows vs the relational triggering joins
# ----------------------------------------------------------------------
_values = st.sampled_from(
    ["0", "3", "5", "5.0", "07", "abc", "x.uni-passau.de", "tum.de", ""]
)
_needles = st.sampled_from(["pas", "de", "x.", "uni-passau", "zz"])
_ops = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])
_props = st.sampled_from(["serverHost", "synthValue"])


@st.composite
def _rule_texts(draw):
    shape = draw(st.integers(min_value=0, max_value=2))
    if shape == 0:
        return "search CycleProvider c register c"
    if shape == 1:
        needle = draw(_needles)
        return (
            "search CycleProvider c register c "
            f"where c.serverHost contains '{needle}'"
        )
    op = draw(_ops)
    value = draw(st.sampled_from(["0", "3", "5"]))
    return (
        "search CycleProvider c register c "
        f"where c.synthValue {op} {value}"
    )


@st.composite
def _atoms(draw):
    uri = f"d{draw(st.integers(min_value=0, max_value=2))}.rdf#h"
    kind = draw(st.integers(min_value=0, max_value=2))
    if kind == 0:
        return (uri, "CycleProvider", RDF_SUBJECT, uri)
    return (uri, "CycleProvider", draw(_props), draw(_values))


@given(
    rules=st.lists(_rule_texts(), min_size=0, max_size=6),
    atoms=st.lists(_atoms(), min_size=0, max_size=8),
)
@prop_settings(max_examples=60)
def test_counting_matches_sql_joins(rules, atoms):
    db = Database()
    create_all(db)
    registry = RuleRegistry(db)
    try:
        for index, text in enumerate(dict.fromkeys(rules)):
            (normalized,) = normalize_rule(parse_rule(text), SCHEMA)
            registry.register_subscription(
                f"lmr{index}", text, decompose_rule(normalized, SCHEMA)
            )
        matcher = CountingMatcher()
        matcher.refresh(db, registry.mutation_version, registry.mutation_log)
        FilterInputTable(db).load(atoms)
        oracle = {
            (uri, rule) for uri, rule in select_triggering_hits(db)
        }
        assert set(matcher.match(atoms)) == oracle
    finally:
        db.close()
