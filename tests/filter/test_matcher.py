"""Unit tests for triggering-rule matching, one operator at a time."""

import pytest

from repro.filter.decompose import resources_atoms
from repro.filter.matcher import initialize_triggering_rule, match_triggering_rules
from repro.rdf.model import Document
from repro.storage.tables import FilterDataTable, FilterInputTable, ResultObjectsTable

from tests.conftest import register_rule


def server(memory=92, cpu=600, local="info", doc_uri="d.rdf"):
    doc = Document(doc_uri)
    resource = doc.new_resource(local, "ServerInformation")
    resource.add("memory", memory)
    resource.add("cpu", cpu)
    return resource


def provider(host="a.uni-passau.de", port=80, local="host", doc_uri="d.rdf"):
    doc = Document(doc_uri)
    resource = doc.new_resource(local, "CycleProvider")
    resource.add("serverHost", host)
    resource.add("serverPort", port)
    return resource


def run_matcher(db, resources):
    atoms = resources_atoms(resources)
    filter_input = FilterInputTable(db)
    filter_input.clear()
    filter_input.load(atoms)
    ResultObjectsTable(db).clear()
    match_triggering_rules(db)
    return {uri for uri, __ in ResultObjectsTable(db).rows_at(0)}


@pytest.mark.parametrize(
    "operator,threshold,matching,failing",
    [
        ("=", 92, 92, 91),
        ("!=", 92, 91, 92),
        ("<", 92, 91, 92),
        ("<=", 92, 92, 93),
        (">", 92, 93, 92),
        (">=", 92, 92, 91),
    ],
)
def test_comparison_operators(
    db, registry, engine, schema, operator, threshold, matching, failing
):
    register_rule(
        engine,
        registry,
        schema,
        f"search ServerInformation s register s where s.memory {operator} "
        f"{threshold}",
    )
    hit = run_matcher(db, [server(memory=matching, doc_uri="hit.rdf")])
    assert hit == {"hit.rdf#info"}
    miss = run_matcher(db, [server(memory=failing, doc_uri="miss.rdf")])
    assert miss == set()


def test_contains_operator(db, registry, engine, schema):
    register_rule(
        engine,
        registry,
        schema,
        "search CycleProvider c register c "
        "where c.serverHost contains 'uni-passau'",
    )
    assert run_matcher(db, [provider(host="x.uni-passau.de")])
    assert not run_matcher(db, [provider(host="x.tum.de", doc_uri="e.rdf")])


def test_contains_is_substring_not_pattern(db, registry, engine, schema):
    # % and _ must be literal characters, not LIKE wildcards.
    register_rule(
        engine,
        registry,
        schema,
        "search CycleProvider c register c where c.serverHost contains 'a%b'",
    )
    assert not run_matcher(db, [provider(host="a-x-b")])
    assert run_matcher(db, [provider(host="xa%by", doc_uri="e.rdf")])


def test_class_only_rule_matches_every_instance(db, registry, engine, schema):
    register_rule(
        engine, registry, schema, "search ServerInformation s register s"
    )
    assert run_matcher(db, [server()])
    assert not run_matcher(db, [provider(doc_uri="e.rdf")])


def test_class_rule_matches_subclasses(db, rich_schema):
    from repro.filter.engine import FilterEngine
    from repro.rules.registry import RuleRegistry

    registry = RuleRegistry(db)
    engine = FilterEngine(db, registry)
    register_rule(engine, registry, rich_schema, "search Provider p register p")
    doc = Document("d.rdf")
    cycle = doc.new_resource("c", "CycleProvider")
    assert run_matcher(db, [cycle]) == {"d.rdf#c"}


def test_oid_rule_matches_exact_uri(db, registry, engine, schema):
    register_rule(
        engine,
        registry,
        schema,
        "search ServerInformation s register s where s = 'hit.rdf#info'",
    )
    assert run_matcher(db, [server(doc_uri="hit.rdf")]) == {"hit.rdf#info"}
    assert not run_matcher(db, [server(doc_uri="miss.rdf")])


def test_numeric_equality_matches_integral_float(db, registry, engine, schema):
    # Canonical rendering: 92.0 is stored as "92".
    register_rule(
        engine,
        registry,
        schema,
        "search ServerInformation s register s where s.memory = 92.0",
    )
    assert run_matcher(db, [server(memory=92)])


def test_one_matching_atom_suffices(db, registry, engine, rich_schema):
    """ANY semantics: a single matching value of a set-valued property."""
    from repro.filter.engine import FilterEngine
    from repro.rules.registry import RuleRegistry

    registry = RuleRegistry(db)
    engine = FilterEngine(db, registry)
    register_rule(
        engine,
        registry,
        rich_schema,
        "search CycleProvider c register c where c.tags? = 'fast'",
    )
    doc = Document("d.rdf")
    resource = doc.new_resource("c", "CycleProvider")
    resource.add("tags", "slow")
    resource.add("tags", "fast")
    assert run_matcher(db, [resource]) == {"d.rdf#c"}


def test_duplicate_hits_deduplicated(db, registry, engine, rich_schema):
    """Two matching atoms of one resource yield one result row."""
    from repro.filter.engine import FilterEngine
    from repro.rules.registry import RuleRegistry

    registry = RuleRegistry(db)
    engine = FilterEngine(db, registry)
    register_rule(
        engine,
        registry,
        rich_schema,
        "search CycleProvider c register c where c.tags? contains 'a'",
    )
    doc = Document("d.rdf")
    resource = doc.new_resource("c", "CycleProvider")
    resource.add("tags", "aa")
    resource.add("tags", "ab")
    atoms = resources_atoms([resource])
    filter_input = FilterInputTable(db)
    filter_input.clear()
    filter_input.load(atoms)
    ResultObjectsTable(db).clear()
    inserted = match_triggering_rules(db)
    assert inserted == 1


def test_initialize_triggering_rule_scans_existing_data(
    db, registry, engine, schema
):
    # Register data first, then the rule; initialization must find it.
    resources = [server(memory=128, doc_uri="old.rdf")]
    FilterDataTable(db).insert_atoms(resources_atoms(resources))
    end_rule = register_rule(
        engine,
        registry,
        schema,
        "search ServerInformation s register s where s.memory > 64",
    )
    assert engine.current_matches(end_rule) == ["old.rdf#info"]


def test_initialize_respects_rule_id_filter(db, registry, engine, schema):
    FilterDataTable(db).insert_atoms(
        resources_atoms([server(memory=128, doc_uri="old.rdf")])
    )
    low = register_rule(
        engine,
        registry,
        schema,
        "search ServerInformation s register s where s.memory > 64",
    )
    high = register_rule(
        engine,
        registry,
        schema,
        "search ServerInformation s register s where s.memory > 1000",
    )
    assert engine.current_matches(low) == ["old.rdf#info"]
    assert engine.current_matches(high) == []
