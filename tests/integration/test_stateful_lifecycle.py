"""Stateful property test: the full MDP/LMR lifecycle.

A hypothesis state machine drives one provider and one LMR through
arbitrary interleavings of document registrations, updates, deletions,
*and* subscription changes — the axis the other property tests keep
fixed.  Subscribing must fill the cache from existing data; every
mutation must keep the cache equal to the oracle; unsubscribing must
evict exactly the no-longer-covered resources and garbage-collect the
rule catalogue down to what remains referenced.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
import hypothesis.strategies as st

from repro.mdv.provider import MetadataProvider
from repro.mdv.repository import LocalMetadataRepository
from repro.query.evaluator import evaluate_query
from repro.rdf.model import Document, URIRef
from repro.rdf.schema import objectglobe_schema
from repro.rules.ast import Query
from repro.rules.parser import parse_rule

SCHEMA = objectglobe_schema()

RULE_POOL = [
    "search CycleProvider c register c "
    "where c.serverHost contains 'passau'",
    "search CycleProvider c register c "
    "where c.serverInformation.memory > 64",
    "search ServerInformation s register s where s.cpu >= 600",
    "search CycleProvider c register c where c.synthValue = 2",
    "search CycleProvider c register c "
    "where c.serverHost contains 'de' and c.synthValue >= 1",
]

DOC_SLOTS = list(range(4))
HOSTS = ["a.uni-passau.de", "b.tum.de", "c.org"]
doc_slots = st.sampled_from(DOC_SLOTS)
hosts = st.sampled_from(HOSTS)
small_ints = st.integers(min_value=0, max_value=4)
memories = st.sampled_from([16, 92, 256])
cpus = st.sampled_from([400, 600, 900])
rules = st.sampled_from(RULE_POOL)


def make_doc(index, host, synth, memory, cpu):
    doc = Document(f"doc{index}.rdf")
    provider = doc.new_resource("host", "CycleProvider")
    provider.add("serverHost", host)
    provider.add("synthValue", synth)
    provider.add("serverInformation", URIRef(f"doc{index}.rdf#info"))
    info = doc.new_resource("info", "ServerInformation")
    info.add("memory", memory)
    info.add("cpu", cpu)
    return doc


class LifecycleMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.mdp = MetadataProvider(SCHEMA)
        self.lmr = LocalMetadataRepository("lmr", self.mdp)
        self.documents: dict[str, Document] = {}
        self.active_rules: set[str] = set()

    # -- operations -----------------------------------------------------
    @rule(index=doc_slots, host=hosts, synth=small_ints,
          memory=memories, cpu=cpus)
    def register(self, index, host, synth, memory, cpu):
        doc = make_doc(index, host, synth, memory, cpu)
        self.mdp.register_document(doc)
        self.documents[doc.uri] = doc

    @rule(index=doc_slots)
    def delete(self, index):
        uri = f"doc{index}.rdf"
        if uri in self.documents:
            self.mdp.delete_document(uri)
            del self.documents[uri]

    @rule(text=rules)
    def subscribe(self, text):
        if text not in self.active_rules:
            self.lmr.subscribe(text)
            self.active_rules.add(text)

    @rule(text=rules)
    def unsubscribe(self, text):
        if text in self.active_rules:
            self.lmr.unsubscribe(text)
            self.active_rules.discard(text)

    # -- invariants -------------------------------------------------------
    @invariant()
    def cache_matches_oracle(self):
        if not hasattr(self, "lmr"):
            return
        pool = {
            r.uri: r for doc in self.documents.values() for r in doc
        }
        expected: set[URIRef] = set()
        for text in self.active_rules:
            parsed = parse_rule(text)
            query = Query(parsed.extensions, parsed.register, parsed.where)
            expected |= {
                r.uri for r in evaluate_query(query, pool, SCHEMA)
            }
        matched = {
            uri
            for uri in self.lmr.cache.uris()
            if self.lmr.cache.get(uri).matched_subs
        }
        assert matched == expected

    @invariant()
    def rule_catalogue_collected(self):
        if not hasattr(self, "mdp"):
            return
        if not self.active_rules:
            assert self.mdp.registry.atom_count() == 0

    @invariant()
    def cached_content_is_current(self):
        if not hasattr(self, "lmr"):
            return
        for uri in self.lmr.cache.uris():
            entry = self.lmr.cache.get(uri)
            if entry.matched_subs:
                assert entry.resource == self.mdp.resource(uri)

    def teardown(self):
        if hasattr(self, "mdp"):
            self.mdp.db.close()


from tests.conftest import SOAK_MULTIPLIER

LifecycleMachine.TestCase.settings = settings(
    max_examples=25 * SOAK_MULTIPLIER,
    stateful_step_count=20,
    deadline=None,
)
TestLifecycle = LifecycleMachine.TestCase
