"""Crash-recovery differential oracle (tier-1 matrix).

Every enumerated crash point must leave the recovered, resumed run
byte-identical to the never-crashed baseline: same applied notification
stream, same LMR cache, clean invariant audit.  The full sweep
(``--stride 5``) runs in CI; here a coarser statement stride keeps the
matrix inside tier-1 budgets while still covering every commit boundary.
"""

import pytest

from repro.workload.crashes import run_crash_scenario, run_crash_sweep

MATRIX = [
    pytest.param(seed, contains_index, parallelism, triggering,
                 id=f"seed{seed}-{contains_index}-p{parallelism}"
                    f"-{triggering}")
    for seed, contains_index, parallelism, triggering in [
        (1, "scan", 1, "sql"),
        (7, "trigram", 1, "sql"),
        (42, "scan", 4, "sql"),
        # The counting matcher rebuilds its in-memory index during
        # recovery (the mutation log dies with the process) — the
        # resumed stream must still be byte-identical.
        (7, "scan", 1, "counting"),
    ]
]


@pytest.mark.parametrize(
    "seed,contains_index,parallelism,triggering", MATRIX
)
def test_crash_sweep_matches_baseline(
    seed, contains_index, parallelism, triggering
):
    report = run_crash_sweep(
        seed,
        contains_index=contains_index,
        parallelism=parallelism,
        triggering=triggering,
        statement_stride=45,
        documents=4,
    )
    assert report.points_tested > 0
    assert report.points_fired > 0
    assert report.ok, report.failures


def test_baseline_run_counts_boundaries():
    result = run_crash_scenario(1, None, documents=4)
    assert not result.crashed
    assert result.statements > result.commits > 0
    assert result.audit_findings == []
    assert result.stream  # the workload produced notifications


def test_single_crash_point_recovers():
    baseline = run_crash_scenario(1, None, documents=4)
    from repro.storage.durability import CrashPoint

    crashed = run_crash_scenario(
        1, CrashPoint("commit", 3), documents=4
    )
    assert crashed.crashed
    assert crashed.recoveries >= 1
    assert crashed.stream == baseline.stream
    assert crashed.cache == baseline.cache
    assert crashed.audit_findings == []
