"""Seeded stress test: a full backbone under a long operation stream.

Two MDPs replicate over the simulated network; three LMRs (attached to
different providers) hold overlapping rule sets.  A seeded random
stream of registrations, updates, deletions and batch flushes runs for
a few hundred operations; afterwards every LMR's matched cache must
equal the query oracle over the surviving global state, every provider
must agree on the document set, and the caches must answer queries
identically regardless of which backbone node fed them.
"""

import random

import pytest

from repro.mdv.backbone import Backbone
from repro.mdv.batching import BatchingRegistrar
from repro.mdv.repository import LocalMetadataRepository
from repro.net.bus import NetworkBus
from repro.query.evaluator import evaluate_query
from repro.rdf.model import Document, URIRef
from repro.rdf.schema import objectglobe_schema
from repro.rules.ast import Query
from repro.rules.parser import parse_rule

SCHEMA = objectglobe_schema()
DOC_SLOTS = 12
OPERATIONS = 250

RULESETS = {
    "lmr-passau": [
        "search CycleProvider c register c "
        "where c.serverHost contains 'passau'",
        "search CycleProvider c register c "
        "where c.serverInformation.memory > 64 "
        "and c.serverInformation.cpu > 500",
    ],
    "lmr-munich": [
        "search CycleProvider c register c "
        "where c.serverInformation.memory > 128",
        "search ServerInformation s register s where s.cpu >= 600",
    ],
    "lmr-mixed": [
        "search CycleProvider c register c "
        "where c.synthValue >= 3 or c.serverHost contains 'tum'",
    ],
}

HOSTS = ["a.uni-passau.de", "b.tum.de", "c.fu.de", "d.uni-passau.de"]


def make_doc(index, rng):
    doc = Document(f"doc{index}.rdf")
    provider = doc.new_resource("host", "CycleProvider")
    provider.add("serverHost", rng.choice(HOSTS))
    provider.add("synthValue", rng.randint(0, 6))
    target = rng.randint(0, DOC_SLOTS)
    provider.add("serverInformation", URIRef(f"doc{target}.rdf#info"))
    info = doc.new_resource("info", "ServerInformation")
    info.add("memory", rng.choice([16, 32, 92, 256, 512]))
    info.add("cpu", rng.choice([200, 400, 600, 900]))
    return doc


@pytest.mark.parametrize("seed", [7, 42, 1234])
def test_backbone_stress(seed):
    rng = random.Random(seed)
    bus = NetworkBus()
    backbone = Backbone(SCHEMA, bus=bus)
    mdp_eu = backbone.add_provider("mdp-eu")
    mdp_us = backbone.add_provider("mdp-us")
    lmrs = {
        "lmr-passau": LocalMetadataRepository("lmr-passau", mdp_eu, bus=bus),
        "lmr-munich": LocalMetadataRepository("lmr-munich", mdp_eu, bus=bus),
        "lmr-mixed": LocalMetadataRepository("lmr-mixed", mdp_us, bus=bus),
    }
    for name, rules in RULESETS.items():
        for rule in rules:
            lmrs[name].subscribe(rule)

    registrar = BatchingRegistrar(mdp_us, max_batch=4, max_delay=5)
    current: dict[str, Document] = {}

    def apply_registration(doc: Document) -> None:
        current[doc.uri] = doc

    for __ in range(OPERATIONS):
        action = rng.choices(
            ["register", "batch", "delete", "tick"],
            weights=[5, 3, 2, 2],
        )[0]
        index = rng.randrange(DOC_SLOTS)
        if action == "register":
            doc = make_doc(index, rng)
            if doc.uri in registrar.pending_uris():
                # An older version is queued: registering directly would
                # be overwritten by the later flush.  Route through the
                # registrar so the newest version wins, as it would in a
                # real deployment funnelling writes through one queue.
                registrar.submit(doc.copy())
            else:
                backbone.register_document(
                    doc, at=rng.choice(["mdp-eu", "mdp-us"])
                )
            apply_registration(doc)
        elif action == "batch":
            doc = make_doc(index, rng)
            registrar.submit(doc.copy())
            # Track optimistically; the flush below settles it.
            apply_registration(doc)
        elif action == "delete":
            uri = f"doc{index}.rdf"
            if uri in current and registrar.pending == 0:
                backbone.delete_document(
                    uri, at=rng.choice(["mdp-eu", "mdp-us"])
                )
                del current[uri]
        else:
            registrar.tick()
    registrar.flush()

    # Backbone agreement.
    assert backbone.is_synchronized()
    assert mdp_eu.document_count() == len(current)

    # Every LMR's matched set equals the oracle over surviving state.
    pool = {r.uri: r for doc in current.values() for r in doc}
    for name, rules in RULESETS.items():
        lmr = lmrs[name]
        expected: set[URIRef] = set()
        for text in rules:
            rule = parse_rule(text)
            query = Query(rule.extensions, rule.register, rule.where)
            expected |= {
                r.uri for r in evaluate_query(query, pool, SCHEMA)
            }
        matched = {
            uri
            for uri in lmr.cache.uris()
            if lmr.cache.get(uri).matched_subs
        }
        assert matched == expected, (seed, name)
        for uri in matched:
            assert lmr.cache.resource(uri) == pool[uri], (seed, name, uri)

    # The network actually carried the load.
    assert bus.total_messages > OPERATIONS / 2
