"""Provider instances must be fully isolated (no hidden global state).

Four independent MDP/LMR stacks run the same scenario concurrently, one
per thread; every stack must produce exactly the single-threaded result.
(Each thread creates its own SQLite connection — sharing one provider
across threads is not supported, matching SQLite's threading model.)
"""

import threading

from repro.mdv.provider import MetadataProvider
from repro.mdv.repository import LocalMetadataRepository
from repro.rdf.model import Document, URIRef
from repro.rdf.schema import objectglobe_schema


def scenario(thread_index: int, results: dict, errors: list) -> None:
    try:
        schema = objectglobe_schema()
        mdp = MetadataProvider(schema, name=f"mdp-{thread_index}")
        lmr = LocalMetadataRepository(f"lmr-{thread_index}", mdp)
        lmr.subscribe(
            "search CycleProvider c register c "
            "where c.serverInformation.memory > 64"
        )
        for doc_index in range(6):
            doc = Document(f"doc{doc_index}.rdf")
            provider = doc.new_resource("host", "CycleProvider")
            provider.add("serverHost", f"h{thread_index}-{doc_index}.de")
            provider.add(
                "serverInformation", URIRef(f"doc{doc_index}.rdf#info")
            )
            info = doc.new_resource("info", "ServerInformation")
            # Vary matches per thread: memory depends on both indices.
            info.add("memory", 32 + 16 * ((doc_index + thread_index) % 4))
            info.add("cpu", 600)
            mdp.register_document(doc)
        results[thread_index] = sorted(
            str(r.uri) for r in lmr.query("search CycleProvider c")
        )
        mdp.db.close()
    except Exception as exc:  # noqa: BLE001 - report to the main thread
        errors.append((thread_index, exc))


def expected_for(thread_index: int) -> list:
    matches = []
    for doc_index in range(6):
        memory = 32 + 16 * ((doc_index + thread_index) % 4)
        if memory > 64:
            matches.append(f"doc{doc_index}.rdf#host")
    return sorted(matches)


def test_parallel_stacks_are_isolated():
    results: dict = {}
    errors: list = []
    threads = [
        threading.Thread(target=scenario, args=(index, results, errors))
        for index in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not errors, errors
    assert set(results) == {0, 1, 2, 3}
    for thread_index, matched in results.items():
        assert matched == expected_for(thread_index), thread_index
