"""Relative performance guards for the algorithmic claims.

Not wall-clock benchmarks (those live in ``benchmarks/``) — these check
*relative* behaviour with wide tolerances so a regression that destroys
the algorithm's complexity class fails the test suite on any machine:

- OID matching must stay (near-)independent of the rule base size — the
  core Figure 11 property, which an index regression would break;
- batch registration must amortize: total time for one batch of N must
  be far below N single-document registrations.
"""

import time

from repro.bench.harness import FilterBench
from repro.workload.scenarios import WorkloadSpec


def _batch_seconds(bench: FilterBench, batch_size: int, repeats: int = 3):
    best = float("inf")
    for __ in range(repeats):
        db, engine = bench.fresh_engine()
        documents = bench.spec.documents(batch_size)
        resources = [r for doc in documents for r in doc]
        started = time.perf_counter()
        engine.process_insertions(resources, collect="none")
        best = min(best, time.perf_counter() - started)
        db.close()
    return best


def test_oid_cost_independent_of_rule_base():
    small = FilterBench(WorkloadSpec("OID", 200))
    large = FilterBench(WorkloadSpec("OID", 4_000))
    try:
        cost_small = _batch_seconds(small, 50)
        cost_large = _batch_seconds(large, 50)
        # 20x the rules must cost well under 5x the time (it is ~1x when
        # the equality index is healthy; 5x absorbs machine noise).
        assert cost_large < cost_small * 5, (cost_small, cost_large)
    finally:
        small.close()
        large.close()


def test_batching_amortizes_fixed_costs():
    bench = FilterBench(WorkloadSpec("OID", 500))
    try:
        singles = 0.0
        db, engine = bench.fresh_engine()
        for index in range(20):
            documents = bench.spec.documents(1, start_index=index)
            resources = [r for doc in documents for r in doc]
            started = time.perf_counter()
            engine.process_insertions(resources, collect="none")
            singles += time.perf_counter() - started
        db.close()
        batched = _batch_seconds(bench, 20)
        # One batch of 20 must beat 20 batches of 1 comfortably.
        assert batched < singles * 0.8, (batched, singles)
    finally:
        bench.close()


def test_probe_mode_beats_scan_on_large_groups():
    scan = FilterBench(WorkloadSpec("PATH", 3_000), join_evaluation="scan")
    probe = FilterBench(WorkloadSpec("PATH", 3_000), join_evaluation="probe")
    try:
        cost_scan = _batch_seconds(scan, 2)
        cost_probe = _batch_seconds(probe, 2)
        assert cost_probe < cost_scan, (cost_probe, cost_scan)
    finally:
        scan.close()
        probe.close()


def test_many_small_documents_equal_one_large_document():
    """Paper §4: "From the filter's point of view, registering several
    small documents and registering one large document is the same."

    One document holding B provider/info pairs must produce the same
    matches as B Figure-1 documents, at comparable filter cost.
    """
    from repro.rdf.model import Document, URIRef

    batch = 40
    small_bench = FilterBench(WorkloadSpec("PATH", 200))
    try:
        # Many small documents (best of 3, as in _batch_seconds: a
        # single timing on a loaded machine can eat a 3x scheduler
        # hiccup and flip the relative assertion below).
        small_seconds = float("inf")
        for __ in range(3):
            db_small, engine_small = small_bench.fresh_engine()
            documents = small_bench.spec.documents(batch)
            resources = [r for doc in documents for r in doc]
            started = time.perf_counter()
            engine_small.process_insertions(resources, collect="none")
            small_seconds = min(
                small_seconds, time.perf_counter() - started
            )
            small_hits = engine_small.result_count()
            db_small.close()

        # One large document with the same resources.
        mega = Document("mega.rdf")
        for index in range(batch):
            host = mega.new_resource(f"host{index}", "CycleProvider")
            host.add("serverHost", f"host{index}.uni-passau.de")
            host.add("synthValue", 0)
            host.add("serverInformation", URIRef(f"mega.rdf#info{index}"))
            info = mega.new_resource(f"info{index}", "ServerInformation")
            info.add("memory", index)
            info.add("cpu", 600)
        large_seconds = float("inf")
        for __ in range(3):
            db_large, engine_large = small_bench.fresh_engine()
            started = time.perf_counter()
            engine_large.process_insertions(list(mega), collect="none")
            large_seconds = min(
                large_seconds, time.perf_counter() - started
            )
            large_hits = engine_large.result_count()
            db_large.close()

        assert large_hits == small_hits
        # Same work, generous tolerance for timer noise.
        assert large_seconds < small_seconds * 3
        assert small_seconds < large_seconds * 3
    finally:
        small_bench.close()
