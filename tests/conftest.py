"""Shared fixtures for the MDV reproduction test suite.

Set ``MDV_SOAK=1`` to multiply every hypothesis example budget by 10 —
a deep-soak mode for release validation (the default budgets keep the
suite under ~20 seconds).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

#: Deep-soak mode: multiply every property-test example budget by 10.
SOAK_MULTIPLIER = 10 if os.environ.get("MDV_SOAK") else 1


def prop_settings(max_examples: int, **kwargs) -> settings:
    """Hypothesis settings honouring the MDV_SOAK multiplier."""
    return settings(
        max_examples=max_examples * SOAK_MULTIPLIER, deadline=None, **kwargs
    )

from repro.filter.engine import FilterEngine
from repro.obs import reset_default_registry
from repro.rdf.model import Document, URIRef
from repro.rdf.schema import (
    PropertyDef,
    PropertyKind,
    RefStrength,
    Schema,
    objectglobe_schema,
)
from repro.rules.decompose import decompose_rule
from repro.rules.normalize import normalize_rule
from repro.rules.parser import parse_rule
from repro.rules.registry import RuleRegistry
from repro.storage.engine import Database
from repro.storage.schema import create_all


@pytest.fixture(autouse=True)
def _fresh_metrics_registry():
    """Give every test a pristine default metrics registry.

    Databases, engines and providers built without an explicit registry
    record into the process-global default; without this reset, counter
    assertions would see deltas from whichever tests ran before.
    """
    reset_default_registry()
    yield


@pytest.fixture()
def schema() -> Schema:
    """The paper's example schema (CycleProvider / ServerInformation)."""
    return objectglobe_schema()


@pytest.fixture()
def rich_schema() -> Schema:
    """A wider schema exercising subclassing and multi-valued props."""
    schema = Schema()
    schema.define_class(
        "ServerInformation",
        [
            PropertyDef("memory", PropertyKind.INTEGER),
            PropertyDef("cpu", PropertyKind.INTEGER),
            PropertyDef("load", PropertyKind.FLOAT),
        ],
    )
    schema.define_class(
        "Provider",
        [
            PropertyDef("serverHost", PropertyKind.STRING),
            PropertyDef(
                "mirrors",
                PropertyKind.REFERENCE,
                target_class="Provider",
                multivalued=True,
            ),
        ],
    )
    schema.define_class(
        "CycleProvider",
        [
            PropertyDef("serverPort", PropertyKind.INTEGER),
            PropertyDef("synthValue", PropertyKind.INTEGER),
            PropertyDef(
                "serverInformation",
                PropertyKind.REFERENCE,
                target_class="ServerInformation",
                strength=RefStrength.STRONG,
            ),
            PropertyDef("tags", PropertyKind.STRING, multivalued=True),
        ],
        superclass="Provider",
    )
    schema.define_class(
        "DataProvider",
        [
            PropertyDef("collection", PropertyKind.STRING),
            PropertyDef(
                "host",
                PropertyKind.REFERENCE,
                target_class="CycleProvider",
            ),
        ],
        superclass="Provider",
    )
    schema.freeze_check()
    return schema


@pytest.fixture()
def db() -> Database:
    database = Database()
    create_all(database)
    yield database
    database.close()


@pytest.fixture()
def registry(db: Database) -> RuleRegistry:
    return RuleRegistry(db)


@pytest.fixture()
def engine(db: Database, registry: RuleRegistry) -> FilterEngine:
    return FilterEngine(db, registry)


def figure1_document() -> Document:
    """The paper's Figure 1 document, built programmatically."""
    doc = Document("doc.rdf")
    host = doc.new_resource("host", "CycleProvider")
    host.add("serverHost", "pirates.uni-passau.de")
    host.add("serverPort", 5874)
    host.add("serverInformation", URIRef("doc.rdf#info"))
    info = doc.new_resource("info", "ServerInformation")
    info.add("memory", 92)
    info.add("cpu", 600)
    return doc


@pytest.fixture()
def figure1() -> Document:
    return figure1_document()


def register_rule(
    engine: FilterEngine,
    registry: RuleRegistry,
    schema: Schema,
    rule_text: str,
    subscriber: str = "lmr",
) -> int:
    """Parse/normalize/decompose/register one rule; returns its end rule id."""
    rule = parse_rule(rule_text)
    normalized = normalize_rule(rule, schema)
    assert len(normalized) == 1, "helper only supports or-free rules"
    decomposed = decompose_rule(normalized[0], schema)
    registration = registry.register_subscription(
        subscriber, rule_text, decomposed
    )
    engine.initialize_rules(registration.created)
    return registration.end_rule


#: The paper's Section 3.3.1 example rule (used by several test modules).
PAPER_RULE = (
    "search CycleProvider c register c "
    "where c.serverHost contains 'uni-passau.de' "
    "and c.serverInformation.memory > 64 "
    "and c.serverInformation.cpu > 500"
)
