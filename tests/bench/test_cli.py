"""Tests for the ``python -m repro.bench`` command-line interface."""

import pytest

import repro.bench.__main__ as cli
from repro.bench.harness import MeasurementPoint, SweepResult
from repro.bench.reporting import FigureResult
from repro.workload.scenarios import WorkloadSpec


def fake_figure(holds: bool):
    def build(quick: bool = True):
        spec = WorkloadSpec("OID", 10)
        point = MeasurementPoint(
            spec=spec, batch_size=1, repeats=1, total_seconds=0.001,
            hits=1, iterations=0,
        )
        figure = FigureResult(
            "Figure T", f"test figure (quick={quick})",
            series=[SweepResult(spec=spec, points=[point])],
        )
        figure.claims = [("claim", holds)]
        return figure

    return build


@pytest.fixture()
def fake_figures(monkeypatch):
    figures = {"figT": fake_figure(True), "figF": fake_figure(False)}
    monkeypatch.setattr(cli, "FIGURES", figures)
    return figures


def test_single_figure_success(fake_figures, capsys):
    assert cli.main(["figT"]) == 0
    out = capsys.readouterr().out
    assert "Figure T" in out
    assert "HOLDS" in out


def test_failing_claim_sets_exit_code(fake_figures, capsys):
    assert cli.main(["figF"]) == 1
    assert "VIOLATED" in capsys.readouterr().out


def test_all_runs_every_figure(fake_figures, capsys):
    assert cli.main(["all"]) == 1  # figF fails
    out = capsys.readouterr().out
    assert out.count("Figure T") >= 2


def test_csv_output(fake_figures, tmp_path, capsys):
    target = tmp_path / "out.csv"
    assert cli.main(["figT", "--csv", str(target)]) == 0
    content = target.read_text().splitlines()
    assert content[0].startswith("figure,series,batch_size")
    assert len(content) == 2
    assert "OID n=10" in content[1]


def test_unknown_figure_rejected(fake_figures):
    with pytest.raises(SystemExit):
        cli.main(["figZZ"])


def test_real_figures_registered():
    from repro.bench.figures import FIGURES

    assert set(FIGURES) == {
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "analysis",
        "recovery",
        "matcher",
        "service",
        "semantics",
    }


def test_chart_flag(fake_figures, capsys):
    assert cli.main(["figT", "--chart"]) == 0
    out = capsys.readouterr().out
    assert "ms/document (y max" in out
    assert "* = OID n=10" in out


def test_render_chart_shapes():
    from repro.bench.reporting import render_chart

    spec = WorkloadSpec("OID", 10)
    points = [
        MeasurementPoint(
            spec=spec, batch_size=b, repeats=1,
            total_seconds=0.001 * (10 - i), hits=1, iterations=0,
        )
        for i, b in enumerate((1, 10, 100))
    ]
    figure = FigureResult(
        "Figure C", "chart test",
        series=[SweepResult(spec=spec, points=points)],
    )
    chart = render_chart(figure, width=30, height=6)
    lines = chart.splitlines()
    assert lines[0].startswith("Figure C")
    assert any("*" in line for line in lines)
    assert " batch: 1 10 100" in chart


def test_render_chart_empty():
    from repro.bench.reporting import render_chart

    assert render_chart(FigureResult("F", "t")) == "(no data)"
