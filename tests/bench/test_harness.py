"""Smoke tests for the benchmark harness (tiny sizes, correctness only)."""

from repro.bench.harness import FilterBench, MeasurementPoint, SweepResult
from repro.bench.reporting import FigureResult, render_claims, render_figure
from repro.workload.scenarios import WorkloadSpec


def test_measure_point_metrics():
    bench = FilterBench(WorkloadSpec("OID", 50))
    try:
        point = bench.measure(batch_size=5, repeats=2)
        assert point.documents_registered == 10
        assert point.total_seconds > 0
        assert point.ms_per_document > 0
        # Each doc hits exactly its OID rule.
        assert point.hits == 10
    finally:
        bench.close()


def test_sweep_skips_oversized_batches():
    bench = FilterBench(WorkloadSpec("PATH", 10))
    try:
        sweep = bench.sweep(batch_sizes=(2, 5, 50))
        assert sweep.batch_sizes() == [2, 5]
    finally:
        bench.close()


def test_comp_hits_match_fraction():
    bench = FilterBench(WorkloadSpec("COMP", 40, match_fraction=0.25))
    try:
        point = bench.measure(batch_size=4, repeats=1)
        # 25% of 40 rules = 10 hits per document, 4 documents.
        assert point.hits == 40
    finally:
        bench.close()


def test_join_workload_runs_full_filter():
    bench = FilterBench(WorkloadSpec("JOIN", 10))
    try:
        point = bench.measure(batch_size=2, repeats=1)
        assert point.iterations >= 2  # decomposed join rules evaluated
    finally:
        bench.close()


def test_template_reuse_is_pristine():
    bench = FilterBench(WorkloadSpec("OID", 20))
    try:
        first = bench.measure(batch_size=5, repeats=1)
        second = bench.measure(batch_size=5, repeats=1)
        assert first.hits == second.hits == 5
    finally:
        bench.close()


def test_repeats_for_bounds():
    bench = FilterBench(WorkloadSpec("OID", 10))
    assert bench.repeats_for(1) == 10
    assert bench.repeats_for(5) == 2
    assert bench.repeats_for(10) == 1
    comp = FilterBench(WorkloadSpec("COMP", 10))
    assert comp.repeats_for(1) == 10


def test_render_figure_and_claims():
    spec = WorkloadSpec("OID", 10)
    point = MeasurementPoint(
        spec=spec, batch_size=1, repeats=1, total_seconds=0.01,
        hits=1, iterations=0,
    )
    sweep = SweepResult(spec=spec, points=[point])
    figure = FigureResult("Figure X", "test", series=[sweep])
    figure.claims = [("always true", True), ("always false", False)]
    table = render_figure(figure)
    assert "Figure X" in table
    assert "10.00" in table  # 0.01s / 1 doc = 10 ms
    claims = render_claims(figure)
    assert "HOLDS" in claims and "VIOLATED" in claims
    assert not figure.all_claims_hold


def test_ablation_knobs_accepted():
    bench = FilterBench(
        WorkloadSpec("PATH", 10),
        use_rule_groups=False,
        deduplicate=False,
        join_evaluation="probe",
    )
    try:
        point = bench.measure(batch_size=2, repeats=1)
        assert point.hits >= 2
    finally:
        bench.close()
