"""Tests for the serial-vs-parallel benchmark comparison."""

from __future__ import annotations

import json

from repro.bench.harness import FilterBench
from repro.bench.parallel import (
    PARALLEL_SPECS,
    parallel_figure,
    write_parallel_json,
)
from repro.workload.scenarios import WorkloadSpec

TINY = WorkloadSpec("OID", 50)
BATCHES = (1, 5)


def test_parallel_figure_compares_serial_and_sharded():
    figure = parallel_figure("fig11", parallelism=2, batches=BATCHES, spec=TINY)
    assert len(figure.series) == 2
    serial, parallel = figure.series
    assert serial.label == "OID n=50"
    assert parallel.label == "OID n=50 parallel=2"
    # Correctness claim must hold and be first.
    text, holds = figure.claims[0]
    assert "hit count" in text
    assert holds
    summary = figure.parallel_summary
    assert summary["parallelism"] == 2
    assert summary["cpu_count"] >= 1
    assert summary["hits_equal"] is True
    assert summary["speedup"] > 0


def test_parallel_artifact_shape(tmp_path):
    figure = parallel_figure("fig11", parallelism=2, batches=BATCHES, spec=TINY)
    path = write_parallel_json(figure, "fig11", tmp_path, extra={"mode": "t"})
    assert path.name == "BENCH_fig11_parallel.json"
    payload = json.loads(path.read_text())
    # The figure key must not collide with the serial fig11 artifact the
    # regression gate owns.
    assert payload["figure"] == "fig11_parallel"
    assert payload["mode"] == "t"
    for key in (
        "parallelism",
        "cpu_count",
        "speedup",
        "serial_wall_seconds",
        "parallel_wall_seconds",
        "hits_equal",
    ):
        assert key in payload
    assert len(payload["series"]) == 2


def test_every_figure_has_a_parallel_spec_shape():
    for name, (rule_type, count, fraction) in PARALLEL_SPECS.items():
        assert name.startswith("fig")
        assert count > 0
        spec = (
            WorkloadSpec(rule_type, count)
            if fraction is None
            else WorkloadSpec(rule_type, count, match_fraction=fraction)
        )
        assert spec.rule_type == rule_type


def test_variant_shares_template_and_close_order():
    bench = FilterBench(TINY)
    try:
        twin = bench.variant(3)
        assert twin.parallelism == 3
        assert twin._template is bench._template
        # Closing the variant must not tear down the shared template.
        twin.close()
        db, engine = bench.fresh_engine()
        engine.close()
        db.close()
    finally:
        bench.close()
