"""Smoke tests for the ablation experiment module (tiny sizes)."""

from repro.bench.ablations import (
    ABLATIONS,
    ablation_consistency,
    ablation_dedup,
    ablation_join_evaluation,
    ablation_rule_groups,
)


def test_registry_complete():
    assert set(ABLATIONS) == {
        "rule-groups",
        "dedup",
        "join-evaluation",
        "consistency",
    }


def test_rule_groups_structure():
    result = ablation_rule_groups(rule_count=40, batch_size=4)
    assert set(result.timings) == {"grouped", "ungrouped"}
    assert all(seconds > 0 for seconds in result.timings.values())
    assert len(result.claims) == 1
    assert "rule groups" in result.render()


def test_dedup_structure():
    result = ablation_dedup(rule_count=30, batch_size=4)
    assert set(result.timings) == {"merged", "private"}
    # The atom-count claim is deterministic even at tiny sizes.
    atom_claim = result.claims[0]
    assert atom_claim[1] is True


def test_join_evaluation_structure():
    result = ablation_join_evaluation(rule_count=50, batch_size=2)
    assert set(result.timings) == {"scan", "probe"}


def test_consistency_structure():
    result = ablation_consistency(rules_per_resource=6)
    assert set(result.timings) == {"filter", "resource-list", "ttl"}
    rendered = result.render()
    assert "consistency" in result.ablation_id
    assert "ms" in rendered


def test_cli_ablations_wiring(monkeypatch, capsys):
    import repro.bench.__main__ as cli
    from repro.bench.ablations import AblationResult

    def fake_ablation():
        result = AblationResult("x", "fake ablation")
        result.timings = {"a": 0.001}
        result.claims = [("always", True)]
        return result

    monkeypatch.setattr(cli, "ABLATIONS", {"x": fake_ablation})
    assert cli.main(["ablations"]) == 0
    out = capsys.readouterr().out
    assert "fake ablation" in out
    assert "HOLDS" in out
