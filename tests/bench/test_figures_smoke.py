"""Smoke tests for the figure-reproduction functions (tiny sizes).

These verify structure — series, labels, claim wiring — not performance
claims, which need realistic sizes (the `python -m repro.bench` CLI and
EXPERIMENTS.md cover those).
"""

import pytest

from repro.bench.figures import figure11, figure12, figure13, figure14, figure15

TINY_BATCHES = (1, 4)


def test_figure11_structure():
    figure = figure11(sizes=(30, 60), batches=TINY_BATCHES)
    assert figure.figure_id == "Figure 11"
    assert [s.spec.rule_count for s in figure.series] == [30, 60]
    assert len(figure.claims) == 2
    assert all(isinstance(holds, bool) for __, holds in figure.claims)


def test_figure12_structure():
    figure = figure12(sizes=(20, 40), batches=TINY_BATCHES)
    assert [s.spec.rule_type for s in figure.series] == ["PATH", "PATH"]
    assert {p.batch_size for p in figure.series[0].points} == set(TINY_BATCHES)


def test_figure13_structure():
    figure = figure13(sizes=(20, 40), batches=TINY_BATCHES, con_sizes=(20, 40))
    comp = [s for s in figure.series if s.spec.rule_type == "COMP"]
    con = [s for s in figure.series if s.spec.rule_type == "CON"]
    assert all(s.spec.match_fraction == 0.1 for s in comp)
    # Per CON size: one scan sweep and one trigram sweep, same workload.
    assert len(con) == 4
    assert sum("contains=trigram" in s.label for s in con) == 2
    assert len(figure.claims) == 5


def test_figure14_structure():
    figure = figure14(sizes=(20, 40), batches=TINY_BATCHES)
    assert [s.spec.rule_type for s in figure.series] == ["JOIN", "JOIN"]


def test_figure15_structure():
    figure = figure15(rule_count=40, batches=TINY_BATCHES, con_rules=40)
    comp = [s for s in figure.series if s.spec.rule_type == "COMP"]
    con = [s for s in figure.series if s.spec.rule_type == "CON"]
    assert [s.spec.match_fraction for s in comp] == [
        0.01,
        0.05,
        0.1,
        0.2,
    ]
    assert len(con) == 4
    assert sum("contains=trigram" in s.label for s in con) == 2
    assert len(figure.claims) == 3


def test_figure_batches_exceeding_rule_base_skipped():
    figure = figure12(sizes=(3, 5), batches=(1, 2, 100))
    # batch 100 > rule base: skipped by the one-to-one contract.
    assert figure.series[0].batch_sizes() == [1, 2]
