"""Tests for BENCH_*.json emission and the perf-regression gate."""

from __future__ import annotations

import json

import pytest

import repro.bench.__main__ as cli
from repro.bench.harness import MeasurementPoint, SweepResult
from repro.bench.regression import compare
from repro.bench.regression import main as regression_main
from repro.bench.reporting import (
    FigureResult,
    figure_slug,
    figure_to_dict,
    write_bench_json,
)
from repro.workload.scenarios import WorkloadSpec


def make_figure(total_seconds: float = 0.25, counters=()) -> FigureResult:
    spec = WorkloadSpec("OID", 10)
    point = MeasurementPoint(
        spec=spec, batch_size=1, repeats=2, total_seconds=total_seconds,
        hits=2, iterations=1, counters=tuple(counters),
    )
    return FigureResult(
        "Figure 12", "PATH rules",
        series=[SweepResult(spec=spec, points=[point])],
        claims=[("amortization", True)],
    )


class TestFigureSlug:
    def test_figure_number_extracted(self):
        assert figure_slug("Figure 12") == "fig12"
        assert figure_slug("Figure 5 (variant)") == "fig5"

    def test_fallback_slugifies(self):
        assert figure_slug("Ablations: groups") == "ablations_groups"


class TestFigureToDict:
    def test_every_point_carries_wall_time_and_counters(self):
        figure = make_figure(
            counters=(("filter.atoms_scanned", 40.0),
                      ("storage.statements", 9.0)),
        )
        payload = figure_to_dict(figure)
        assert payload["figure"] == "fig12"
        assert payload["wall_time_seconds"] == pytest.approx(0.25)
        point = payload["series"][0]["points"][0]
        assert point["total_seconds"] == pytest.approx(0.25)
        assert point["ms_per_document"] > 0
        assert point["counters"] == {
            "filter.atoms_scanned": 40.0,
            "storage.statements": 9.0,
        }
        assert payload["claims"] == [
            {"text": "amortization", "holds": True}
        ]


class TestWriteBenchJson:
    def test_writes_named_file_with_extra_fields(self, tmp_path):
        path = write_bench_json(
            make_figure(), tmp_path, extra={"mode": "quick"}
        )
        assert path.name == "BENCH_fig12.json"
        payload = json.loads(path.read_text())
        assert payload["mode"] == "quick"
        assert payload["series"][0]["points"]

    def test_output_is_deterministic(self, tmp_path):
        first = write_bench_json(make_figure(), tmp_path / "a").read_text()
        second = write_bench_json(make_figure(), tmp_path / "b").read_text()
        assert first == second


class TestCliMetricsFlag:
    @pytest.fixture()
    def fake_figures(self, monkeypatch):
        def build(quick: bool = True):
            return make_figure()

        monkeypatch.setattr(cli, "FIGURES", {"fig12": build})

    def test_metrics_writes_bench_json(self, fake_figures, tmp_path, capsys):
        assert cli.main(
            ["fig12", "--metrics", "--metrics-dir", str(tmp_path)]
        ) == 0
        payload = json.loads((tmp_path / "BENCH_fig12.json").read_text())
        assert payload["figure"] == "fig12"
        assert "elapsed_seconds" in payload
        out = capsys.readouterr().out
        assert "BENCH_fig12.json" in out
        assert '"counters"' in out  # the registry snapshot dump

    def test_no_metrics_flag_writes_nothing(self, fake_figures, tmp_path,
                                            capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert cli.main(["fig12"]) == 0
        assert not list(tmp_path.glob("BENCH_*.json"))


class TestRegressionGate:
    def test_within_tolerance_passes(self):
        baseline = figure_to_dict(make_figure(1.0))
        current = figure_to_dict(make_figure(1.2))
        assert compare(baseline, current) == []

    def test_past_tolerance_fails(self):
        baseline = figure_to_dict(make_figure(1.0))
        current = figure_to_dict(make_figure(1.3))
        failures = compare(baseline, current)
        assert failures and "wall time regressed" in failures[0]

    def test_counter_movement_is_reported(self):
        baseline = figure_to_dict(
            make_figure(1.0, counters=(("storage.statements", 100.0),))
        )
        current = figure_to_dict(
            make_figure(1.5, counters=(("storage.statements", 250.0),))
        )
        failures = compare(baseline, current)
        assert any("counters moved" in failure for failure in failures)

    def test_main_end_to_end(self, tmp_path, capsys):
        baseline_dir = tmp_path / "baselines"
        current_dir = tmp_path / "current"
        write_bench_json(make_figure(1.0), baseline_dir)
        write_bench_json(make_figure(1.05), current_dir)
        assert regression_main([
            "--baseline-dir", str(baseline_dir),
            "--current-dir", str(current_dir),
        ]) == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_main_fails_on_regression(self, tmp_path, capsys):
        baseline_dir = tmp_path / "baselines"
        current_dir = tmp_path / "current"
        write_bench_json(make_figure(1.0), baseline_dir)
        write_bench_json(make_figure(2.0), current_dir)
        assert regression_main([
            "--baseline-dir", str(baseline_dir),
            "--current-dir", str(current_dir),
        ]) == 1

    def test_main_fails_on_missing_current_run(self, tmp_path, capsys):
        baseline_dir = tmp_path / "baselines"
        write_bench_json(make_figure(1.0), baseline_dir)
        assert regression_main([
            "--baseline-dir", str(baseline_dir),
            "--current-dir", str(tmp_path / "empty"),
        ]) == 1

    def test_main_errors_without_baselines(self, tmp_path, capsys):
        assert regression_main([
            "--baseline-dir", str(tmp_path / "nothing"),
            "--current-dir", str(tmp_path),
        ]) == 2

    def test_main_fails_on_unbaselined_current_figure(self, tmp_path, capsys):
        # A figure produced by the perf run without a committed baseline
        # would silently skip the gate — it must fail with a pointer to
        # committing one.
        baseline_dir = tmp_path / "baselines"
        current_dir = tmp_path / "current"
        write_bench_json(make_figure(1.0), baseline_dir)
        write_bench_json(make_figure(1.0), current_dir)
        extra = FigureResult(
            "Figure 99", "new figure",
            series=make_figure(1.0).series,
        )
        write_bench_json(extra, current_dir)
        assert regression_main([
            "--baseline-dir", str(baseline_dir),
            "--current-dir", str(current_dir),
        ]) == 1
        err = capsys.readouterr().err
        assert "BENCH_fig99.json" in err
        assert "no committed baseline" in err

    def test_checked_in_baselines_cover_the_ci_figures(self):
        from pathlib import Path

        names = sorted(
            path.name for path in Path("benchmarks/baselines").glob("*.json")
        )
        assert names == [
            "BENCH_analysis.json",
            "BENCH_fig11.json", "BENCH_fig12.json", "BENCH_fig13.json",
            "BENCH_fig14.json", "BENCH_fig15.json",
            "BENCH_matcher.json",
            "BENCH_recovery.json",
            "BENCH_semantics.json",
            "BENCH_service.json",
        ]
