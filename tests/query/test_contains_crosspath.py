"""One ``contains`` semantics across every evaluation path.

Five consumers evaluate ``contains`` predicates: the in-memory query
evaluator, the SQL browse translator in scan and trigram mode, and the
filter's triggering join in scan and trigram mode.  All five must agree
— exact, case-sensitive substring over canonical string values (see
:mod:`repro.text.ngrams`) — on every value/needle shape the language
can produce: case variants, numeric-looking text, unicode, and needles
shorter than a trigram (the index fallback).
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.filter.engine import FilterEngine
from repro.obs.metrics import MetricsRegistry
from repro.query.evaluator import evaluate_query
from repro.query.sql import run_query_sql
from repro.rdf.diff import diff_documents
from repro.rdf.model import Document, URIRef
from repro.rdf.schema import objectglobe_schema
from repro.rules.parser import parse_query
from repro.rules.registry import RuleRegistry
from repro.storage.engine import Database
from repro.storage.schema import create_all
from repro.text.index import index_contains_rule, match_contains_indexed
from repro.text.ngrams import contains_match
from tests.conftest import prop_settings, register_rule

SCHEMA = objectglobe_schema()

_HOSTS = [
    "a.uni-passau.de",
    "A.UNI-PASSAU.DE",
    "b.tum.de",
    "münchen.de",
    "12345",
    "abc-xbc-cde.org",  # trigram false-positive bait for needle "abcde"
    "abcde.org",
    "pa",
]

_NEEDLES = [
    "uni",          # plain indexable needle
    "UNI",          # case variant — must NOT match the lowercase hosts
    "234",          # numeric-looking text; affinity must not kick in
    "ünch",         # unicode codepoints
    "de",           # shorter than a trigram — scan fallback
    "abcde",        # scattered-trigram false positive on one host
    "passau",
    ".org",
]


def _documents() -> list[Document]:
    documents = []
    for index, host in enumerate(_HOSTS):
        doc = Document(f"doc{index}.rdf")
        provider = doc.new_resource("host", "CycleProvider")
        provider.add("serverHost", host)
        documents.append(doc)
    return documents


def _expected(needle: str) -> list[str]:
    return sorted(
        f"doc{index}.rdf#host"
        for index, host in enumerate(_HOSTS)
        if contains_match(host, needle)
    )


def _rule(needle: str) -> str:
    return (
        "search CycleProvider c register c "
        f"where c.serverHost contains '{needle}'"
    )


@pytest.fixture(scope="module")
def filter_state():
    """Both engines fed the same documents, rules registered per needle."""
    state = {}
    for mode in ("scan", "trigram"):
        db = Database()
        create_all(db)
        registry = RuleRegistry(db)
        engine = FilterEngine(db, registry, contains_index=mode)
        ends = {
            needle: register_rule(
                engine, registry, SCHEMA, _rule(needle), subscriber=f"s{i}"
            )
            for i, needle in enumerate(_NEEDLES)
        }
        for doc in _documents():
            engine.process_diff(diff_documents(None, doc))
        state[mode] = (db, engine, ends)
    yield state
    for db, engine, __ in state.values():
        engine.close()
        db.close()


@pytest.mark.parametrize("needle", _NEEDLES)
def test_evaluator_agrees(needle):
    resources = [r for doc in _documents() for r in doc]
    query = parse_query(
        f"search CycleProvider c where c.serverHost contains '{needle}'"
    )
    matches = evaluate_query(query, resources, SCHEMA)
    assert [str(r.uri) for r in matches] == _expected(needle)


@pytest.mark.parametrize("mode", ["scan", "trigram"])
@pytest.mark.parametrize("needle", _NEEDLES)
def test_sql_browse_agrees(filter_state, needle, mode):
    db, __, __ends = filter_state["scan"]
    query = parse_query(
        f"search CycleProvider c where c.serverHost contains '{needle}'"
    )
    uris = run_query_sql(db, query, SCHEMA, contains_index=mode)
    assert [str(u) for u in uris] == _expected(needle)


@pytest.mark.parametrize("mode", ["scan", "trigram"])
@pytest.mark.parametrize("needle", _NEEDLES)
def test_triggering_agrees(filter_state, needle, mode):
    __, engine, ends = filter_state[mode]
    matches = engine.current_matches(ends[needle])
    assert sorted(str(u) for u in matches) == _expected(needle)


# -- the superset property ------------------------------------------------

_value = st.text(
    alphabet=st.characters(
        blacklist_categories=("Cs",), blacklist_characters="\x00"
    ),
    max_size=12,
)


@prop_settings(60)
@given(
    values=st.lists(_value, min_size=1, max_size=8, unique=True),
    needle=st.text(alphabet="abcde.", min_size=3, max_size=6),
)
def test_trigram_candidates_superset_of_true_matches(values, needle):
    """Probe candidates ⊇ true matches; verification restores equality."""
    metrics = MetricsRegistry()
    db = Database()
    try:
        create_all(db)
        db.execute(
            "INSERT INTO atomic_rules (rule_id, kind, rule_text, class) "
            "VALUES (1, 'triggering', 'synthetic', 'CycleProvider')"
        )
        index_contains_rule(
            db, 1, ["CycleProvider"], "serverHost", needle, metrics=metrics
        )
        for index, value in enumerate(values):
            db.execute(
                "INSERT INTO filter_input "
                "(uri_reference, class, property, value) "
                "VALUES (?, 'CycleProvider', 'serverHost', ?)",
                (f"doc{index}.rdf#host", value),
            )
        hits = match_contains_indexed(db, metrics=metrics)
        truth = sorted(
            (f"doc{index}.rdf#host", 1)
            for index, value in enumerate(values)
            if contains_match(value, needle)
        )
        assert sorted(hits) == truth
        counters = metrics.counter_values()
        assert counters.get("text.candidates", 0) >= len(truth)
        assert counters.get("text.verified", 0) == len(truth)
    finally:
        db.close()
