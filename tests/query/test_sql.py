"""Unit tests for the query → SQL translation (the MDP browse path)."""

import pytest

from repro.errors import QuerySyntaxError
from repro.filter.decompose import resources_atoms
from repro.query.sql import run_query_sql, sql_string_literal, translate_normalized
from repro.rdf.model import Document, URIRef
from repro.rules.normalize import normalize_rule
from repro.rules.parser import parse_query
from repro.storage.tables import FilterDataTable


@pytest.fixture()
def loaded_db(db, schema):
    specs = [
        (0, "a.uni-passau.de", 92, 600, 1),
        (1, "b.tum.de", 128, 400, 2),
        (2, "c.uni-passau.de", 32, 700, 3),
    ]
    resources = []
    for index, host, memory, cpu, synth in specs:
        doc = Document(f"doc{index}.rdf")
        provider = doc.new_resource("host", "CycleProvider")
        provider.add("serverHost", host)
        provider.add("synthValue", synth)
        provider.add("serverInformation", URIRef(f"doc{index}.rdf#info"))
        info = doc.new_resource("info", "ServerInformation")
        info.add("memory", memory)
        info.add("cpu", cpu)
        resources.extend(doc)
    FilterDataTable(db).insert_atoms(resources_atoms(resources))
    return db


def run(db, schema, text):
    return [str(u) for u in run_query_sql(db, parse_query(text), schema)]


def test_sql_string_literal_escapes_quotes():
    assert sql_string_literal("o'neil") == "'o''neil'"


def test_class_query(loaded_db, schema):
    assert run(loaded_db, schema, "search ServerInformation s") == [
        "doc0.rdf#info",
        "doc1.rdf#info",
        "doc2.rdf#info",
    ]


def test_constant_predicates(loaded_db, schema):
    assert run(
        loaded_db,
        schema,
        "search CycleProvider c where c.serverHost contains 'passau'",
    ) == ["doc0.rdf#host", "doc2.rdf#host"]


def test_numeric_comparison(loaded_db, schema):
    assert run(
        loaded_db,
        schema,
        "search ServerInformation s where s.memory > 64",
    ) == ["doc0.rdf#info", "doc1.rdf#info"]


def test_path_join(loaded_db, schema):
    assert run(
        loaded_db,
        schema,
        "search CycleProvider c where c.serverInformation.cpu >= 600",
    ) == ["doc0.rdf#host", "doc2.rdf#host"]


def test_multi_hop_and_multi_predicate(loaded_db, schema):
    assert run(
        loaded_db,
        schema,
        "search CycleProvider c where c.serverInformation.memory > 64 "
        "and c.serverInformation.cpu > 500",
    ) == ["doc0.rdf#host"]


def test_oid_query(loaded_db, schema):
    assert run(
        loaded_db, schema, "search CycleProvider c where c = 'doc1.rdf#host'"
    ) == ["doc1.rdf#host"]


def test_or_union(loaded_db, schema):
    assert run(
        loaded_db,
        schema,
        "search CycleProvider c where c.synthValue = 1 or c.synthValue = 3",
    ) == ["doc0.rdf#host", "doc2.rdf#host"]


def test_explicit_join_registers_chosen_variable(loaded_db, schema):
    assert run(
        loaded_db,
        schema,
        "search ServerInformation s, CycleProvider c "
        "where c.serverInformation = s and c.serverHost contains 'tum'",
    ) == ["doc1.rdf#info"]


def test_string_constant_with_quote_is_safe(loaded_db, schema):
    assert (
        run(
            loaded_db,
            schema,
            "search CycleProvider c where c.serverHost = 'o''neil'",
        )
        == []
    )


def test_agreement_with_evaluator(loaded_db, schema):
    """SQL path and in-memory path agree on a batch of queries."""
    from repro.query.evaluator import evaluate_query

    resources = {}
    for index, host, memory, cpu, synth in [
        (0, "a.uni-passau.de", 92, 600, 1),
        (1, "b.tum.de", 128, 400, 2),
        (2, "c.uni-passau.de", 32, 700, 3),
    ]:
        doc = Document(f"doc{index}.rdf")
        provider = doc.new_resource("host", "CycleProvider")
        provider.add("serverHost", host)
        provider.add("synthValue", synth)
        provider.add("serverInformation", URIRef(f"doc{index}.rdf#info"))
        info = doc.new_resource("info", "ServerInformation")
        info.add("memory", memory)
        info.add("cpu", cpu)
        resources.update(doc.resources)
    queries = [
        "search CycleProvider c",
        "search CycleProvider c where c.synthValue != 2",
        "search CycleProvider c where c.serverInformation.memory <= 92",
        "search ServerInformation s where s.cpu < 650",
        "search CycleProvider c where c.serverHost contains 'de' "
        "and c.serverInformation.memory > 50",
    ]
    for text in queries:
        query = parse_query(text)
        sql_result = run_query_sql(loaded_db, query, schema)
        mem_result = [r.uri for r in evaluate_query(query, resources, schema)]
        assert sql_result == mem_result, text


def test_translate_normalized_is_single_statement(schema):
    normalized = normalize_rule(
        parse_query(
            "search CycleProvider c where c.serverInformation.memory > 64"
        ).as_rule(),
        schema,
    )[0]
    sql = translate_normalized(normalized, schema)
    assert sql.count("SELECT DISTINCT") == 1
    assert "EXISTS" in sql
