"""Property-based equivalence: in-memory evaluator vs. SQL translation.

The two query paths — the LMR's in-memory evaluation and the MDP's
SQL-join translation over ``filter_data`` — must agree on arbitrary
documents and queries.  They share only the normalizer, so agreement
pins down the semantics of both.
"""

from tests.conftest import prop_settings
from hypothesis import given, settings, strategies as st

from repro.filter.decompose import resources_atoms
from repro.query.evaluator import evaluate_query
from repro.query.sql import run_query_sql
from repro.rdf.model import Document, URIRef
from repro.rdf.schema import objectglobe_schema
from repro.rules.parser import parse_query
from repro.storage.engine import Database
from repro.storage.schema import create_all
from repro.storage.tables import FilterDataTable

SCHEMA = objectglobe_schema()

hosts = st.sampled_from(
    ["a.uni-passau.de", "b.tum.de", "c.uni-passau.de", "plain"]
)
small_ints = st.integers(min_value=0, max_value=6)


@st.composite
def document_sets(draw):
    count = draw(st.integers(min_value=1, max_value=5))
    documents = []
    for index in range(count):
        doc = Document(f"doc{index}.rdf")
        provider = doc.new_resource("host", "CycleProvider")
        provider.add("serverHost", draw(hosts))
        provider.add("synthValue", draw(small_ints))
        target = draw(st.integers(min_value=0, max_value=count))
        provider.add("serverInformation", URIRef(f"doc{target}.rdf#info"))
        info = doc.new_resource("info", "ServerInformation")
        info.add("memory", draw(small_ints))
        info.add("cpu", draw(small_ints))
        documents.append(doc)
    return documents


comparison_ops = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])


@st.composite
def query_texts(draw):
    kind = draw(
        st.sampled_from(
            ["class", "comp", "contains", "path", "multi", "or", "join_var", "oid"]
        )
    )
    if kind == "class":
        cls = draw(st.sampled_from(["CycleProvider", "ServerInformation"]))
        return f"search {cls} x"
    if kind == "comp":
        return (
            f"search CycleProvider c where c.synthValue "
            f"{draw(comparison_ops)} {draw(small_ints)}"
        )
    if kind == "contains":
        needle = draw(st.sampled_from(["passau", "tum", ".de", "x"]))
        return f"search CycleProvider c where c.serverHost contains '{needle}'"
    if kind == "path":
        prop = draw(st.sampled_from(["memory", "cpu"]))
        return (
            f"search CycleProvider c where c.serverInformation.{prop} "
            f"{draw(comparison_ops)} {draw(small_ints)}"
        )
    if kind == "multi":
        return (
            f"search CycleProvider c "
            f"where c.serverInformation.memory {draw(comparison_ops)} "
            f"{draw(small_ints)} "
            f"and c.serverInformation.cpu {draw(comparison_ops)} "
            f"{draw(small_ints)}"
        )
    if kind == "or":
        return (
            f"search CycleProvider c where c.synthValue = {draw(small_ints)} "
            f"or c.serverHost contains 'passau'"
        )
    if kind == "join_var":
        return (
            f"search ServerInformation s, CycleProvider c "
            f"where c.serverInformation = s "
            f"and c.synthValue >= {draw(small_ints)}"
        )
    return "search CycleProvider c where c = 'doc0.rdf#host'"


@prop_settings(60)
@given(documents=document_sets(), text=query_texts())
def test_sql_translation_agrees_with_evaluator(documents, text):
    db = Database()
    create_all(db)
    try:
        resources = [r for doc in documents for r in doc]
        FilterDataTable(db).insert_atoms(resources_atoms(resources))
        query = parse_query(text)
        sql_result = [str(u) for u in run_query_sql(db, query, SCHEMA)]
        pool = {r.uri: r for r in resources}
        mem_result = [
            str(r.uri) for r in evaluate_query(query, pool, SCHEMA)
        ]
        assert sql_result == mem_result, text
    finally:
        db.close()
