"""Unit tests for the in-memory query evaluator (the LMR query path)."""

import pytest

from repro.errors import NormalizationError
from repro.query.evaluator import compare_values, evaluate_query
from repro.rdf.model import Document, URIRef
from repro.rules.parser import parse_query


@pytest.fixture()
def pool(schema):
    """Four provider/info pairs with varied values."""
    resources = {}
    specs = [
        (0, "a.uni-passau.de", 92, 600, 1),
        (1, "b.tum.de", 128, 400, 2),
        (2, "c.uni-passau.de", 32, 700, 3),
        (3, "d.fu.de", 100, 501, 4),
    ]
    for index, host, memory, cpu, synth in specs:
        doc = Document(f"doc{index}.rdf")
        provider = doc.new_resource("host", "CycleProvider")
        provider.add("serverHost", host)
        provider.add("synthValue", synth)
        provider.add("serverInformation", URIRef(f"doc{index}.rdf#info"))
        info = doc.new_resource("info", "ServerInformation")
        info.add("memory", memory)
        info.add("cpu", cpu)
        resources.update(doc.resources)
    return resources


def uris(results):
    return [str(r.uri) for r in results]


class TestCompareValues:
    def test_string_equality(self):
        assert compare_values("a", "=", "a", False)
        assert not compare_values("a", "=", "b", False)
        assert compare_values("a", "!=", "b", False)

    def test_contains(self):
        assert compare_values("uni-passau.de", "contains", "passau", False)
        assert not compare_values("tum.de", "contains", "passau", False)

    def test_numeric_ordering(self):
        assert compare_values("10", "<", "20", True)
        assert compare_values("20", ">=", "20", True)
        assert not compare_values("20", "<", "10", True)

    def test_numeric_with_garbage(self):
        assert not compare_values("abc", "<", "10", True)

    def test_string_ordering_rejected(self):
        with pytest.raises(ValueError):
            compare_values("a", "<", "b", False)

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            compare_values("1", "~", "1", True)


class TestQueries:
    def test_class_query(self, schema, pool):
        results = evaluate_query(
            parse_query("search ServerInformation s"), pool, schema
        )
        assert len(results) == 4

    def test_constant_filter(self, schema, pool):
        results = evaluate_query(
            parse_query(
                "search CycleProvider c where c.serverHost contains 'passau'"
            ),
            pool,
            schema,
        )
        assert uris(results) == ["doc0.rdf#host", "doc2.rdf#host"]

    def test_path_query(self, schema, pool):
        results = evaluate_query(
            parse_query(
                "search CycleProvider c "
                "where c.serverInformation.memory > 64"
            ),
            pool,
            schema,
        )
        assert uris(results) == [
            "doc0.rdf#host",
            "doc1.rdf#host",
            "doc3.rdf#host",
        ]

    def test_multi_predicate_join(self, schema, pool):
        results = evaluate_query(
            parse_query(
                "search CycleProvider c "
                "where c.serverInformation.memory > 64 "
                "and c.serverInformation.cpu > 500"
            ),
            pool,
            schema,
        )
        assert uris(results) == ["doc0.rdf#host", "doc3.rdf#host"]

    def test_explicit_join_variable(self, schema, pool):
        results = evaluate_query(
            parse_query(
                "search CycleProvider c, ServerInformation s "
                "where c.serverInformation = s and s.cpu > 599"
            ),
            pool,
            schema,
        )
        assert uris(results) == ["doc0.rdf#host", "doc2.rdf#host"]

    def test_oid_query(self, schema, pool):
        results = evaluate_query(
            parse_query("search CycleProvider c where c = 'doc1.rdf#host'"),
            pool,
            schema,
        )
        assert uris(results) == ["doc1.rdf#host"]

    def test_or_union(self, schema, pool):
        results = evaluate_query(
            parse_query(
                "search CycleProvider c where c.synthValue = 1 "
                "or c.synthValue = 4"
            ),
            pool,
            schema,
        )
        assert uris(results) == ["doc0.rdf#host", "doc3.rdf#host"]

    def test_empty_pool(self, schema):
        results = evaluate_query(
            parse_query("search CycleProvider c"), {}, schema
        )
        assert results == []

    def test_dangling_reference_no_match(self, schema):
        doc = Document("d.rdf")
        provider = doc.new_resource("host", "CycleProvider")
        provider.add("serverInformation", URIRef("gone.rdf#info"))
        results = evaluate_query(
            parse_query(
                "search CycleProvider c "
                "where c.serverInformation.memory > 0"
            ),
            doc.resources,
            schema,
        )
        assert results == []

    def test_results_sorted_and_unique(self, schema, pool):
        results = evaluate_query(
            parse_query("search CycleProvider c where c.synthValue >= 1"),
            pool,
            schema,
        )
        assert uris(results) == sorted(set(uris(results)))

    def test_disconnected_variable_rejected(self, schema, pool):
        with pytest.raises(NormalizationError):
            evaluate_query(
                parse_query(
                    "search CycleProvider c, ServerInformation s "
                    "where s.memory > 0"
                ),
                pool,
                schema,
            )

    def test_subclass_query(self, rich_schema):
        doc = Document("d.rdf")
        doc.new_resource("c", "CycleProvider").add("serverHost", "x.de")
        doc.new_resource("d", "DataProvider").add("collection", "stars")
        results = evaluate_query(
            parse_query("search Provider p"), doc.resources, rich_schema
        )
        assert uris(results) == ["d.rdf#c", "d.rdf#d"]

    def test_multivalued_any_semantics(self, rich_schema):
        doc = Document("d.rdf")
        provider = doc.new_resource("c", "CycleProvider")
        provider.add("tags", "slow")
        provider.add("tags", "fast")
        results = evaluate_query(
            parse_query("search CycleProvider c where c.tags? = 'fast'"),
            doc.resources,
            rich_schema,
        )
        assert uris(results) == ["d.rdf#c"]

    def test_self_join_query(self, rich_schema):
        doc = Document("d.rdf")
        balanced = doc.new_resource("a", "ServerInformation")
        balanced.add("memory", 4)
        balanced.add("cpu", 4)
        skewed = doc.new_resource("b", "ServerInformation")
        skewed.add("memory", 2)
        skewed.add("cpu", 8)
        results = evaluate_query(
            parse_query("search ServerInformation s where s.memory = s.cpu"),
            doc.resources,
            rich_schema,
        )
        assert uris(results) == ["d.rdf#a"]
