"""Failure-injection tests: faults must be survivable, state must stay sound.

Local failures (storage, bad input) still surface immediately; *network*
failures are recovered from — the reliable delivery layer retries,
dead-letters and resynchronizes until the system converges to the state
a fault-free run would have produced.
"""

import pytest

from repro.errors import MDVError, StorageError, SubscriptionError
from repro.mdv.backbone import Backbone
from repro.mdv.provider import MetadataProvider
from repro.mdv.repository import LocalMetadataRepository
from repro.net.bus import NetworkBus
from repro.net.faults import FaultPlan, LinkFaults
from repro.rdf.model import Document, URIRef
from repro.workload.chaos import run_chaos_scenario


def make_doc(index, memory=92):
    doc = Document(f"doc{index}.rdf")
    provider = doc.new_resource("host", "CycleProvider")
    provider.add("serverHost", "a.uni-passau.de")
    provider.add("serverInformation", URIRef(f"doc{index}.rdf#info"))
    info = doc.new_resource("info", "ServerInformation")
    info.add("memory", memory)
    info.add("cpu", 600)
    return doc


class TestBusFailures:
    def test_handler_exception_propagates(self):
        bus = NetworkBus()

        def broken(message):
            raise RuntimeError("handler crash")

        bus.register("broken", broken)
        with pytest.raises(RuntimeError):
            bus.send("a", "broken", "x", None)
        # The message was still accounted (it did travel).
        assert bus.total_messages == 1

    def test_subscriber_crash_dead_letters_instead_of_propagating(
        self, schema
    ):
        """A crashing subscriber no longer fails the publisher.

        The batch is poison (the receiver rejected it), so it moves to
        the dead-letter queue; the registration itself succeeds and the
        MDP keeps serving everyone else.
        """
        bus = NetworkBus()
        mdp = MetadataProvider(schema, name="mdp", bus=bus)
        lmr = LocalMetadataRepository("lmr", mdp, bus=bus)
        lmr.subscribe(
            "search CycleProvider c register c "
            "where c.serverHost contains 'passau'"
        )

        def broken(batch):
            raise RuntimeError("cache corrupted")

        lmr.apply_batch = broken  # simulate a crashing LMR
        bus.register("lmr", lmr._handle_message)
        mdp.register_document(make_doc(1))
        assert mdp.document_count() == 1
        assert mdp.outbox is not None
        assert mdp.outbox.dead_count("lmr") == 1
        (letter,) = mdp.outbox.dead_letters
        assert letter.poison
        assert "cache corrupted" in letter.error


class TestTransactionalSoundness:
    def test_failed_update_leaves_filter_state_intact(self, schema):
        """A crash mid-update must roll the whole three-pass back."""
        mdp = MetadataProvider(schema)
        mdp.connect_subscriber("lmr", lambda batch: None)
        mdp.subscribe(
            "lmr",
            "search CycleProvider c register c "
            "where c.serverInformation.memory > 64",
        )
        doc = make_doc(1, memory=92)
        mdp.register_document(doc)
        matches_before = mdp.engine.current_matches(
            mdp.registry.subscriptions_of("lmr")[0].end_rule
        )

        engine = mdp.engine
        original_run = engine.run
        calls = {"count": 0}

        def exploding_run(*args, **kwargs):
            calls["count"] += 1
            if calls["count"] == 3:  # blow up in pass 3
                raise StorageError("disk on fire")
            return original_run(*args, **kwargs)

        engine.run = exploding_run
        from repro.rdf.diff import diff_documents

        updated = doc.copy()
        updated.get("doc1.rdf#info").set("memory", 16)
        with pytest.raises(StorageError):
            engine.process_diff(diff_documents(doc, updated))
        engine.run = original_run

        # The transaction rolled back: old state fully intact.
        end_rule = mdp.registry.subscriptions_of("lmr")[0].end_rule
        assert engine.current_matches(end_rule) == matches_before
        atoms = mdp.db.count(
            "filter_data", "uri_reference = ?", ("doc1.rdf#info",)
        )
        assert atoms == 3  # identity + memory + cpu, old version

        # And the system keeps working afterwards.
        outcome = engine.process_diff(diff_documents(doc, updated))
        assert outcome.unmatched


class TestInvalidInputs:
    def test_closed_database_raises_storage_error(self, schema):
        mdp = MetadataProvider(schema)
        mdp.db.close()
        with pytest.raises(StorageError):
            mdp.register_document(make_doc(1))

    def test_bad_rule_text_leaves_no_partial_subscription(self, schema):
        mdp = MetadataProvider(schema)
        mdp.connect_subscriber("lmr", lambda batch: None)
        with pytest.raises(MDVError):
            mdp.subscribe("lmr", "search Unicorn u register u")
        assert mdp.registry.subscriptions_of("lmr") == []
        assert mdp.registry.atom_count() == 0

    def test_or_rule_partial_registration_conflict(self, schema):
        """Subscribing the same or-rule twice fails cleanly."""
        mdp = MetadataProvider(schema)
        mdp.connect_subscriber("lmr", lambda batch: None)
        rule = (
            "search CycleProvider c register c "
            "where c.synthValue > 1 or c.synthValue < 0"
        )
        mdp.subscribe("lmr", rule)
        with pytest.raises(SubscriptionError):
            mdp.subscribe("lmr", rule)

    def test_unparseable_xml_rejected_without_state_change(self, schema):
        from repro.errors import DocumentParseError

        mdp = MetadataProvider(schema)
        with pytest.raises(DocumentParseError):
            mdp.register_document("<rdf:RDF", document_uri="x.rdf")
        assert mdp.document_count() == 0


def _three_tier(schema, plan=None):
    """Backbone of two MDPs with one LMR each, over one faulty bus."""
    bus = NetworkBus(fault_plan=plan)
    backbone = Backbone(schema, bus=bus)
    backbone.add_provider("mdp-a")
    backbone.add_provider("mdp-b")
    lmr_a = LocalMetadataRepository("lmr-a", backbone.provider("mdp-a"),
                                    bus=bus)
    lmr_b = LocalMetadataRepository("lmr-b", backbone.provider("mdp-b"),
                                    bus=bus)
    return bus, backbone, lmr_a, lmr_b


RULE = ("search CycleProvider c register c "
        "where c.serverHost contains 'passau'")


class TestPartitionRecovery:
    def test_partitioned_backbone_tracks_lag_and_recovers(self, schema):
        plan = FaultPlan(seed=3)
        bus, backbone, lmr_a, lmr_b = _three_tier(schema, plan)
        lmr_b.subscribe(RULE)
        plan.partition({"mdp-a"}, {"mdp-b"})
        backbone.register_document(make_doc(1), at="mdp-a")
        # The registration committed locally; replication is lagging.
        assert backbone.provider("mdp-a").document_count() == 1
        assert backbone.provider("mdp-b").document_count() == 0
        assert not backbone.is_synchronized()
        assert backbone.replication_lag() >= 1
        lag = backbone.lag_report()["mdp-a->mdp-b"]
        assert lag["pending"] + lag["dead"] >= 1
        assert lag["last_error"] is not None
        plan.heal()
        backbone.recover()
        assert backbone.is_synchronized()
        assert backbone.provider("mdp-b").document_count() == 1
        # The peer's own subscribers got the change after the heal.
        assert "doc1.rdf#host" in lmr_b.cache

    def test_query_during_partition_served_stale_not_raising(self, schema):
        plan = FaultPlan(seed=5)
        bus, backbone, lmr_a, lmr_b = _three_tier(schema, plan)
        lmr_a.subscribe(RULE)
        backbone.register_document(make_doc(1), at="mdp-a")
        assert "doc1.rdf#host" in lmr_a.cache
        plan.partition({"lmr-a"}, {"mdp-a", "mdp-b"})
        result = lmr_a.query_with_status("search CycleProvider c")
        assert result.stale
        assert [str(r.uri) for r in result] == ["doc1.rdf#host"]
        plan.heal()
        fresh = lmr_a.query_with_status("search CycleProvider c")
        assert not fresh.stale

    def test_crashed_lmr_resyncs_after_restart(self, schema):
        plan = FaultPlan(seed=11)
        bus, backbone, lmr_a, lmr_b = _three_tier(schema, plan)
        lmr_a.subscribe(RULE)
        plan.crash("lmr-a")
        backbone.register_document(make_doc(1), at="mdp-a")
        backbone.register_document(make_doc(2), at="mdp-a")
        assert "doc1.rdf#host" not in lmr_a.cache
        plan.restart("lmr-a")
        lmr_a.resync()
        mdp_a = backbone.provider("mdp-a")
        assert mdp_a.outbox is not None
        mdp_a.outbox.drain()
        assert "doc1.rdf#host" in lmr_a.cache
        assert "doc2.rdf#host" in lmr_a.cache
        # Nothing was applied twice.
        assert (lmr_a.batches_received - lmr_a.dedup.applied
                == lmr_a.dedup.duplicates_ignored)

    def test_duplicated_notifications_applied_exactly_once(self, schema):
        plan = FaultPlan(seed=2)
        plan.set_link_faults(
            "mdp-a", "lmr-a", LinkFaults(duplicate_rate=1.0), symmetric=False
        )
        bus, backbone, lmr_a, lmr_b = _three_tier(schema, plan)
        lmr_a.subscribe(RULE)
        backbone.register_document(make_doc(1), at="mdp-a")
        assert "doc1.rdf#host" in lmr_a.cache
        assert lmr_a.dedup.duplicates_ignored >= 1
        assert (lmr_a.batches_received - lmr_a.dedup.applied
                == lmr_a.dedup.duplicates_ignored)
        assert bus.links[("mdp-a", "lmr-a")].duplicated >= 1

    def test_conflicting_partition_writes_converge_last_writer_wins(
        self, schema
    ):
        """Cross-site writes to one document during a partition resolve
        deterministically by the (counter, origin) version order."""
        plan = FaultPlan(seed=7)
        bus, backbone, lmr_a, lmr_b = _three_tier(schema, plan)
        backbone.register_document(make_doc(1, memory=92), at="mdp-a")
        assert backbone.is_synchronized()
        plan.partition({"mdp-a"}, {"mdp-b"})
        backbone.register_document(make_doc(1, memory=128), at="mdp-a")
        backbone.register_document(make_doc(1, memory=256), at="mdp-b")
        plan.heal()
        backbone.recover()
        assert backbone.is_synchronized()
        # Both wrote version counter 2; "mdp-b" wins the origin tiebreak.
        values = {
            name: provider.resource("doc1.rdf#info").get_one("memory").value
            for name, provider in backbone.providers.items()
        }
        assert values == {"mdp-a": 256, "mdp-b": 256}


class TestSeededChaos:
    """The acceptance contract: faulty runs converge to the clean run."""

    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_chaos_converges_to_fault_free_fixpoint(self, seed):
        faulty = run_chaos_scenario(seed, faulty=True)
        clean = run_chaos_scenario(seed, faulty=False)
        # The plan really injected faults, and a read during the
        # partition was served stale instead of raising.
        assert faulty.faults_injected > 0
        assert faulty.stale_read_observed
        assert faulty.lag_during_partition > 0
        # Convergence: every MDP and every LMR cache is byte-identical
        # to the fault-free run of the same workload.
        assert faulty.provider_snapshots == clean.provider_snapshots
        assert faulty.lmr_snapshots == clean.lmr_snapshots
        assert faulty.backbone_synchronized
        # Exactly-once application: every received-but-not-applied batch
        # is accounted as an ignored duplicate, nothing applied twice.
        assert (faulty.batches_received - faulty.batches_applied
                == faulty.duplicates_ignored)

    def test_clean_scenario_reports_no_faults(self):
        clean = run_chaos_scenario(1, faulty=False)
        assert clean.faults_injected == 0
        assert clean.duplicates_ignored == 0
        assert clean.backbone_synchronized
