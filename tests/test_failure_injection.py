"""Failure-injection tests: errors must surface, state must stay sound."""

import pytest

from repro.errors import MDVError, StorageError, SubscriptionError
from repro.mdv.provider import MetadataProvider
from repro.mdv.repository import LocalMetadataRepository
from repro.net.bus import NetworkBus
from repro.rdf.model import Document, URIRef


def make_doc(index, memory=92):
    doc = Document(f"doc{index}.rdf")
    provider = doc.new_resource("host", "CycleProvider")
    provider.add("serverHost", "a.uni-passau.de")
    provider.add("serverInformation", URIRef(f"doc{index}.rdf#info"))
    info = doc.new_resource("info", "ServerInformation")
    info.add("memory", memory)
    info.add("cpu", 600)
    return doc


class TestBusFailures:
    def test_handler_exception_propagates(self):
        bus = NetworkBus()

        def broken(message):
            raise RuntimeError("handler crash")

        bus.register("broken", broken)
        with pytest.raises(RuntimeError):
            bus.send("a", "broken", "x", None)
        # The message was still accounted (it did travel).
        assert bus.total_messages == 1

    def test_subscriber_crash_surfaces_to_publisher(self, schema):
        bus = NetworkBus()
        mdp = MetadataProvider(schema, name="mdp", bus=bus)
        lmr = LocalMetadataRepository("lmr", mdp, bus=bus)
        lmr.subscribe(
            "search CycleProvider c register c "
            "where c.serverHost contains 'passau'"
        )

        def broken(batch):
            raise RuntimeError("cache corrupted")

        lmr.apply_batch = broken  # simulate a crashing LMR
        bus.register("lmr", lmr._handle_message)
        with pytest.raises(RuntimeError):
            mdp.register_document(make_doc(1))
        # The MDP's own state committed before publishing.
        assert mdp.document_count() == 1


class TestTransactionalSoundness:
    def test_failed_update_leaves_filter_state_intact(self, schema):
        """A crash mid-update must roll the whole three-pass back."""
        mdp = MetadataProvider(schema)
        mdp.connect_subscriber("lmr", lambda batch: None)
        mdp.subscribe(
            "lmr",
            "search CycleProvider c register c "
            "where c.serverInformation.memory > 64",
        )
        doc = make_doc(1, memory=92)
        mdp.register_document(doc)
        matches_before = mdp.engine.current_matches(
            mdp.registry.subscriptions_of("lmr")[0].end_rule
        )

        engine = mdp.engine
        original_run = engine.run
        calls = {"count": 0}

        def exploding_run(*args, **kwargs):
            calls["count"] += 1
            if calls["count"] == 3:  # blow up in pass 3
                raise StorageError("disk on fire")
            return original_run(*args, **kwargs)

        engine.run = exploding_run
        from repro.rdf.diff import diff_documents

        updated = doc.copy()
        updated.get("doc1.rdf#info").set("memory", 16)
        with pytest.raises(StorageError):
            engine.process_diff(diff_documents(doc, updated))
        engine.run = original_run

        # The transaction rolled back: old state fully intact.
        end_rule = mdp.registry.subscriptions_of("lmr")[0].end_rule
        assert engine.current_matches(end_rule) == matches_before
        atoms = mdp.db.count(
            "filter_data", "uri_reference = ?", ("doc1.rdf#info",)
        )
        assert atoms == 3  # identity + memory + cpu, old version

        # And the system keeps working afterwards.
        outcome = engine.process_diff(diff_documents(doc, updated))
        assert outcome.unmatched


class TestInvalidInputs:
    def test_closed_database_raises_storage_error(self, schema):
        mdp = MetadataProvider(schema)
        mdp.db.close()
        with pytest.raises(StorageError):
            mdp.register_document(make_doc(1))

    def test_bad_rule_text_leaves_no_partial_subscription(self, schema):
        mdp = MetadataProvider(schema)
        mdp.connect_subscriber("lmr", lambda batch: None)
        with pytest.raises(MDVError):
            mdp.subscribe("lmr", "search Unicorn u register u")
        assert mdp.registry.subscriptions_of("lmr") == []
        assert mdp.registry.atom_count() == 0

    def test_or_rule_partial_registration_conflict(self, schema):
        """Subscribing the same or-rule twice fails cleanly."""
        mdp = MetadataProvider(schema)
        mdp.connect_subscriber("lmr", lambda batch: None)
        rule = (
            "search CycleProvider c register c "
            "where c.synthValue > 1 or c.synthValue < 0"
        )
        mdp.subscribe("lmr", rule)
        with pytest.raises(SubscriptionError):
            mdp.subscribe("lmr", rule)

    def test_unparseable_xml_rejected_without_state_change(self, schema):
        from repro.errors import DocumentParseError

        mdp = MetadataProvider(schema)
        with pytest.raises(DocumentParseError):
            mdp.register_document("<rdf:RDF", document_uri="x.rdf")
        assert mdp.document_count() == 0
