"""Package-surface tests: every advertised name must resolve."""

import importlib
import pkgutil

import pytest

PACKAGES = [
    "repro",
    "repro.rdf",
    "repro.storage",
    "repro.rules",
    "repro.filter",
    "repro.query",
    "repro.pubsub",
    "repro.net",
    "repro.obs",
    "repro.mdv",
    "repro.analysis",
    "repro.text",
    "repro.workload",
    "repro.bench",
    "repro.xmlext",
]


def _every_module() -> list[str]:
    """All importable module names under the ``repro`` package."""
    import repro

    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return sorted(names)


@pytest.mark.parametrize("module_name", _every_module())
def test_every_module_declares_all(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__"), f"{module_name} lacks __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name} does not resolve"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), package_name
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name}"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_package_has_docstring(package_name):
    package = importlib.import_module(package_name)
    assert package.__doc__, package_name


def test_version_exposed():
    import repro

    assert repro.__version__ == "1.0.0"


MODULES_WITH_DOCSTRINGS = [
    "repro.errors",
    "repro.rdf.model",
    "repro.rdf.schema",
    "repro.rdf.schema_io",
    "repro.rdf.parser",
    "repro.rdf.serializer",
    "repro.rdf.diff",
    "repro.storage.engine",
    "repro.storage.schema",
    "repro.storage.tables",
    "repro.rules.tokens",
    "repro.rules.parser",
    "repro.rules.ast",
    "repro.rules.normalize",
    "repro.rules.decompose",
    "repro.rules.atoms",
    "repro.rules.graph",
    "repro.rules.registry",
    "repro.rules.explain",
    "repro.filter.decompose",
    "repro.filter.matcher",
    "repro.filter.joins",
    "repro.filter.engine",
    "repro.filter.results",
    "repro.pubsub.notifications",
    "repro.pubsub.closure",
    "repro.pubsub.publisher",
    "repro.net.bus",
    "repro.analysis.diagnostics",
    "repro.analysis.intervals",
    "repro.analysis.lint",
    "repro.analysis.subsume",
    "repro.analysis.invariants",
    "repro.analysis.rulebase",
    "repro.analysis.code",
    "repro.mdv.provider",
    "repro.mdv.repository",
    "repro.mdv.cache",
    "repro.mdv.gc",
    "repro.mdv.client",
    "repro.mdv.backbone",
    "repro.mdv.consistency",
    "repro.mdv.batching",
    "repro.mdv.stats",
    "repro.text.ngrams",
    "repro.text.index",
    "repro.workload.documents",
    "repro.workload.rules",
    "repro.workload.scenarios",
    "repro.workload.registry",
    "repro.bench.harness",
    "repro.bench.figures",
    "repro.bench.ablations",
    "repro.bench.reporting",
    "repro.bench.analysis",
    "repro.xmlext.adapter",
]


@pytest.mark.parametrize("module_name", MODULES_WITH_DOCSTRINGS)
def test_every_module_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and len(module.__doc__) > 40, module_name
