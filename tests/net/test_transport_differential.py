"""Sim-vs-socket differential oracle.

The simulated :class:`NetworkBus` and the real :class:`SocketTransport`
must be *observably identical* to the metadata tier: the same seeded
workload, run once over each transport, has to produce byte-identical
notification streams (canonical wire encoding of every batch the LMR
receives) and the same final provider registry and LMR cache state.
Any divergence means one transport reorders, drops, duplicates, or
re-encodes something the other does not — exactly the class of bug a
per-transport unit test cannot see.
"""

from __future__ import annotations

import hashlib
import random

import pytest

from repro.mdv.provider import MetadataProvider
from repro.mdv.repository import LocalMetadataRepository
from repro.net.bus import NetworkBus
from repro.net.codec import dumps
from repro.net.socket import SocketTransport
from repro.obs.metrics import MetricsRegistry
from repro.rdf.schema import objectglobe_schema
from repro.workload.chaos import resource_snapshot
from repro.workload.documents import benchmark_document, document_uri
from tests.net.service_helpers import ProviderNode

RULES = (
    "search CycleProvider c register c",
    "search CycleProvider c register c "
    "where c.serverInformation.memory >= 96",
)
QUERY = "search CycleProvider c"
SEEDS = (1, 7, 42)
DOCUMENTS = 12


def _drive(seed: int, lmr: LocalMetadataRepository) -> None:
    """One deterministic workload: subscriptions, churn, a deletion."""
    for rule in RULES:
        lmr.subscribe(rule)
    rng = random.Random(seed)
    registered: list[int] = []
    for ordinal in range(DOCUMENTS):
        if registered and rng.random() < 0.4:
            index = rng.choice(registered)
        else:
            index = ordinal
            registered.append(index)
        lmr.register_document(benchmark_document(
            index,
            memory=rng.choice((32, 64, 96, 128)),
            server_host=f"host-{rng.randrange(4)}.example.org",
        ))
    victim = registered[rng.randrange(len(registered))]
    lmr.delete_document(document_uri(victim))
    lmr.resync()


def _capture_stream(transport, lmr: LocalMetadataRepository) -> list[bytes]:
    """Re-register the LMR behind a recorder of canonical batch bytes."""
    stream: list[bytes] = []

    def recorder(message):
        if message.kind == "notifications":
            stream.append(dumps(message.payload))
        return lmr._handle_message(message)

    transport.register(lmr.name, recorder)
    return stream


def _state_digest(lmr: LocalMetadataRepository) -> str:
    snapshots = sorted(
        resource_snapshot(resource) for resource in lmr.cache.resources()
    )
    return hashlib.sha256(dumps(snapshots)).hexdigest()


def _run_sim(seed: int, triggering: str):
    bus = NetworkBus(metrics=MetricsRegistry())
    provider = MetadataProvider(
        objectglobe_schema(),
        name="mdp-1",
        bus=bus,
        metrics=bus.metrics,
        triggering=triggering,
    )
    lmr = LocalMetadataRepository(
        "lmr-a", provider, bus=bus, metrics=bus.metrics
    )
    stream = _capture_stream(bus, lmr)
    _drive(seed, lmr)
    digest = bus.send("lmr-a", "mdp-1", "digest", None)
    provider.close()
    return stream, _state_digest(lmr), lmr.stats(), digest


def _run_socket(seed: int, triggering: str):
    node = ProviderNode(name="mdp-1", triggering=triggering)
    client = SocketTransport(metrics=MetricsRegistry()).start()
    try:
        client.add_peer("mdp-1", "127.0.0.1", node.port)
        node.add_peer("lmr-a", client.port)
        lmr = LocalMetadataRepository(
            "lmr-a", node.provider, bus=client, metrics=client.metrics
        )
        stream = _capture_stream(client, lmr)
        _drive(seed, lmr)
        digest = client.send("lmr-a", "mdp-1", "digest", None)
        return stream, _state_digest(lmr), lmr.stats(), digest
    finally:
        client.close()
        node.close()


@pytest.mark.parametrize("triggering", ["sql", "counting"])
@pytest.mark.parametrize("seed", SEEDS)
def test_sim_and_socket_transports_are_observably_identical(
    seed, triggering
):
    sim_stream, sim_state, sim_stats, sim_digest = _run_sim(seed, triggering)
    sock_stream, sock_state, sock_stats, sock_digest = _run_socket(
        seed, triggering
    )
    # The workload actually produced notifications — the oracle is not
    # vacuously comparing empty streams.
    assert sim_stream
    assert sim_stream == sock_stream
    assert sim_state == sock_state
    assert sim_stats == sock_stats
    assert sim_digest == sock_digest
