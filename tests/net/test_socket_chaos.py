"""Small-scale socket chaos run (tier-1 version of the nightly lane).

Kills the MDP daemon with SIGKILL mid-stream, restarts it, and asserts
the surviving LMR daemon converges to the exact state a clean run
reaches.  The nightly lane runs the same harness at full scale via
``python -m repro.workload.socket_chaos``.
"""

from __future__ import annotations

from repro.workload.socket_chaos import compare_runs, run_socket_chaos


def test_kill9_restart_converges_to_clean_run_state(tmp_path):
    interrupted = run_socket_chaos(
        seed=11, documents=8, kill_at=4, workdir=tmp_path / "interrupted"
    )
    clean = run_socket_chaos(
        seed=11, documents=8, kill_at=None, workdir=tmp_path / "clean"
    )
    assert interrupted.interrupted
    assert not clean.interrupted
    divergences = compare_runs(interrupted, clean)
    assert divergences == []
    assert interrupted.cache_digest == clean.cache_digest
    # The stream survived the crash: every document landed.
    assert interrupted.lmr_stats["entries"] == clean.lmr_stats["entries"]
