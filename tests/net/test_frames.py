"""Property and failure-mode tests for the frame protocol."""

from __future__ import annotations

import json
import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FrameError, FrameTooLargeError
from repro.net.frames import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    decode_frames,
    encode_frame,
)
from tests.conftest import prop_settings

# JSON-representable values (no NaN: canonical JSON, and NaN != NaN).
json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False, width=32)
    | st.text(max_size=40),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=10), children, max_size=4),
    max_leaves=12,
)
frame_bodies = st.dictionaries(st.text(max_size=16), json_values, max_size=6)


@prop_settings(max_examples=100)
@given(frame_bodies)
def test_roundtrip_single_frame(body):
    decoder = FrameDecoder()
    decoder.feed(encode_frame(body))
    assert decoder.next_frame() == body
    assert decoder.next_frame() is None
    assert decoder.pending_bytes == 0


@prop_settings(max_examples=50)
@given(st.lists(frame_bodies, min_size=1, max_size=5), st.randoms())
def test_roundtrip_stream_under_arbitrary_chunking(bodies, rng):
    stream = b"".join(encode_frame(body) for body in bodies)
    decoder = FrameDecoder()
    decoded = []
    position = 0
    while position < len(stream):
        step = rng.randint(1, 7)
        decoder.feed(stream[position:position + step])
        position += step
        while True:
            frame = decoder.next_frame()
            if frame is None:
                break
            decoded.append(frame)
    assert decoded == bodies
    assert decoder.pending_bytes == 0


@prop_settings(max_examples=50)
@given(st.text(max_size=200))
def test_unicode_payloads_roundtrip(text):
    body = {"payload": text}
    assert decode_frames(encode_frame(body)) == [body]


def test_empty_payload_roundtrips():
    assert decode_frames(encode_frame({})) == [{}]


def test_correlation_ids_roundtrip():
    bodies = [{"id": n, "type": "request"} for n in (0, 1, 2**31, 2**53)]
    stream = b"".join(encode_frame(body) for body in bodies)
    assert decode_frames(stream) == bodies


def test_oversized_encode_is_rejected():
    with pytest.raises(FrameTooLargeError):
        encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})


def test_non_serializable_body_is_rejected():
    with pytest.raises(FrameError):
        encode_frame({"x": object()})


def test_truncated_length_prefix_waits_for_more():
    decoder = FrameDecoder()
    decoder.feed(b"\x00\x00")
    assert decoder.next_frame() is None
    assert decoder.pending_bytes == 2


def test_truncated_body_waits_for_more():
    frame = encode_frame({"kind": "ping"})
    decoder = FrameDecoder()
    decoder.feed(frame[:-3])
    assert decoder.next_frame() is None
    decoder.feed(frame[-3:])
    assert decoder.next_frame() == {"kind": "ping"}


def test_garbage_json_body_raises_and_consumes():
    garbage = b"{]not json!"
    decoder = FrameDecoder()
    decoder.feed(struct.pack(">I", len(garbage)) + garbage)
    decoder.feed(encode_frame({"after": 1}))
    with pytest.raises(FrameError):
        decoder.next_frame()
    # The bad frame's bytes were consumed: the stream recovers.
    assert decoder.next_frame() == {"after": 1}


def test_non_object_body_raises_and_consumes():
    body = json.dumps([1, 2, 3]).encode()
    decoder = FrameDecoder()
    decoder.feed(struct.pack(">I", len(body)) + body)
    with pytest.raises(FrameError):
        decoder.next_frame()
    assert decoder.pending_bytes == 0


def test_invalid_utf8_body_raises():
    body = b"\xff\xfe{}"
    decoder = FrameDecoder()
    decoder.feed(struct.pack(">I", len(body)) + body)
    with pytest.raises(FrameError):
        decoder.next_frame()


def test_oversized_declared_length_is_not_consumed():
    decoder = FrameDecoder()
    decoder.feed(struct.pack(">I", MAX_FRAME_BYTES + 1) + b"abc")
    with pytest.raises(FrameTooLargeError):
        decoder.next_frame()
    # Frame sync is lost: the buffer is intentionally left in place so
    # the caller closes the connection instead of resynchronizing.
    assert decoder.pending_bytes == 7
    with pytest.raises(FrameTooLargeError):
        decoder.next_frame()


def test_decode_frames_rejects_trailing_bytes():
    stream = encode_frame({"a": 1}) + b"\x00\x00\x00"
    with pytest.raises(FrameError):
        decode_frames(stream)
