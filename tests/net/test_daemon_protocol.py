"""Socket-level tests against a real ``mdv serve`` subprocess.

Everything here talks raw TCP: frames are hand-built (including broken
ones) so the daemon's protocol handling is exercised exactly as a
buggy or malicious client would exercise it. The invariant under test:
a bad frame gets an error frame back (or a clean disconnect for
unrecoverable framing), and the daemon keeps serving afterwards.
"""

from __future__ import annotations

import json
import socket
import struct

import pytest

from repro.net.codec import to_wire
from repro.net.frames import FrameDecoder, encode_frame
from repro.workload.documents import benchmark_document
from repro.workload.socket_chaos import launch_node


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    workdir = tmp_path_factory.mktemp("daemon-protocol")
    config_path = workdir / "mdp.json"
    config_path.write_text(json.dumps({
        "name": "mdp-proto",
        "role": "mdp",
        "port": 0,
        "peers": {},
    }))
    node = launch_node(str(config_path))
    yield node
    node.terminate()


@pytest.fixture()
def conn(daemon):
    sock = socket.create_connection(("127.0.0.1", daemon.port), timeout=10)
    yield sock
    sock.close()


def _request(kind, payload=None, frame_id=1):
    return encode_frame({
        "v": 1,
        "type": "request",
        "id": frame_id,
        "source": "raw-client",
        "destination": "mdp-proto",
        "kind": kind,
        "payload": to_wire(payload),
    })


def _read_frame(sock):
    decoder = FrameDecoder()
    while True:
        frame = decoder.next_frame()
        if frame is not None:
            return frame
        chunk = sock.recv(65536)
        if not chunk:
            return None
        decoder.feed(chunk)


def test_ping_round_trips(conn):
    conn.sendall(_request("ping"))
    frame = _read_frame(conn)
    assert frame["type"] == "response"
    assert frame["id"] == 1
    assert frame["payload"] == "pong"


def test_unknown_kind_gets_error_frame_and_daemon_survives(conn):
    conn.sendall(_request("no-such-kind", frame_id=2))
    frame = _read_frame(conn)
    assert frame["type"] == "error"
    assert frame["id"] == 2
    assert frame["error"]["message"]
    # Same connection still works.
    conn.sendall(_request("ping", frame_id=3))
    assert _read_frame(conn)["payload"] == "pong"


def test_garbage_json_body_gets_error_frame(conn):
    garbage = b"this is not json {"
    conn.sendall(struct.pack(">I", len(garbage)) + garbage)
    frame = _read_frame(conn)
    assert frame["type"] == "error"
    conn.sendall(_request("ping", frame_id=4))
    assert _read_frame(conn)["payload"] == "pong"


def test_invalid_frame_type_gets_error_frame(conn):
    body = {"v": 1, "type": "surprise", "id": 9}
    conn.sendall(encode_frame(body))
    frame = _read_frame(conn)
    assert frame["type"] == "error"
    assert frame["id"] == 9


def test_malformed_payload_encoding_gets_error_frame(conn):
    body = {
        "v": 1, "type": "request", "id": 11,
        "source": "raw-client", "destination": "mdp-proto",
        "kind": "ping", "payload": {"_t": "no-such-tag"},
    }
    conn.sendall(encode_frame(body))
    frame = _read_frame(conn)
    assert frame["type"] == "error"
    assert frame["id"] == 11


def test_oversized_length_prefix_closes_connection_only(daemon, conn):
    # Declared length beyond MAX_FRAME_BYTES: framing sync is lost, so
    # the daemon replies with an error frame and drops this connection —
    # but keeps serving new ones.
    conn.sendall(struct.pack(">I", 1 << 30) + b"xxxx")
    frame = _read_frame(conn)
    if frame is not None:
        assert frame["type"] == "error"
        assert _read_frame(conn) is None  # then EOF
    with socket.create_connection(
        ("127.0.0.1", daemon.port), timeout=10
    ) as fresh:
        fresh.sendall(_request("ping", frame_id=5))
        assert _read_frame(fresh)["payload"] == "pong"


def test_truncated_frame_then_disconnect_is_harmless(daemon):
    with socket.create_connection(
        ("127.0.0.1", daemon.port), timeout=10
    ) as sock:
        sock.sendall(struct.pack(">I", 100) + b"only-part")
    with socket.create_connection(
        ("127.0.0.1", daemon.port), timeout=10
    ) as fresh:
        fresh.sendall(_request("ping", frame_id=6))
        assert _read_frame(fresh)["payload"] == "pong"


def test_real_work_after_abuse(conn):
    # After all of the above the daemon still does real registry work.
    document = benchmark_document(1)
    conn.sendall(_request("register_document", document, frame_id=7))
    frame = _read_frame(conn)
    assert frame["type"] == "response"
    conn.sendall(_request("browse", "search CycleProvider c", frame_id=8))
    frame = _read_frame(conn)
    assert frame["type"] == "response"
