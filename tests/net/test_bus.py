"""Unit tests for the simulated network bus."""

import pytest

from repro.errors import MDVError
from repro.net.bus import Message, NetworkBus


def test_send_delivers_and_returns_response():
    bus = NetworkBus()
    bus.register("echo", lambda message: ("echoed", message.payload))
    assert bus.send("a", "echo", "ping", 42) == ("echoed", 42)


def test_unknown_endpoint_raises():
    bus = NetworkBus()
    with pytest.raises(MDVError):
        bus.send("a", "nobody", "ping", None)


def test_message_metadata():
    bus = NetworkBus()
    seen = []
    bus.register("sink", seen.append)
    bus.send("src", "sink", "kind-x", {"k": 1})
    (message,) = seen
    assert message.source == "src"
    assert message.destination == "sink"
    assert message.kind == "kind-x"


def test_latency_accounting_round_trip():
    """A request/response exchange costs two traversals."""
    bus = NetworkBus(default_latency_ms=10.0)
    bus.register("b", lambda m: None)
    bus.send("a", "b", "x", "payload")
    bus.send("a", "b", "x", "payload")
    assert bus.simulated_ms == 40.0
    assert bus.total_messages == 2
    # The response trips are charged on the reverse link.
    assert bus.links[("a", "b")].latency_ms == 20.0
    assert bus.links[("b", "a")].latency_ms == 20.0


def test_one_way_charges_single_traversal():
    """Fire-and-forget notifications cost one traversal, not two."""
    bus = NetworkBus(default_latency_ms=10.0)
    bus.register("b", lambda m: None)
    bus.send_one_way("a", "b", "note", "payload")
    assert bus.simulated_ms == 10.0
    assert bus.total_messages == 1
    assert ("b", "a") not in bus.links


def test_per_link_latency_overrides_default():
    bus = NetworkBus(default_latency_ms=100.0)
    bus.register("lan-peer", lambda m: None)
    bus.set_latency("a", "lan-peer", 0.5)
    bus.send_one_way("a", "lan-peer", "x", "p")
    assert bus.simulated_ms == 0.5
    # Symmetric by default; a round trip charges both directions.
    assert bus.latency("lan-peer", "a") == 0.5
    bus.send("a", "lan-peer", "x", "p")
    assert bus.simulated_ms == 1.5


def test_asymmetric_latency():
    bus = NetworkBus()
    bus.set_latency("a", "b", 1.0, symmetric=False)
    assert bus.latency("a", "b") == 1.0
    assert bus.latency("b", "a") == bus.default_latency_ms


def test_link_stats_accumulate():
    bus = NetworkBus()
    bus.register("b", lambda m: None)
    bus.send("a", "b", "x", "12345")
    bus.send("a", "b", "x", "12345")
    stats = bus.links[("a", "b")]
    assert stats.messages == 2
    # JSON wire size: '"12345"' is 7 bytes per message.
    assert stats.bytes == 14


def test_payload_size_hook():
    class Sized:
        def approximate_size(self):
            return 1000

    bus = NetworkBus()
    bus.register("b", lambda m: None)
    bus.send("a", "b", "x", Sized())
    assert bus.links[("a", "b")].bytes == 1000


def test_message_approximate_size_fallback():
    message = Message("a", "b", "x", 12345)
    assert message.approximate_size() == 5


def test_endpoints_and_unregister():
    bus = NetworkBus()
    bus.register("b", lambda m: None)
    bus.register("a", lambda m: None)
    assert bus.endpoints() == ["a", "b"]
    bus.unregister("a")
    assert bus.endpoints() == ["b"]


def test_reset_stats():
    bus = NetworkBus()
    bus.register("b", lambda m: None)
    bus.send("a", "b", "x", "p")
    bus.reset_stats()
    assert bus.total_messages == 0
    assert bus.links == {}
    assert bus.simulated_ms == 0.0


def test_stats_summary_mentions_links():
    bus = NetworkBus()
    bus.register("b", lambda m: None)
    bus.send("a", "b", "x", "p")
    summary = bus.stats_summary()
    assert "a -> b" in summary
    assert "messages=1" in summary
