"""Shared plumbing for socket-transport tests.

:class:`ProviderNode` runs one MetadataProvider on its own thread, the
way the serve daemon runs it on a process's main thread: the thread
*builds* the provider (SQLite connections are thread-affine) and then
drains the transport's request queue, so every handler runs on the
state-owning thread while the transport's asyncio loop only does I/O.
"""

from __future__ import annotations

import threading

from repro.mdv.provider import MetadataProvider
from repro.net.socket import SocketTransport
from repro.obs.metrics import MetricsRegistry
from repro.rdf.schema import objectglobe_schema


class ProviderNode:
    """An in-process stand-in for one served MDP node."""

    def __init__(
        self,
        name: str = "mdp-1",
        metrics: MetricsRegistry | None = None,
        **provider_kwargs,
    ):
        self.name = name
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.transport = SocketTransport(
            dispatch="queue", metrics=self.metrics
        )
        self.transport.start()
        self.provider: MetadataProvider | None = None
        self._provider_kwargs = provider_kwargs
        self._stop = threading.Event()
        self._built = threading.Event()
        self._build_error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name=f"provider-node-{name}", daemon=True
        )
        self._thread.start()
        self._built.wait(timeout=30)
        if self._build_error is not None:
            raise self._build_error

    @property
    def port(self) -> int:
        return self.transport.port

    def _run(self) -> None:
        try:
            self.provider = MetadataProvider(
                objectglobe_schema(),
                name=self.name,
                bus=self.transport,
                metrics=self.metrics,
                **self._provider_kwargs,
            )
        except BaseException as exc:  # noqa: BLE001 - surfaced in __init__
            self._build_error = exc
            self._built.set()
            return
        self._built.set()
        while not self._stop.is_set():
            request = self.transport.next_request(timeout=0.1)
            if request is not None:
                self.transport.execute(request)
        while True:
            request = self.transport.next_request()
            if request is None:
                break
            self.transport.execute(request)
        self.provider.close()

    def add_peer(self, name: str, port: int) -> None:
        self.transport.add_peer(name, "127.0.0.1", port)

    def close(self) -> None:
        self._stop.set()
        self._thread.join(timeout=30)
        self.transport.close()
