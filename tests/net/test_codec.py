"""Round-trip tests for the wire codec (repro.net.codec)."""

from __future__ import annotations

import json

import pytest

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.errors import WireCodecError
from repro.filter.results import FilterRunResult, PublishOutcome
from repro.mdv.outbox import ReplicaUpdate
from repro.net.codec import dumps, from_wire, loads, to_wire, wire_size
from repro.pubsub.notifications import (
    DeleteNotification,
    MatchNotification,
    NotificationBatch,
    ResourcePayload,
    UnmatchNotification,
)
from repro.rdf.model import Document, Literal, Resource, URIRef
from repro.rules.registry import Subscription
from tests.conftest import figure1_document


def roundtrip(value):
    return loads(dumps(value))


@pytest.mark.parametrize("value", [
    None, True, False, 0, -17, 3.25, "", "héllo ✓", "search X",
    [1, "two", None], [[1], [2, [3]]],
    {"a": 1, "b": [True]}, {},
])
def test_scalars_and_json_containers_pass_through(value):
    assert to_wire(value) == value
    assert roundtrip(value) == value


def test_tuples_survive_as_tuples():
    version = (3, "mdp-1")
    decoded = roundtrip(version)
    assert decoded == version
    assert isinstance(decoded, tuple)
    # The property versions depend on: tuple comparison after decode.
    assert decoded >= (2, "mdp-1")


def test_nested_tuple_in_dict_value():
    digest = {"doc1.rdf": (4, "mdp-2"), "doc2.rdf": (1, "mdp-1")}
    decoded = roundtrip(digest)
    assert decoded == digest
    assert all(isinstance(v, tuple) for v in decoded.values())


def test_sets_are_canonically_ordered():
    value = {3, 1, 2}
    assert roundtrip(value) == value
    assert isinstance(roundtrip(value), set)
    # Same set, different construction order -> identical bytes.
    assert dumps({3, 1, 2}) == dumps({2, 1, 3})


def test_uriref_is_distinguished_from_str():
    uri = URIRef("doc.rdf#host")
    decoded = roundtrip(uri)
    assert decoded == uri
    assert isinstance(decoded, URIRef)
    plain = roundtrip("doc.rdf#host")
    assert not isinstance(plain, URIRef)


def test_uriref_dict_keys_survive():
    value = {URIRef("a#r"): {URIRef("b#s")}, "plain": 1}
    decoded = roundtrip(value)
    assert decoded == value
    key_types = {type(key) for key in decoded}
    assert URIRef in key_types


def test_literal_roundtrip():
    for inner in ("text", 42, 2.5):
        decoded = roundtrip(Literal(inner))
        assert isinstance(decoded, Literal)
        assert decoded.value == inner


def test_tag_colliding_dict_key_is_preserved():
    value = {"_t": "not-a-tag", "x": 1}
    assert roundtrip(value) == value


def test_document_roundtrip_preserves_order_and_values():
    document = figure1_document()
    decoded = roundtrip(document)
    assert isinstance(decoded, Document)
    assert decoded.uri == document.uri
    originals = list(document)
    copies = list(decoded)
    assert [r.uri for r in copies] == [r.uri for r in originals]
    for original, copy in zip(originals, copies):
        assert copy.rdf_class == original.rdf_class
        assert copy.property_names() == original.property_names()
        for name in original.property_names():
            assert copy.get(name) == original.get(name)
            assert [type(v) for v in copy.get(name)] == [
                type(v) for v in original.get(name)
            ]


def test_notification_batch_roundtrip():
    document = figure1_document()
    resource = next(iter(document))
    batch = NotificationBatch(
        subscriber="lmr-a",
        notifications=[
            MatchNotification(
                sub_id=7,
                rule_text="search CycleProvider c register c",
                payload=ResourcePayload(resource=resource, strong_closure=[]),
            ),
            UnmatchNotification(
                sub_id=7,
                rule_text="search CycleProvider c register c",
                uri=URIRef("doc.rdf#gone"),
            ),
            DeleteNotification(uri=URIRef("doc.rdf#dead")),
        ],
        source="mdp-1",
        seq=12,
    )
    decoded = roundtrip(batch)
    assert isinstance(decoded, NotificationBatch)
    assert decoded.subscriber == "lmr-a"
    assert decoded.source == "mdp-1" and decoded.seq == 12
    kinds = [type(n).__name__ for n in decoded.notifications]
    assert kinds == [
        "MatchNotification", "UnmatchNotification", "DeleteNotification"
    ]
    assert decoded.notifications[0].payload.resource.uri == resource.uri
    assert decoded.ack() == batch.ack()


def test_replica_update_roundtrip():
    update = ReplicaUpdate(
        document_uri="doc.rdf",
        document=figure1_document(),
        version=(5, "mdp-2"),
        source="mdp-2",
        seq=3,
    )
    decoded = roundtrip(update)
    assert isinstance(decoded, ReplicaUpdate)
    assert decoded.version == (5, "mdp-2")
    assert isinstance(decoded.version, tuple)
    assert decoded.document.uri == "doc.rdf"


def test_subscription_and_diagnostic_roundtrip():
    subscription = Subscription(
        sub_id=4, subscriber="lmr-a",
        rule_text="search CycleProvider c register c", end_rule=9,
    )
    decoded = roundtrip(subscription)
    assert isinstance(decoded, Subscription)
    assert (decoded.sub_id, decoded.end_rule) == (4, 9)

    diagnostic = Diagnostic(
        severity=Severity.WARNING,
        code="MDV020",
        message="always matches",
        span=(3, 9),
        hint="drop the predicate",
    )
    decoded = roundtrip(diagnostic)
    assert isinstance(decoded, Diagnostic)
    assert decoded.severity is Severity.WARNING
    assert decoded.span == (3, 9)


def test_publish_outcome_roundtrip():
    run = FilterRunResult(
        pairs={(1, URIRef("a#r"))},
        iterations=2,
        triggering_hits=5,
        triggering_seconds=0.25,
        join_seconds=0.5,
    )
    outcome = PublishOutcome(
        matched={1: {URIRef("a#r")}},
        unmatched={2: {URIRef("b#s")}},
        deleted={URIRef("c#t")},
        passes=[run],
    )
    decoded = roundtrip(outcome)
    assert isinstance(decoded, PublishOutcome)
    assert decoded.matched == outcome.matched
    assert decoded.unmatched == outcome.unmatched
    assert decoded.deleted == outcome.deleted
    assert decoded.passes[0].pairs == run.pairs
    assert decoded.summary() == outcome.summary()


def test_unknown_type_raises_wire_codec_error():
    class Opaque:
        pass

    with pytest.raises(WireCodecError):
        to_wire(Opaque())
    with pytest.raises(WireCodecError):
        dumps({"x": Opaque()})


def test_malformed_wire_values_raise():
    with pytest.raises(WireCodecError):
        from_wire({"_t": "no-such-tag"})
    with pytest.raises(WireCodecError):
        from_wire({"_t": "res"})  # missing fields
    with pytest.raises(WireCodecError):
        loads(b"{not json")


def test_wire_size_is_serialized_length():
    value = {"a": (1, "x"), "s": {1, 2}}
    assert wire_size(value) == len(dumps(value))
    assert wire_size("12345") == len(json.dumps("12345").encode())


def test_dumps_is_canonical():
    assert dumps({"b": 1, "a": 2}) == dumps({"a": 2, "b": 1})
