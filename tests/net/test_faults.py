"""Unit tests for the deterministic fault-injection plane."""

import pytest

from repro.errors import DeliveryError, EndpointDownError, NetworkError
from repro.net.bus import NetworkBus
from repro.net.faults import FaultDecision, FaultPlan, LinkFaults


class TestLinkFaults:
    def test_rates_are_validated(self):
        with pytest.raises(ValueError):
            LinkFaults(drop_rate=1.5)
        with pytest.raises(ValueError):
            LinkFaults(duplicate_rate=-0.1)
        with pytest.raises(ValueError):
            LinkFaults(error_rate=2.0)
        with pytest.raises(ValueError):
            LinkFaults(delay_ms=-1.0)
        with pytest.raises(ValueError):
            LinkFaults(delay_jitter_ms=-0.5)

    def test_defaults_are_clean(self):
        faults = LinkFaults()
        assert faults.drop_rate == 0.0
        assert faults.duplicate_rate == 0.0
        assert faults.error_rate == 0.0
        assert faults.delay_ms == 0.0


class TestFaultPlanDeterminism:
    def _decision_stream(self, seed, count=200):
        plan = FaultPlan(seed=seed)
        plan.set_default_faults(
            LinkFaults(drop_rate=0.2, duplicate_rate=0.2, error_rate=0.1,
                       delay_jitter_ms=4.0)
        )
        return [plan.decide("a", "b") for _ in range(count)]

    def test_same_seed_same_decisions(self):
        assert self._decision_stream(42) == self._decision_stream(42)

    def test_different_seed_different_decisions(self):
        assert self._decision_stream(1) != self._decision_stream(2)

    def test_reachability_checks_consume_no_randomness(self):
        """Crashed-endpoint rulings must not advance the random stream."""
        plan = FaultPlan(seed=7)
        plan.set_default_faults(LinkFaults(drop_rate=0.3))
        plan.crash("down")
        for _ in range(50):
            plan.decide("a", "down")  # all unreachable, zero draws
        tail = [plan.decide("a", "b") for _ in range(100)]

        fresh = FaultPlan(seed=7)
        fresh.set_default_faults(LinkFaults(drop_rate=0.3))
        assert tail == [fresh.decide("a", "b") for _ in range(100)]

    def test_clean_links_consume_no_randomness(self):
        """Fault-free links reuse the shared CLEAN decision, no draws."""
        plan = FaultPlan(seed=7)
        plan.set_link_faults("a", "b", LinkFaults(drop_rate=0.3))
        for _ in range(50):
            assert plan.decide("x", "y") == FaultDecision()
        tail = [plan.decide("a", "b") for _ in range(100)]

        fresh = FaultPlan(seed=7)
        fresh.set_link_faults("a", "b", LinkFaults(drop_rate=0.3))
        assert tail == [fresh.decide("a", "b") for _ in range(100)]


class TestFaultPlanScripting:
    def test_link_faults_symmetric_by_default(self):
        plan = FaultPlan()
        faults = LinkFaults(drop_rate=0.5)
        plan.set_link_faults("a", "b", faults)
        assert plan.link_faults("a", "b") is faults
        assert plan.link_faults("b", "a") is faults

    def test_link_faults_asymmetric(self):
        plan = FaultPlan()
        faults = LinkFaults(drop_rate=0.5)
        plan.set_link_faults("a", "b", faults, symmetric=False)
        assert plan.link_faults("a", "b") is faults
        assert plan.link_faults("b", "a") == LinkFaults()

    def test_crash_and_restart(self):
        plan = FaultPlan()
        plan.crash("x")
        assert plan.crashed("x")
        assert not plan.is_reachable("a", "x")
        assert not plan.is_reachable("x", "a")
        plan.restart("x")
        assert plan.is_reachable("a", "x")

    def test_partition_cuts_both_directions(self):
        plan = FaultPlan()
        plan.partition({"a", "b"}, {"c"})
        assert not plan.is_reachable("a", "c")
        assert not plan.is_reachable("c", "b")
        assert plan.is_reachable("a", "b")  # same side stays connected
        plan.heal()
        assert plan.is_reachable("a", "c")

    def test_overlapping_partition_rejected(self):
        plan = FaultPlan()
        with pytest.raises(ValueError):
            plan.partition({"a", "b"}, {"b", "c"})

    def test_heal_does_not_restart_crashed_endpoints(self):
        plan = FaultPlan()
        plan.crash("x")
        plan.partition({"a"}, {"b"})
        plan.heal()
        assert plan.is_reachable("a", "b")
        assert not plan.is_reachable("a", "x")

    def test_fault_counters(self):
        plan = FaultPlan(seed=1)
        plan.set_default_faults(LinkFaults(drop_rate=1.0))
        plan.decide("a", "b")
        plan.crash("x")
        plan.decide("a", "x")
        assert plan.decisions == 2
        assert plan.faults_injected == 2


class TestBusIntegration:
    def _bus(self, plan):
        bus = NetworkBus(default_latency_ms=10.0, fault_plan=plan)
        bus.register("b", lambda m: "pong")
        return bus

    def test_dropped_message_raises_delivery_error_and_counts(self):
        plan = FaultPlan(seed=1)
        plan.set_link_faults("a", "b", LinkFaults(drop_rate=1.0))
        bus = self._bus(plan)
        with pytest.raises(DeliveryError):
            bus.send("a", "b", "x", "p")
        stats = bus.links[("a", "b")]
        assert stats.dropped == 1
        assert stats.faults == 1
        # The message travelled before being lost: latency was charged.
        assert stats.latency_ms == 10.0

    def test_errored_link_raises_network_error(self):
        plan = FaultPlan(seed=1)
        plan.set_link_faults("a", "b", LinkFaults(error_rate=1.0))
        bus = self._bus(plan)
        with pytest.raises(NetworkError):
            bus.send("a", "b", "x", "p")
        assert bus.links[("a", "b")].errored == 1

    def test_duplicate_delivers_twice_and_charges_twice(self):
        plan = FaultPlan(seed=1)
        plan.set_link_faults("a", "b", LinkFaults(duplicate_rate=1.0))
        calls = []
        bus = NetworkBus(default_latency_ms=10.0, fault_plan=plan)
        bus.register("b", calls.append)
        bus.send_one_way("a", "b", "x", "p")
        assert len(calls) == 2
        stats = bus.links[("a", "b")]
        assert stats.duplicated == 1
        assert stats.messages == 2
        assert stats.latency_ms == 20.0

    def test_crashed_destination_times_out(self):
        plan = FaultPlan(seed=1)
        plan.crash("b")
        bus = self._bus(plan)
        with pytest.raises(EndpointDownError) as excinfo:
            bus.send("a", "b", "x", "p")
        assert excinfo.value.endpoint == "b"
        assert excinfo.value.reason == "crashed"
        stats = bus.links[("a", "b")]
        assert stats.timeouts == 1
        # A timeout still costs the sender a full traversal of waiting.
        assert stats.latency_ms == 10.0

    def test_partitioned_destination_reports_partition(self):
        plan = FaultPlan(seed=1)
        plan.partition({"a"}, {"b"})
        bus = self._bus(plan)
        with pytest.raises(EndpointDownError) as excinfo:
            bus.send("a", "b", "x", "p")
        assert "partitioned" in excinfo.value.reason
        plan.heal()
        assert bus.send("a", "b", "x", "p") == "pong"

    def test_injected_delay_is_accounted(self):
        plan = FaultPlan(seed=1)
        plan.set_link_faults(
            "a", "b", LinkFaults(delay_ms=5.0), symmetric=False
        )
        bus = self._bus(plan)
        bus.send_one_way("a", "b", "x", "p")
        stats = bus.links[("a", "b")]
        assert stats.fault_delay_ms == 5.0
        assert stats.latency_ms == 15.0
        assert bus.simulated_ms == 15.0

    def test_sleep_advances_simulated_clock(self):
        bus = NetworkBus()
        bus.sleep(25.0)
        assert bus.simulated_ms == 25.0
        with pytest.raises(ValueError):
            bus.sleep(-1.0)
