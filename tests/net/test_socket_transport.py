"""In-process tests for the asyncio socket transport."""

from __future__ import annotations

import threading

import pytest

from repro.errors import (
    EndpointDownError,
    NetworkError,
    RemoteError,
    SubscriptionError,
    WireCodecError,
)
from repro.net.bus import Message
from repro.net.socket import SocketTransport
from repro.net.transport import Transport
from repro.obs.metrics import MetricsRegistry
from repro.rdf.model import URIRef


@pytest.fixture()
def server():
    transport = SocketTransport(metrics=MetricsRegistry()).start()
    yield transport
    transport.close()


@pytest.fixture()
def client(server):
    transport = SocketTransport(
        metrics=MetricsRegistry(),
        request_timeout_s=10.0,
        connect_attempts=2,
        connect_base_delay_s=0.01,
    ).start()
    yield transport
    transport.close()


def _peer(client, server, name):
    client.add_peer(name, "127.0.0.1", server.port)


def test_satisfies_transport_protocol(server):
    assert isinstance(server, Transport)


def test_request_response_roundtrip(server, client):
    server.register("echo", lambda m: (m.kind, m.payload))
    _peer(client, server, "echo")
    result = client.send("cli", "echo", "ping", {"v": (1, "mdp"), "u": URIRef("a#r")})
    assert result == ("ping", {"v": (1, "mdp"), "u": URIRef("a#r")})
    assert isinstance(result[1]["u"], URIRef)


def test_one_way_notify_delivers(server, client):
    received = []
    done = threading.Event()

    def handler(message: Message):
        received.append((message.source, message.kind, message.payload))
        done.set()

    server.register("sink", handler)
    _peer(client, server, "sink")
    assert client.send_one_way("cli", "sink", "note", [1, 2]) is None
    assert done.wait(timeout=10)
    assert received == [("cli", "note", [1, 2])]


def test_remote_domain_error_is_reconstructed(server, client):
    def handler(message):
        raise SubscriptionError("already subscribed")

    server.register("mdp", handler)
    _peer(client, server, "mdp")
    with pytest.raises(SubscriptionError, match="already subscribed"):
        client.send("cli", "mdp", "subscribe", None)


def test_remote_unknown_error_becomes_remote_error(server, client):
    def handler(message):
        raise ValueError("unknown message kind 'x'")

    server.register("mdp", handler)
    _peer(client, server, "mdp")
    with pytest.raises(RemoteError) as excinfo:
        client.send("cli", "mdp", "x", None)
    assert excinfo.value.remote_type == "ValueError"
    assert not isinstance(excinfo.value, NetworkError)


def test_remote_network_error_is_never_retryable(server, client):
    # A handler that itself failed with a NetworkError still *received*
    # the request — reconstructing the retryable type would make the
    # outbox re-send a processed request.
    def handler(message):
        raise NetworkError("downstream link failed")

    server.register("mdp", handler)
    _peer(client, server, "mdp")
    with pytest.raises(RemoteError):
        client.send("cli", "mdp", "x", None)


def test_unregistered_endpoint_is_retryable(server, client):
    # The server is up but the endpoint isn't registered (a daemon
    # still booting): no handler ran, so the sender may retry.
    _peer(client, server, "ghost")
    with pytest.raises(EndpointDownError):
        client.send("cli", "ghost", "ping", None)


def test_unreachable_peer_raises_endpoint_down(client):
    client.add_peer("nowhere", "127.0.0.1", 9)  # discard port: refused
    with pytest.raises(EndpointDownError):
        client.send("cli", "nowhere", "ping", None)
    assert client.metrics.counter("net.socket.retries").value >= 1


def test_unknown_destination_without_address(client):
    with pytest.raises(EndpointDownError):
        client.send("cli", "never-heard-of-it", "ping", None)


def test_request_timeout(server):
    block = threading.Event()

    def handler(message):
        block.wait(timeout=30)
        return None

    server.register("slow", handler)
    client = SocketTransport(
        metrics=MetricsRegistry(), request_timeout_s=0.3
    ).start()
    try:
        client.add_peer("slow", "127.0.0.1", server.port)
        with pytest.raises(EndpointDownError, match="timed out"):
            client.send("cli", "slow", "ping", None)
        assert client.metrics.counter("net.socket.timeouts").value == 1
    finally:
        block.set()
        client.close()


def test_reconnect_after_server_restart(client):
    first = SocketTransport(metrics=MetricsRegistry()).start()
    first.register("echo", lambda m: m.payload)
    client.add_peer("echo", "127.0.0.1", first.port)
    assert client.send("cli", "echo", "k", 1) == 1
    port = first.port
    first.close()
    with pytest.raises(NetworkError):
        client.send("cli", "echo", "k", 2)
    second = SocketTransport(
        metrics=MetricsRegistry(), port=port
    ).start()
    try:
        second.register("echo", lambda m: m.payload * 10)
        assert client.send("cli", "echo", "k", 3) == 30
    finally:
        second.close()


def test_local_endpoint_short_circuit():
    transport = SocketTransport(metrics=MetricsRegistry())
    transport.register("local", lambda m: m.payload + 1)
    # No start() needed: local endpoints never touch the network.
    assert transport.send("cli", "local", "k", 41) == 42
    assert transport.metrics.counter("net.messages").value == 1
    transport.close()


def test_unencodable_payload_raises_caller_side(server, client):
    server.register("echo", lambda m: m.payload)
    _peer(client, server, "echo")

    class Opaque:
        pass

    with pytest.raises(WireCodecError):
        client.send("cli", "echo", "k", Opaque())
    # Nothing was charged for the failed encode.
    assert client.metrics.counter("net.messages").value == 0


def test_unencodable_result_is_an_error_frame(server, client):
    class Opaque:
        pass

    server.register("bad", lambda m: Opaque())
    _peer(client, server, "bad")
    with pytest.raises(WireCodecError):
        client.send("cli", "bad", "k", None)


def test_queue_dispatch_runs_on_owner_thread(server, client):
    queue_server = SocketTransport(
        metrics=MetricsRegistry(), dispatch="queue"
    ).start()
    try:
        seen_threads = []
        queue_server.register(
            "node", lambda m: seen_threads.append(threading.current_thread())
            or m.payload
        )
        client.add_peer("node", "127.0.0.1", queue_server.port)
        done = threading.Event()
        results = []

        def call():
            results.append(client.send("cli", "node", "k", 5))
            done.set()

        caller = threading.Thread(target=call, daemon=True)
        caller.start()
        # The request is parked until the owning thread drains it.
        request = None
        for _ in range(100):
            request = queue_server.next_request(timeout=0.1)
            if request is not None:
                break
        assert request is not None
        queue_server.execute(request)
        assert done.wait(timeout=10)
        caller.join(timeout=10)
        assert results == [5]
        assert seen_threads == [threading.current_thread()]
    finally:
        queue_server.close()


def test_inline_kinds_override_queue_dispatch(client):
    queue_server = SocketTransport(
        metrics=MetricsRegistry(), dispatch="queue"
    ).start()
    try:
        queue_server.register("node", lambda m: m.kind)
        queue_server.set_inline_kinds("node", {"notifications"})
        client.add_peer("node", "127.0.0.1", queue_server.port)
        # Inline kind: answered without anyone draining the queue.
        assert client.send("cli", "node", "notifications", None) == (
            "notifications"
        )
        assert queue_server.pending_requests() == 0
    finally:
        queue_server.close()


def test_counters_charge_sender_side(server, client):
    server.register("echo", lambda m: m.payload)
    _peer(client, server, "echo")
    client.send("cli", "echo", "k", "12345")
    assert client.metrics.counter("net.messages").value == 1
    assert client.metrics.counter("net.bytes").value == 7  # '"12345"'
    # The receiving transport never touches the shared counters …
    assert server.metrics.counter("net.messages").value == 0
    assert server.metrics.counter("net.bytes").value == 0
    # … but does account raw socket traffic and requests.
    assert server.metrics.counter("net.socket.requests").value == 1
    assert server.metrics.counter("net.socket.bytes_received").value > 0


def test_port_zero_binds_an_os_assigned_port(server):
    assert server.port > 0


def test_send_from_io_thread_is_rejected(server, client):
    # An inline handler calling send() would deadlock the loop; the
    # transport refuses instead.
    errors = []

    def handler(message):
        try:
            client.send("inner", "anywhere", "k", None)
        except RuntimeError as exc:
            errors.append(str(exc))
            raise
        return None

    client.register("loopback", handler)
    server.register("fwd", lambda m: None)
    # Local short-circuit calls the handler on *this* thread, which is
    # allowed; to hit the I/O thread we go over the wire.
    probe = SocketTransport(metrics=MetricsRegistry()).start()
    try:
        probe.add_peer("loopback", "127.0.0.1", client.port)
        with pytest.raises(RemoteError):
            probe.send("cli", "loopback", "k", None)
        assert errors and "I/O thread" in errors[0]
    finally:
        probe.close()
