"""Traffic-accounting parity between the sim bus and the socket transport.

``Message.approximate_size`` is defined as the payload's JSON wire size,
so the simulated bus's ``net.bytes`` must equal what the socket
transport charges for the same payloads — the sim's traffic figures are
only meaningful if they predict real wire bytes.
"""

from __future__ import annotations

import pytest

from repro.net.bus import Message, NetworkBus
from repro.net.codec import wire_size
from repro.net.socket import SocketTransport
from repro.obs.metrics import MetricsRegistry
from repro.rdf.model import URIRef
from tests.conftest import figure1_document

PAYLOADS = [
    None,
    "pong",
    {"watermark": 7, "subscriber": "lmr-a"},
    [(3, "mdp-1"), URIRef("doc.rdf#host")],
    {1, 2, 3},
]


def _charge_over_bus(payloads) -> tuple[int, int]:
    bus = NetworkBus(metrics=MetricsRegistry())
    bus.register("sink", lambda message: None)
    for payload in payloads:
        bus.send("cli", "sink", "k", payload)
    return (
        bus.metrics.counter("net.messages").value,
        bus.metrics.counter("net.bytes").value,
    )


def _charge_over_socket(payloads) -> tuple[int, int]:
    server = SocketTransport(metrics=MetricsRegistry()).start()
    client = SocketTransport(metrics=MetricsRegistry()).start()
    try:
        server.register("sink", lambda message: None)
        client.add_peer("sink", "127.0.0.1", server.port)
        for payload in payloads:
            client.send("cli", "sink", "k", payload)
        return (
            client.metrics.counter("net.messages").value,
            client.metrics.counter("net.bytes").value,
        )
    finally:
        client.close()
        server.close()


def test_net_bytes_parity_simple_payloads():
    assert _charge_over_bus(PAYLOADS) == _charge_over_socket(PAYLOADS)


def test_net_bytes_parity_document_payload():
    payloads = [figure1_document()]
    assert _charge_over_bus(payloads) == _charge_over_socket(payloads)


def test_message_approximate_size_is_wire_size():
    document = figure1_document()
    for payload in [*PAYLOADS, document]:
        message = Message(
            source="a", destination="b", kind="k", payload=payload
        )
        assert message.approximate_size() == wire_size(payload)


@pytest.mark.parametrize("payload,expected", [
    ("12345", 7),      # '"12345"'
    (None, 4),         # 'null'
    ({"a": 1}, 7),     # '{"a":1}' (canonical compact separators)
])
def test_wire_size_regression_values(payload, expected):
    message = Message(
        source="a", destination="b", kind="k", payload=payload
    )
    assert message.approximate_size() == expected
