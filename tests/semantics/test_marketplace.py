"""The marketplace scenario and registry hygiene under unsubscribes."""

from __future__ import annotations

import pytest

from repro.analysis import audit_database
from repro.mdv.provider import MetadataProvider
from repro.semantics import SEMANTICS_MODES
from repro.storage.schema import TEXT_TABLES, TRIGGER_TABLES
from repro.workload.marketplace import (
    MINIMUM_DEGREE,
    SUBSCRIPTIONS,
    expected_matches,
    listings,
    marketplace_schema,
    run_marketplace,
    seed_vocabulary,
)


@pytest.mark.parametrize("semantics", SEMANTICS_MODES)
def test_marketplace_matches_prediction(semantics):
    assert run_marketplace(semantics) == expected_matches(semantics)


def test_taxonomy_recovers_matches_off_cannot():
    """The ISSUE's acceptance bar: a subscription that matches under
    ``taxonomy`` but *cannot* match under ``off``."""
    off = expected_matches("off")
    taxonomy = expected_matches("taxonomy")
    gained = {
        subscriber
        for subscriber, uris in taxonomy.items()
        if set(uris) - set(off[subscriber])
    }
    assert gained  # predicted…
    live_off = run_marketplace("off")
    live_tax = run_marketplace("taxonomy")
    for subscriber in gained:  # …and observed on the live engine
        assert set(live_tax[subscriber]) > set(live_off[subscriber])


def test_every_degree_appears_in_the_scenario():
    degrees = sorted(set(MINIMUM_DEGREE.values()))
    assert degrees == [0, 1, 2, 3]


def test_unsubscribe_drops_all_expanded_atoms():
    """No semantic row may survive its rule — MDV03x audit stays clean."""
    mdp = MetadataProvider(
        marketplace_schema(), name="mkt", semantics="mappings"
    )
    try:
        seed_vocabulary(mdp)
        for subscriber, rule_text in SUBSCRIPTIONS:
            mdp.subscribe(subscriber, rule_text)
        for doc in listings():
            mdp.register_document(doc)
        semantic_rows = sum(
            mdp.db.count(table, "semantic = 1") for table in TRIGGER_TABLES
        )
        assert semantic_rows > 0

        for subscriber, rule_text in SUBSCRIPTIONS:
            mdp.unsubscribe(subscriber, rule_text)

        for table in (*TRIGGER_TABLES, *TEXT_TABLES):
            assert mdp.db.count(table) == 0, f"orphaned rows in {table}"
        report = audit_database(mdp.db)
        assert not report.errors()
        assert not report.warnings()
    finally:
        mdp.close()


def test_off_leaves_no_semantic_rows():
    """``semantics="off"`` must be byte-identical to today: the
    vocabulary may be registered, but no triggering row carries it."""
    mdp = MetadataProvider(marketplace_schema(), name="mkt-off")
    try:
        seed_vocabulary(mdp)
        for subscriber, rule_text in SUBSCRIPTIONS:
            mdp.subscribe(subscriber, rule_text)
        for table in TRIGGER_TABLES:
            assert mdp.db.count(table, "semantic = 1") == 0
    finally:
        mdp.close()
