"""The MDV07x vocabulary audit and the MDV075 advisor extension."""

from __future__ import annotations

import pytest

import repro.analysis.rulebase as rulebase
from repro.analysis import (
    Severity,
    advise_indexes,
    audit_registry,
    audit_vocabulary,
)
from repro.mdv.provider import MetadataProvider
from repro.storage.engine import Database
from repro.workload.marketplace import (
    SUBSCRIPTIONS,
    listings,
    marketplace_schema,
    seed_vocabulary,
)
from repro.workload.registry import build_registry, semantic_schema


@pytest.fixture()
def marketplace_mdp():
    mdp = MetadataProvider(
        marketplace_schema(), name="lint", semantics="mappings"
    )
    seed_vocabulary(mdp)
    for subscriber, rule_text in SUBSCRIPTIONS:
        mdp.subscribe(subscriber, rule_text)
    for doc in listings():
        mdp.register_document(doc)
    yield mdp
    mdp.close()


def _codes(report):
    return sorted({d.code for d in report})


def test_healthy_vocabulary_is_clean(marketplace_mdp):
    report = audit_vocabulary(marketplace_mdp.db, marketplace_schema())
    assert list(report) == []


def test_mdv070_unknown_property_synonym(marketplace_mdp):
    marketplace_mdp.register_synonyms("property", ["price", "pricex"])
    report = audit_vocabulary(marketplace_mdp.db, marketplace_schema())
    assert "MDV070" in _codes(report)
    assert any("pricex" in d.message for d in report)


def test_mdv070_unknown_taxonomy_concept(marketplace_mdp):
    marketplace_mdp.register_taxonomy_edge("zeppelin", "vehicle")
    report = audit_vocabulary(marketplace_mdp.db, marketplace_schema())
    assert any(
        d.code == "MDV070" and "zeppelin" in d.message for d in report
    )


def test_mdv071_corrupted_closure(marketplace_mdp):
    db = marketplace_mdp.db
    # A pair no edge path entails…
    db.execute(
        "INSERT INTO semantic_taxonomy_closure (ancestor, descendant) "
        "VALUES ('vehicle', 'boat')"
    )
    # …and a missing entailed pair (pickup ->* vehicle is registered).
    db.execute(
        "DELETE FROM semantic_taxonomy_closure "
        "WHERE ancestor = 'vehicle' AND descendant = 'pickup'"
    )
    report = audit_vocabulary(db, marketplace_schema())
    errors = [d for d in report if d.code == "MDV071"]
    assert len(errors) == 2
    assert all(d.is_error for d in errors)


def test_mdv072_and_mdv073_on_hand_edited_mappings(marketplace_mdp):
    db = marketplace_mdp.db
    # Bypass the store's registration-time checks entirely.
    db.execute(
        "INSERT INTO semantic_mappings "
        "(source_property, target_property, kind, scale, offset) "
        "VALUES ('cost', 'price', 'affine', 0.0, 0.0)"
    )
    db.execute(
        "INSERT INTO semantic_mappings "
        "(source_property, target_property, kind, scale, offset) "
        "VALUES ('title', 'category', 'affine', 2.0, 0.0)"
    )
    report = audit_vocabulary(db, marketplace_schema())
    codes = _codes(report)
    assert "MDV072" in codes  # zero scale
    assert "MDV073" in codes  # affine over string properties


def test_mdv074_unsatisfiable_mapped_equality():
    mdp = MetadataProvider(
        marketplace_schema(), name="lint74", semantics="mappings"
    )
    try:
        # price = 50 pushed through the inverse of scale 0.03 lands on
        # priceCents = 1666.66… — an INTEGER-typed property can never
        # publish that value.
        mdp.register_affine_mapping("priceCents", "price", scale=0.03)
        mdp.subscribe("hunter", "search Listing l register l where l.price = 50")
        report = audit_vocabulary(mdp.db, marketplace_schema())
        assert any(
            d.code == "MDV074" and "priceCents" in d.message for d in report
        )
    finally:
        mdp.close()


def test_mdv075_semantic_fanout_flips_advisor(monkeypatch):
    monkeypatch.setattr(rulebase, "COUNTING_RULE_THRESHOLD", 10)
    db = Database()
    try:
        # 6 COMP rules, each doubled by the synthMeasure synonym: 6
        # rules but 12 expanded rows — past the (patched) crossover.
        build_registry(db, 6, mix="comp", semantics="synonyms")
        advice = advise_indexes(db)
        assert advice.stats["triggering_rules"] < 10
        assert advice.stats["expanded_triggering_rows"] >= 10
        assert advice.triggering == "counting"
        audit = audit_registry(db, semantic_schema())
        found = [d for d in audit.report if d.code == "MDV075"]
        assert len(found) == 1
        assert found[0].severity == Severity.WARNING
        assert "12" in found[0].message
    finally:
        db.close()


def test_mdv075_not_emitted_without_semantics(monkeypatch):
    monkeypatch.setattr(rulebase, "COUNTING_RULE_THRESHOLD", 10)
    db = Database()
    try:
        build_registry(db, 12, mix="comp")
        advice = advise_indexes(db)
        # Past the threshold on rule count alone: counting is advised
        # through the *existing* heuristic, not the semantic one.
        assert advice.triggering == "counting"
        audit = audit_registry(db, semantic_schema())
        assert not [d for d in audit.report if d.code == "MDV075"]
    finally:
        db.close()
