"""Property tests for the semantic rewriter and the taxonomy closure.

Three families:

- **Synonym rewriting is closed and evaluator-equivalent.**  Under the
  ``synonyms`` degree the variant set of an equality atom is the cross
  product of its property- and value-synonym classes; expanding any
  variant must land in exactly the same closed set (idempotence), and a
  single-statement resource matches the expanded set iff the naive
  per-resource oracle says the original atom matches semantically.
- **The incremental closure equals the naive oracle.**  Random DAG edge
  lists, inserted in random order, must leave
  ``semantic_taxonomy_closure`` equal to plain reachability computed
  from scratch — for every node, in both directions.
- **Cycles never enter the store.**  Closing any random chain into a
  loop (or registering a self-edge) raises ``MDV071`` and leaves the
  closure untouched.
"""

from __future__ import annotations

from hypothesis import given, strategies as st

import pytest

from repro.errors import SemanticError
from repro.rules.atoms import TriggeringAtom
from repro.semantics import SemanticOracle, SemanticRewriter, SemanticStore
from repro.storage.engine import Database
from repro.storage.schema import create_all
from tests.conftest import prop_settings

_PROPS = ["p0", "p1", "p2", "p3"]
_VALUES = ["v0", "v1", "v2", "v3"]

# A partition into synonym groups: each group is a sorted list of >= 2
# distinct terms; groups are pairwise disjoint by construction.
def _partition(pool):
    return st.lists(
        st.lists(st.sampled_from(pool), min_size=2, max_size=3, unique=True),
        max_size=2,
    ).map(_disjoint)


def _disjoint(groups):
    taken: set[str] = set()
    kept = []
    for group in groups:
        if not taken & set(group):
            kept.append(sorted(group))
            taken.update(group)
    return kept


def _fresh_store() -> tuple[Database, SemanticStore]:
    db = Database()
    create_all(db)
    return db, SemanticStore(db)


@given(
    prop_groups=_partition(_PROPS),
    value_groups=_partition(_VALUES),
    prop=st.sampled_from(_PROPS),
    value=st.sampled_from(_VALUES),
    published_prop=st.sampled_from(_PROPS),
    published_value=st.sampled_from(_VALUES),
)
@prop_settings(max_examples=120)
def test_synonym_rewriting_closed_and_evaluator_equivalent(
    prop_groups, value_groups, prop, value, published_prop, published_value
):
    db, store = _fresh_store()
    try:
        for group in prop_groups:
            store.register_synonyms("property", group)
        for group in value_groups:
            store.register_synonyms("value", group)
        rewriter = SemanticRewriter(store, "synonyms")
        oracle = SemanticOracle(store, "synonyms")

        def closed_set(atom):
            expansion = rewriter.expand(atom)
            assert expansion.extra_classes == ()  # degree 1: no classes
            base = (str(atom.operator), str(atom.prop), str(atom.value))
            return {base} | {
                (v.operator, v.prop, v.value) for v in expansion.variants
            }

        atom = TriggeringAtom("C", ("C",), prop, "=", value, False)
        expanded = closed_set(atom)

        # Idempotence/closure: expanding any variant yields the same set.
        for operator, variant_prop, variant_value in sorted(expanded):
            variant_atom = TriggeringAtom(
                "C", ("C",), variant_prop, operator, variant_value, False
            )
            assert closed_set(variant_atom) == expanded

        # Evaluator equivalence on a one-statement resource.
        syntactic = ("=", published_prop, published_value) in expanded
        semantic = oracle.matches_resource(
            atom, "C", [(published_prop, published_value)]
        )
        assert syntactic == semantic
    finally:
        db.close()


# DAG edges by construction: an edge may only point from a lower index
# to a strictly higher one (narrower n{i} -> broader n{j}, i < j).
_dag_edges = st.lists(
    st.tuples(st.integers(0, 6), st.integers(0, 6)).filter(
        lambda e: e[0] < e[1]
    ),
    max_size=12,
    unique=True,
)


@given(edges=_dag_edges, order_seed=st.randoms(use_true_random=False))
@prop_settings(max_examples=100)
def test_incremental_closure_equals_naive_reachability(edges, order_seed):
    db, store = _fresh_store()
    try:
        shuffled = list(edges)
        order_seed.shuffle(shuffled)
        for i, j in shuffled:
            store.register_taxonomy_edge(f"n{i}", f"n{j}")

        parents: dict[str, set[str]] = {}
        for i, j in edges:
            parents.setdefault(f"n{i}", set()).add(f"n{j}")

        def reachable(node: str) -> set[str]:
            seen: set[str] = set()
            frontier = [node]
            while frontier:
                for parent in parents.get(frontier.pop(), ()):
                    if parent not in seen:
                        seen.add(parent)
                        frontier.append(parent)
            return seen

        for index in range(7):
            node = f"n{index}"
            assert set(store.ancestors(node)) == reachable(node)
            assert set(store.descendants(node)) == {
                f"n{i}"
                for i in range(7)
                if node in reachable(f"n{i}")
            }
    finally:
        db.close()


@given(
    chain=st.lists(
        st.sampled_from([f"c{i}" for i in range(5)]),
        min_size=1,
        max_size=5,
        unique=True,
    )
)
@prop_settings(max_examples=60)
def test_cycles_and_self_edges_rejected(chain):
    db, store = _fresh_store()
    try:
        for narrower, broader in zip(chain, chain[1:]):
            store.register_taxonomy_edge(narrower, broader)
        before = store.closure_size()
        with pytest.raises(SemanticError) as excinfo:
            # Closing the chain into a loop; a 1-chain is a self-edge.
            store.register_taxonomy_edge(chain[-1], chain[0])
        assert excinfo.value.code == "MDV071"
        assert store.closure_size() == before
    finally:
        db.close()
