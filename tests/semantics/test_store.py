"""Unit tests for the persisted semantic vocabulary (SemanticStore)."""

from __future__ import annotations

import pytest

from repro.errors import SemanticError
from repro.rdf.schema import PropertyDef, PropertyKind, Schema
from repro.semantics import SemanticStore
from repro.storage.engine import Database
from repro.storage.schema import create_all
from repro.workload.marketplace import marketplace_schema


@pytest.fixture()
def store(db: Database) -> SemanticStore:
    return SemanticStore(db)


# ----------------------------------------------------------------------
# Synonyms
# ----------------------------------------------------------------------
def test_synonyms_are_symmetric(store):
    store.register_synonyms("property", ["price", "cost", "amount"])
    assert store.synonyms_of("property", "price") == ("amount", "cost")
    assert store.synonyms_of("property", "amount") == ("cost", "price")
    assert store.synonyms_of("property", "unknown") == ()
    # Value synonyms live in a separate namespace.
    assert store.synonyms_of("value", "price") == ()


def test_overlapping_sets_merge(store):
    store.register_synonyms("value", ["car", "automobile"])
    store.register_synonyms("value", ["automobile", "motorcar"])
    assert store.synonyms_of("value", "car") == ("automobile", "motorcar")
    assert store.synonyms_of("value", "motorcar") == ("automobile", "car")


def test_synonym_validation(store):
    with pytest.raises(ValueError):
        store.register_synonyms("class", ["a", "b"])
    with pytest.raises(ValueError):
        store.register_synonyms("property", ["only-one"])
    with pytest.raises(ValueError):
        store.register_synonyms("property", ["same", "same"])


# ----------------------------------------------------------------------
# Taxonomy
# ----------------------------------------------------------------------
def test_taxonomy_closure_is_transitive(store):
    assert store.register_taxonomy_edge("pickup", "truck") is True
    assert store.register_taxonomy_edge("truck", "vehicle") is True
    # Re-registering an edge is a no-op, not an error.
    assert store.register_taxonomy_edge("pickup", "truck") is False
    assert store.descendants("vehicle") == ("pickup", "truck")
    assert store.ancestors("pickup") == ("truck", "vehicle")
    assert store.closure_size() == 3


def test_self_edge_rejected(store):
    with pytest.raises(SemanticError) as excinfo:
        store.register_taxonomy_edge("vehicle", "vehicle")
    assert excinfo.value.code == "MDV071"


def test_cycle_rejected(store):
    store.register_taxonomy_edge("a", "b")
    store.register_taxonomy_edge("b", "c")
    with pytest.raises(SemanticError) as excinfo:
        store.register_taxonomy_edge("c", "a")
    assert excinfo.value.code == "MDV071"
    # The rejected edge left no trace.
    assert store.descendants("a") == ()
    assert store.closure_size() == 3


def test_seed_schema_taxonomy_idempotent(store):
    schema = marketplace_schema()
    added = store.seed_schema_taxonomy(schema)
    assert added > 0
    assert store.descendants("Listing") == ("Pickup", "Truck", "Vehicle")
    assert store.descendants("Vehicle") == ("Truck",)
    # Pickup is deliberately standalone in the marketplace schema.
    assert "Pickup" not in store.descendants("Vehicle")
    assert store.seed_schema_taxonomy(schema) == 0


# ----------------------------------------------------------------------
# Mapping functions
# ----------------------------------------------------------------------
def test_affine_mapping_roundtrip(store):
    map_id = store.register_affine_mapping("priceCents", "price", scale=0.01)
    mappings = store.mappings_to("price")
    assert len(mappings) == 1
    assert mappings[0].map_id == map_id
    assert mappings[0].kind == "affine"
    assert mappings[0].scale == 0.01


def test_affine_zero_scale_rejected(store):
    with pytest.raises(SemanticError) as excinfo:
        store.register_affine_mapping("a", "b", scale=0.0)
    assert excinfo.value.code == "MDV072"


def test_identity_mapping_rejected(store):
    with pytest.raises(SemanticError) as excinfo:
        store.register_affine_mapping("price", "price", scale=1.0)
    assert excinfo.value.code == "MDV073"


def test_affine_type_mismatch_rejected(db):
    schema = Schema()
    schema.define_class(
        "Listing",
        [
            PropertyDef("title", PropertyKind.STRING),
            PropertyDef("price", PropertyKind.INTEGER),
        ],
    )
    schema.freeze_check()
    store = SemanticStore(db, schema)
    with pytest.raises(SemanticError) as excinfo:
        store.register_affine_mapping("title", "price", scale=2.0)
    assert excinfo.value.code == "MDV073"


def test_enum_mapping_and_sources(store):
    map_id = store.register_enum_mapping(
        "grade", "condition", [("A", "new"), ("B", "used"), ("C", "used")]
    )
    assert store.enum_sources(map_id, "new") == ("A",)
    assert store.enum_sources(map_id, "used") == ("B", "C")
    assert store.enum_sources(map_id, "parts") == ()


def test_enum_duplicate_source_rejected(store):
    with pytest.raises(SemanticError) as excinfo:
        store.register_enum_mapping(
            "grade", "condition", [("A", "new"), ("A", "used")]
        )
    assert excinfo.value.code == "MDV072"


def test_vocabulary_counts():
    db = Database()
    create_all(db)
    try:
        store = SemanticStore(db)
        store.register_synonyms("property", ["price", "cost"])
        store.register_taxonomy_edge("truck", "vehicle")
        store.register_enum_mapping("grade", "condition", [("A", "new")])
        counts = store.vocabulary_counts()
        assert counts["synonym_terms"] == 2
        assert counts["taxonomy_edges"] == 1
        assert counts["taxonomy_closure"] == 1
        assert counts["mappings"] == 1
        assert counts["mapping_values"] == 1
    finally:
        db.close()
