"""Differential suites for the semantic tier (repro.semantics).

Two independent ground truths pin the registration-time rewrite:

- **Cross-knob byte-identity** — at every semantics degree, the
  ``triggering="sql"``/``parallelism=1`` engine is the baseline and the
  counting matcher and the sharded evaluator (and their combination)
  must produce byte-identical digests of every publish outcome and of
  the final materialized match sets.  Semantic rows ride the same
  triggering tables as base rows, so any path-specific handling of
  ``semantic = 1`` rows would show up here.
- **The naive oracle** — :class:`repro.semantics.SemanticOracle`
  evaluates the *original, unexpanded* atoms per resource, walking the
  vocabulary store at match time.  The engine's materialized match sets
  must agree with it exactly, for every degree.

The scenario is deliberately hostile: part of the vocabulary (synonyms,
mappings) is registered before the subscriptions, the taxonomy edges
arrive *after* the first publishes (re-expansion plus back-fill of
``materialized``), a subscription arrives mid-stream, documents are
updated, one subscriber unsubscribes and one document is deleted.
"""

from __future__ import annotations

import json
import random
from functools import lru_cache

import pytest

from repro.mdv.provider import MetadataProvider
from repro.rdf.model import Document
from repro.semantics import SEMANTICS_MODES, SemanticOracle
from repro.workload.marketplace import marketplace_schema
from tests.filter.test_text_differential import _outcome_key

SEEDS = [1, 7, 42]

#: Single-atom rules only: for those the triggering rule *is* the end
#: rule, which lets the oracle check materialized match sets per rule
#: without re-implementing conjunct counting.
RULES = [
    ("bargain-hunter", "search Vehicle v register v where v.price <= 50"),
    ("car-watcher", "search Listing l register l where l.category = 'car'"),
    (
        "vehicle-watcher",
        "search Listing l register l where l.category = 'vehicle'",
    ),
    ("condition-new", "search Listing l register l where l.condition = 'new'"),
    ("truck-fan", "search Truck t register t"),
    ("reseller", "search Listing l register l where l.price > 100"),
    ("text-scout", "search Listing l register l where l.title contains 'road'"),
]

LATE_RULE = ("late-comer", "search Listing l register l where l.cost >= 20")

_CLASSES = ["Listing", "Vehicle", "Truck", "Pickup"]
_CATEGORIES = ["car", "automobile", "vehicle", "truck", "pickup", "boat"]
_TITLES = ["roadster", "off-road hauler", "city car", "vintage find"]
# 5000 and 5001 straddle the affine image of ``price <= 50`` exactly.
_CENTS = [999, 4500, 5000, 5001, 20000]


def _random_listing(rng: random.Random, index: int) -> Document:
    doc = Document(f"listing{index}.rdf")
    item = doc.new_resource("item", rng.choice(_CLASSES))
    price_spelling = rng.randrange(4)
    if price_spelling == 1:
        item.add("price", rng.choice([10, 45, 60, 120, 500]))
    elif price_spelling == 2:
        item.add("cost", rng.choice([5, 20, 40, 150]))
    elif price_spelling == 3:
        item.add("priceCents", rng.choice(_CENTS))
    if rng.random() < 0.8:
        item.add("category", rng.choice(_CATEGORIES))
    if rng.random() < 0.4:
        item.add("condition", rng.choice(["new", "used"]))
    if rng.random() < 0.4:
        item.add("grade", rng.choice(["A", "B", "C"]))
    if rng.random() < 0.6:
        item.add("title", rng.choice(_TITLES))
    return doc


def _seed_early_vocabulary(mdp: MetadataProvider) -> None:
    mdp.register_synonyms("property", ["price", "cost"])
    mdp.register_synonyms("value", ["car", "automobile"])
    mdp.register_affine_mapping("priceCents", "price", scale=0.01)
    mdp.register_enum_mapping(
        "grade", "condition", [("A", "new"), ("B", "used"), ("C", "parts")]
    )


def _seed_late_taxonomy(mdp: MetadataProvider) -> None:
    mdp.register_taxonomy_edge("truck", "vehicle")
    mdp.register_taxonomy_edge("pickup", "truck")
    mdp.register_taxonomy_edge("Pickup", "Vehicle")


def run_scenario(
    seed: int,
    semantics: str,
    triggering: str,
    parallelism: int,
    oracle_check: bool = False,
) -> bytes:
    """One seeded marketplace workload; returns a canonical digest."""
    rng = random.Random(seed)
    mdp = MetadataProvider(
        marketplace_schema(),
        name="semdiff",
        semantics=semantics,
        triggering=triggering,
        parallelism=parallelism,
    )
    # uri -> (rdf class, [(property, stored value), ...]) of every live
    # resource, maintained alongside the engine for the oracle check.
    live: dict[str, tuple[str, list[tuple[str, str]]]] = {}

    def track(doc: Document) -> None:
        for resource in doc:
            live[str(resource.uri)] = (
                resource.rdf_class,
                [(s.predicate, s.sql_value()) for s in resource.statements()],
            )

    try:
        _seed_early_vocabulary(mdp)
        ends: dict[str, list[int]] = {}
        for subscriber, text in RULES:
            subs = mdp.subscribe(subscriber, text)
            ends[text] = [s.end_rule for s in subs]

        documents = [_random_listing(rng, i) for i in range(10)]
        digests = []
        for doc in documents[:6]:
            digests.append(_outcome_key(mdp.register_document(doc)))
            track(doc)

        # The taxonomy arrives after content and subscriptions exist:
        # every rule re-expands and `materialized` is back-filled.
        _seed_late_taxonomy(mdp)

        subscriber, text = LATE_RULE
        ends[text] = [s.end_rule for s in mdp.subscribe(subscriber, text)]
        for doc in documents[6:]:
            digests.append(_outcome_key(mdp.register_document(doc)))
            track(doc)

        for index in rng.sample(range(10), 3):
            old = documents[index]
            new = old.copy()
            item = new.get(f"listing{index}.rdf#item")
            item.set("category", rng.choice(_CATEGORIES))
            item.set("price", rng.choice([15, 45, 200]))
            digests.append(_outcome_key(mdp.register_document(new)))
            track(new)
            documents[index] = new

        mdp.unsubscribe("reseller", RULES[5][1])
        del ends[RULES[5][1]]
        digests.append(_outcome_key(mdp.delete_document("listing2.rdf")))
        doomed = documents[2]
        for resource in doomed:
            live.pop(str(resource.uri), None)

        final = {
            text: sorted(
                str(uri)
                for end in end_rules
                for uri in mdp.engine.current_matches(end)
            )
            for text, end_rules in ends.items()
        }

        if oracle_check:
            oracle = SemanticOracle(mdp.registry.semantic_store, semantics)
            for text, end_rules in ends.items():
                predicted = set()
                for end in end_rules:
                    row = mdp.db.query_one(
                        "SELECT class FROM atomic_rules WHERE rule_id = ?",
                        (end,),
                    )
                    atom = mdp.registry._load_triggering(
                        end, str(row["class"])
                    )
                    predicted.update(
                        uri
                        for uri, (rdf_class, rows) in live.items()
                        if oracle.matches_resource(atom, rdf_class, rows)
                    )
                assert sorted(predicted) == final[text], (
                    f"engine disagrees with the naive oracle for {text!r} "
                    f"at semantics={semantics!r}"
                )

        return json.dumps(
            {"digests": digests, "final": final}, sort_keys=True
        ).encode()
    finally:
        mdp.close()


@lru_cache(maxsize=None)
def _baseline(seed: int, semantics: str) -> bytes:
    return run_scenario(seed, semantics, "sql", 1, oracle_check=True)


@pytest.mark.parametrize("semantics", SEMANTICS_MODES)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "triggering,parallelism",
    [("sql", 4), ("counting", 1), ("counting", 4)],
)
def test_cross_knob_identity(seed, semantics, triggering, parallelism):
    variant = run_scenario(seed, semantics, triggering, parallelism)
    assert variant == _baseline(seed, semantics)


@pytest.mark.parametrize("semantics", SEMANTICS_MODES)
@pytest.mark.parametrize("seed", SEEDS)
def test_engine_matches_oracle(seed, semantics):
    # The assertion lives inside run_scenario (oracle_check=True); the
    # lru_cache shares the run with the byte-identity baseline.
    _baseline(seed, semantics)


def test_degrees_are_cumulative():
    """Each degree's final match sets contain the previous degree's."""
    for seed in SEEDS:
        previous: dict[str, list[str]] | None = None
        for mode in SEMANTICS_MODES:
            final = json.loads(_baseline(seed, mode))["final"]
            if previous is not None:
                for text, uris in previous.items():
                    assert set(uris) <= set(final[text]), (
                        f"degree {mode!r} lost matches of {text!r}"
                    )
            previous = final
