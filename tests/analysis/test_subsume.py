"""Subsumption/duplication checks and the registration analyze policies."""

import pytest

from repro.analysis import check_subsumption
from repro.analysis.diagnostics import Severity
from repro.errors import RuleAnalysisError
from repro.mdv.provider import MetadataProvider
from repro.rdf.schema import objectglobe_schema
from repro.rules.decompose import decompose_rule
from repro.rules.normalize import normalize_rule
from repro.rules.parser import parse_rule


def decompose(rule_text, schema, registry):
    rule = parse_rule(rule_text)
    (normalized,) = normalize_rule(rule, schema, registry.named_rule_types())
    return decompose_rule(normalized, schema, registry.named_producers())


def register(registry, schema, subscriber, rule_text):
    decomposed = decompose(rule_text, schema, registry)
    return registry.register_subscription(subscriber, rule_text, decomposed)


def analyze(registry, schema, rule_text, subscriber=None):
    decomposed = decompose(rule_text, schema, registry)
    return check_subsumption(decomposed, registry, subscriber=subscriber)


class TestCheckSubsumption:
    def test_empty_registry_is_clean(self, registry, schema):
        report = analyze(
            registry, schema, "search CycleProvider c register c"
        )
        assert report.is_clean

    def test_exact_duplicate_other_subscriber(self, registry, schema):
        rule = "search CycleProvider c register c where c.serverPort > 5"
        register(registry, schema, "lmr1", rule)
        report = analyze(registry, schema, rule, subscriber="lmr2")
        assert [d.code for d in report] == ["MDV020"]
        (diagnostic,) = report
        assert diagnostic.severity is Severity.WARNING

    def test_exact_duplicate_same_subscriber_is_error(self, registry, schema):
        rule = "search CycleProvider c register c where c.serverPort > 5"
        register(registry, schema, "lmr1", rule)
        report = analyze(registry, schema, rule, subscriber="lmr1")
        (diagnostic,) = report
        assert diagnostic.code == "MDV020"
        assert diagnostic.severity is Severity.ERROR

    def test_subsumed_candidate(self, registry, schema):
        register(
            registry, schema, "lmr1",
            "search CycleProvider c register c where c.serverPort > 5",
        )
        report = analyze(
            registry, schema,
            "search CycleProvider c register c where c.serverPort > 9",
        )
        assert [d.code for d in report] == ["MDV021"]

    def test_subsuming_candidate(self, registry, schema):
        register(
            registry, schema, "lmr1",
            "search CycleProvider c register c where c.serverPort > 9",
        )
        report = analyze(
            registry, schema,
            "search CycleProvider c register c where c.serverPort > 5",
        )
        assert [d.code for d in report] == ["MDV022"]
        (diagnostic,) = report
        assert diagnostic.severity is Severity.INFO

    def test_class_only_subsumes_predicate(self, registry, schema):
        register(registry, schema, "lmr1", "search CycleProvider c register c")
        report = analyze(
            registry, schema,
            "search CycleProvider c register c "
            "where c.serverHost contains 'passau'",
        )
        assert [d.code for d in report] == ["MDV021"]

    def test_contains_subsumption(self, registry, schema):
        register(
            registry, schema, "lmr1",
            "search CycleProvider c register c "
            "where c.serverHost contains 'passau'",
        )
        report = analyze(
            registry, schema,
            "search CycleProvider c register c "
            "where c.serverHost contains 'uni-passau'",
        )
        assert [d.code for d in report] == ["MDV021"]

    def test_incomparable_rules_are_silent(self, registry, schema):
        register(
            registry, schema, "lmr1",
            "search CycleProvider c register c where c.serverPort > 5",
        )
        report = analyze(
            registry, schema,
            "search CycleProvider c register c "
            "where c.serverHost contains 'passau'",
        )
        assert report.is_clean

    def test_join_tree_subsumption(self, registry, schema):
        register(
            registry, schema, "lmr1",
            "search CycleProvider c register c "
            "where c.serverInformation.memory > 64",
        )
        report = analyze(
            registry, schema,
            "search CycleProvider c register c "
            "where c.serverInformation.memory > 128",
        )
        assert [d.code for d in report] == ["MDV021"]

    def test_join_trees_with_different_shapes_are_silent(
        self, registry, schema
    ):
        register(
            registry, schema, "lmr1",
            "search CycleProvider c register c "
            "where c.serverInformation.memory > 64",
        )
        report = analyze(
            registry, schema,
            "search CycleProvider c register c "
            "where c.serverInformation.cpu > 64",
        )
        assert report.is_clean

    def test_subclass_is_recognized_as_stricter(self, rich_schema, registry):
        register(registry, rich_schema, "lmr1", "search Provider p register p")
        report = analyze(
            registry, rich_schema, "search CycleProvider c register c"
        )
        assert [d.code for d in report] == ["MDV021"]


class TestRegistrationPolicy:
    def test_analyze_off_records_nothing(self, registry, schema):
        rule = "search CycleProvider c register c"
        register(registry, schema, "lmr1", rule)
        decomposed = decompose(rule, schema, registry)
        registration = registry.register_subscription(
            "lmr2", rule, decomposed, analyze="off"
        )
        assert registration.diagnostics == []

    def test_analyze_warn_attaches_diagnostics(self, registry, schema):
        rule = "search CycleProvider c register c"
        register(registry, schema, "lmr1", rule)
        decomposed = decompose(rule, schema, registry)
        registration = registry.register_subscription(
            "lmr2", rule, decomposed, analyze="warn"
        )
        assert [d.code for d in registration.diagnostics] == ["MDV020"]

    def test_analyze_reject_raises_and_stores_nothing(self, registry, schema):
        rule = "search CycleProvider c register c where c.serverPort > 5"
        register(registry, schema, "lmr1", rule)
        # A same-subscriber semantic duplicate under a different spelling
        # passes the registry's textual duplicate check but is an
        # analyzer error.
        respelled = "search CycleProvider x register x where x.serverPort > 5"
        decomposed = decompose(respelled, schema, registry)
        before = registry.atom_count()
        with pytest.raises(RuleAnalysisError) as excinfo:
            registry.register_subscription(
                "lmr1", respelled, decomposed, analyze="reject"
            )
        assert any(d.code == "MDV020" for d in excinfo.value.diagnostics)
        assert registry.atom_count() == before
        assert len(registry.subscriptions_of("lmr1")) == 1

    def test_analyze_reject_passes_clean_rule(self, registry, schema):
        rule = "search CycleProvider c register c"
        decomposed = decompose(rule, schema, registry)
        registration = registry.register_subscription(
            "lmr1", rule, decomposed, analyze="reject"
        )
        assert registration.diagnostics == []

    def test_unknown_policy_rejected(self, registry, schema):
        rule = "search CycleProvider c register c"
        decomposed = decompose(rule, schema, registry)
        with pytest.raises(ValueError):
            registry.register_subscription(
                "lmr1", rule, decomposed, analyze="strict"
            )


class TestProviderAnalysis:
    def test_analyze_rule_reports_lint_and_subsumption(self):
        mdp = MetadataProvider(objectglobe_schema())
        mdp.subscribe(
            "lmr1", "search CycleProvider c register c where c.serverPort > 5"
        )
        diagnostics = mdp.analyze_rule(
            "search CycleProvider c register c where c.serverPort > 9"
        )
        assert [d.code for d in diagnostics] == ["MDV021"]
        diagnostics = mdp.analyze_rule(
            "search CycleProvider c register c "
            "where c.serverPort < 5 and c.serverPort > 9"
        )
        assert [d.code for d in diagnostics] == ["MDV010"]

    def test_subscribe_warn_policy_surfaces_diagnostics(self):
        mdp = MetadataProvider(objectglobe_schema(), analyze="warn")
        mdp.subscribe("lmr1", "search CycleProvider c register c")
        assert mdp.last_diagnostics == []
        mdp.subscribe(
            "lmr2",
            "search CycleProvider c register c "
            "where c.serverHost contains 'passau'",
        )
        assert [d.code for d in mdp.last_diagnostics] == ["MDV021"]

    def test_subscribe_reject_policy_blocks_unsatisfiable(self):
        mdp = MetadataProvider(objectglobe_schema(), analyze="reject")
        with pytest.raises(RuleAnalysisError):
            mdp.subscribe(
                "lmr1",
                "search CycleProvider c register c "
                "where c.serverPort < 5 and c.serverPort > 9",
            )
        assert mdp.registry.atom_count() == 0

    def test_per_call_override(self):
        mdp = MetadataProvider(objectglobe_schema(), analyze="reject")
        mdp.subscribe(
            "lmr1",
            "search CycleProvider c register c "
            "where c.serverPort < 5 and c.serverPort > 9",
            analyze="off",
        )
        assert mdp.registry.atom_count() > 0

    def test_invalid_policy_values(self):
        with pytest.raises(ValueError):
            MetadataProvider(objectglobe_schema(), analyze="nope")
        mdp = MetadataProvider(objectglobe_schema())
        with pytest.raises(ValueError):
            mdp.subscribe(
                "lmr1", "search CycleProvider c register c", analyze="nope"
            )


class TestRepositoryAnalysis:
    def test_subscribe_returns_diagnostics(self):
        from repro.mdv.repository import LocalMetadataRepository

        mdp = MetadataProvider(objectglobe_schema())
        lmr = LocalMetadataRepository("lmr1", mdp, analyze="warn")
        assert lmr.subscribe("search CycleProvider c register c") == []
        other = LocalMetadataRepository("lmr2", mdp, analyze="warn")
        diagnostics = other.subscribe(
            "search CycleProvider c register c where c.serverPort > 5"
        )
        assert [d.code for d in diagnostics] == ["MDV021"]

    def test_subscribe_reject_registers_nothing(self):
        from repro.mdv.repository import LocalMetadataRepository

        mdp = MetadataProvider(objectglobe_schema())
        lmr = LocalMetadataRepository("lmr1", mdp, analyze="reject")
        with pytest.raises(RuleAnalysisError):
            lmr.subscribe(
                "search CycleProvider c register c "
                "where c.serverPort < 5 and c.serverPort > 9"
            )
        assert lmr.subscriptions() == []
        assert mdp.registry.atom_count() == 0

    def test_analysis_works_over_the_bus(self):
        from repro.mdv.repository import LocalMetadataRepository
        from repro.net.bus import NetworkBus

        bus = NetworkBus()
        mdp = MetadataProvider(objectglobe_schema(), bus=bus)
        lmr = LocalMetadataRepository("lmr1", mdp, bus=bus, analyze="warn")
        lmr.subscribe("search CycleProvider c register c")
        other = LocalMetadataRepository("lmr2", mdp, bus=bus, analyze="warn")
        diagnostics = other.subscribe(
            "search CycleProvider c register c "
            "where c.serverHost contains 'passau'"
        )
        assert [d.code for d in diagnostics] == ["MDV021"]
