"""Auditor tests: hand-corrupt a store and expect precise findings."""

import pytest

from repro.analysis import audit_database
from repro.analysis.diagnostics import Severity
from repro.mdv.provider import MetadataProvider
from repro.rdf.schema import objectglobe_schema

JOIN_RULE = (
    "search CycleProvider c register c "
    "where c.serverInformation.memory > 64"
)


@pytest.fixture()
def mdp():
    provider = MetadataProvider(objectglobe_schema())
    provider.subscribe("lmr1", JOIN_RULE)
    provider.subscribe(
        "lmr2", "search CycleProvider c register c where c.serverPort > 5"
    )
    return provider


def codes(report):
    return sorted({d.code for d in report})


def forge(db, sql, parameters=()):
    """Run corrupting SQL with foreign-key enforcement suspended."""
    db.execute("PRAGMA foreign_keys = OFF")
    try:
        db.execute(sql, parameters)
    finally:
        db.execute("PRAGMA foreign_keys = ON")


def test_pristine_store_is_clean(mdp):
    report = audit_database(mdp.db)
    assert report.is_clean
    assert report.exit_code() == 0


def test_empty_store_is_clean(db):
    assert audit_database(db).is_clean


def test_corrupted_refcount(mdp):
    mdp.db.execute(
        "UPDATE atomic_rules SET refcount = refcount + 2 WHERE rule_id = "
        "(SELECT MIN(rule_id) FROM atomic_rules)"
    )
    report = audit_database(mdp.db)
    assert codes(report) == ["MDV031"]
    (diagnostic,) = report
    assert diagnostic.severity is Severity.ERROR
    assert "refcount" in diagnostic.message


def test_forged_dependency_cycle(mdp):
    join_id = mdp.db.scalar(
        "SELECT rule_id FROM atomic_rules WHERE kind = 'join' "
        "ORDER BY rule_id DESC LIMIT 1"
    )
    ancestor = mdp.db.scalar(
        "SELECT source_rule FROM rule_dependencies WHERE target_rule = ?",
        (join_id,),
    )
    # Close the loop: the join now feeds its own input.
    mdp.db.execute(
        "INSERT INTO rule_dependencies (source_rule, target_rule, side) "
        "VALUES (?, ?, 'left')",
        (join_id, ancestor),
    )
    report = audit_database(mdp.db)
    assert "MDV030" in codes(report)


def test_orphaned_index_row(mdp):
    forge(
        mdp.db,
        "INSERT INTO filter_rules_gt (rule_id, class, property, value, "
        "numeric) VALUES (9999, 'CycleProvider', 'serverPort', '1', 1)",
    )
    report = audit_database(mdp.db)
    assert codes(report) == ["MDV032"]


def test_triggering_atom_without_index_rows(mdp):
    rule_id = mdp.db.scalar("SELECT rule_id FROM filter_rules_gt LIMIT 1")
    mdp.db.execute(
        "DELETE FROM filter_rules_gt WHERE rule_id = ?", (rule_id,)
    )
    report = audit_database(mdp.db)
    assert codes(report) == ["MDV033"]


def test_tampered_group_signature(mdp):
    mdp.db.execute("UPDATE rule_groups SET operator = '<'")
    report = audit_database(mdp.db)
    assert codes(report) == ["MDV034"]


def test_rewired_dependency_edge(mdp):
    join_id = mdp.db.scalar(
        "SELECT rule_id FROM atomic_rules WHERE kind = 'join' LIMIT 1"
    )
    other = mdp.db.scalar(
        "SELECT rule_id FROM atomic_rules WHERE kind = 'triggering' AND "
        "rule_id NOT IN (SELECT source_rule FROM rule_dependencies "
        "WHERE target_rule = ?) LIMIT 1",
        (join_id,),
    )
    mdp.db.execute(
        "UPDATE rule_dependencies SET source_rule = ? "
        "WHERE target_rule = ? AND side = 'left'",
        (other, join_id),
    )
    report = audit_database(mdp.db)
    assert "MDV035" in codes(report)


def test_deleted_dependency_edge_breaks_depth_bound(mdp):
    join_id = mdp.db.scalar(
        "SELECT rule_id FROM atomic_rules WHERE kind = 'join' "
        "ORDER BY rule_id DESC LIMIT 1"
    )
    mdp.db.execute(
        "DELETE FROM rule_dependencies WHERE target_rule = ?", (join_id,)
    )
    report = audit_database(mdp.db)
    found = codes(report)
    assert "MDV035" in found
    assert "MDV037" in found


def test_dangling_subscription_reference(mdp):
    forge(
        mdp.db,
        "INSERT INTO subscriptions (subscriber, rule_text, end_rule) "
        "VALUES ('ghost', 'search CycleProvider c register c', 9999)",
    )
    report = audit_database(mdp.db)
    assert codes(report) == ["MDV036"]


def test_orphaned_materialized_row(mdp):
    mdp.db.execute(
        "INSERT INTO materialized (rule_id, uri_reference) "
        "VALUES (9999, 'doc.rdf#host')"
    )
    report = audit_database(mdp.db)
    assert codes(report) == ["MDV038"]
    (diagnostic,) = report
    assert diagnostic.severity is Severity.WARNING
    assert report.exit_code() == 1


def test_audit_survives_unsubscription_cleanup(mdp):
    mdp.unsubscribe("lmr1", JOIN_RULE)
    assert audit_database(mdp.db).is_clean


def test_audit_clean_after_publishing(mdp):
    from tests.conftest import figure1_document

    mdp.register_document(figure1_document())
    assert audit_database(mdp.db).is_clean
