"""Linter tests: schema errors, satisfiability, redundancy, spans."""

import pytest

from repro.analysis import lint_rule_text
from repro.analysis.diagnostics import Severity


def codes(report):
    return [d.code for d in report]


class TestParseAndSchema:
    def test_clean_rule(self, schema):
        report = lint_rule_text("search CycleProvider c register c", schema)
        assert report.is_clean
        assert report.exit_code() == 0

    def test_parse_error(self, schema):
        report = lint_rule_text("search register where", schema)
        assert codes(report) == ["MDV001"]
        assert report.exit_code() == 2

    def test_unknown_class(self, schema):
        rule = "search NoSuchClass x register x"
        report = lint_rule_text(rule, schema)
        assert codes(report) == ["MDV002"]
        (diagnostic,) = report
        start, end = diagnostic.span
        assert rule[start:end] == "NoSuchClass x"

    def test_named_rule_extension_accepted(self, schema):
        report = lint_rule_text(
            "search FastProviders f register f",
            schema,
            named_extension_types={"FastProviders": "CycleProvider"},
        )
        assert report.is_clean

    def test_unknown_property(self, schema):
        rule = "search CycleProvider c register c where c.bogus = 'x'"
        report = lint_rule_text(rule, schema)
        assert codes(report) == ["MDV003"]
        (diagnostic,) = report
        start, end = diagnostic.span
        assert rule[start:end] == "c.bogus"

    def test_any_on_single_valued_property(self, schema):
        rule = "search CycleProvider c register c where c.serverPort? = 5"
        report = lint_rule_text(rule, schema)
        assert codes(report) == ["MDV004"]

    def test_multivalued_without_any(self, rich_schema):
        rule = "search CycleProvider c register c where c.tags = 'gpu'"
        report = lint_rule_text(rule, rich_schema)
        assert codes(report) == ["MDV005"]
        (diagnostic,) = report
        assert diagnostic.severity is Severity.WARNING

    def test_multivalued_with_any_is_clean(self, rich_schema):
        report = lint_rule_text(
            "search CycleProvider c register c where c.tags? = 'gpu'",
            rich_schema,
        )
        assert report.is_clean

    def test_numeric_property_string_constant(self, schema):
        rule = "search CycleProvider c register c where c.serverPort = 'abc'"
        report = lint_rule_text(rule, schema)
        assert codes(report) == ["MDV006"]

    def test_string_property_numeric_constant(self, schema):
        rule = "search CycleProvider c register c where c.serverHost = 42"
        report = lint_rule_text(rule, schema)
        assert codes(report) == ["MDV006"]

    def test_ordering_on_string_property(self, schema):
        rule = "search CycleProvider c register c where c.serverHost > 'a'"
        report = lint_rule_text(rule, schema)
        assert codes(report) == ["MDV006"]

    def test_contains_on_numeric_property(self, schema):
        rule = (
            "search CycleProvider c register c "
            "where c.serverPort contains 'x'"
        )
        report = lint_rule_text(rule, schema)
        assert codes(report) == ["MDV006"]

    def test_short_contains_needle_warns(self, schema):
        rule = (
            "search CycleProvider c register c "
            "where c.serverHost contains 'de'"
        )
        report = lint_rule_text(rule, schema)
        assert codes(report) == ["MDV039"]
        (diagnostic,) = report
        assert diagnostic.severity is Severity.WARNING
        assert report.exit_code() == 1
        start, end = diagnostic.span
        assert rule[start:end] == "'de'"

    def test_indexable_contains_needle_is_clean(self, schema):
        report = lint_rule_text(
            "search CycleProvider c register c "
            "where c.serverHost contains 'uni'",
            schema,
        )
        assert report.is_clean

    def test_two_constants(self, schema):
        report = lint_rule_text(
            "search CycleProvider c register c where 1 = 2", schema
        )
        assert codes(report) == ["MDV007"]

    def test_disconnected_variable(self, schema):
        rule = (
            "search CycleProvider c, ServerInformation s register c "
            "where s.memory > 64"
        )
        report = lint_rule_text(rule, schema)
        assert codes(report) == ["MDV008"]
        (diagnostic,) = report
        start, end = diagnostic.span
        assert rule[start:end] == "ServerInformation s"

    def test_connected_variable_is_clean(self, schema):
        report = lint_rule_text(
            "search CycleProvider c, ServerInformation s register c "
            "where c.serverInformation = s and s.memory > 64",
            schema,
        )
        assert report.is_clean

    def test_multiple_findings_reported_together(self, schema):
        report = lint_rule_text(
            "search CycleProvider c register c "
            "where c.bogus = 'x' and c.serverPort = 'y'",
            schema,
        )
        assert sorted(codes(report)) == ["MDV003", "MDV006"]


class TestSatisfiability:
    def test_contradictory_interval(self, schema):
        rule = (
            "search CycleProvider c register c "
            "where c.serverPort < 5 and c.serverPort > 9"
        )
        report = lint_rule_text(rule, schema)
        assert codes(report) == ["MDV010"]
        (diagnostic,) = report
        start, end = diagnostic.span
        assert rule[start:end] == "c.serverPort < 5 and c.serverPort > 9"

    def test_conflicting_equalities(self, schema):
        report = lint_rule_text(
            "search CycleProvider c register c "
            "where c.serverPort = 3 and c.serverPort = 4",
            schema,
        )
        assert codes(report) == ["MDV010"]

    def test_contains_contradicts_equality(self, schema):
        report = lint_rule_text(
            "search CycleProvider c register c "
            "where c.serverHost = 'tum.de' "
            "and c.serverHost contains 'passau'",
            schema,
        )
        assert codes(report) == ["MDV010"]

    def test_satisfiable_conjunct_is_clean(self, schema):
        report = lint_rule_text(
            "search CycleProvider c register c "
            "where c.serverPort > 5 and c.serverPort < 9",
            schema,
        )
        assert report.is_clean

    def test_or_branches_checked_independently(self, schema):
        # The first disjunct is contradictory, the second is fine.
        report = lint_rule_text(
            "search CycleProvider c register c "
            "where (c.serverPort < 5 and c.serverPort > 9) "
            "or c.serverPort = 7",
            schema,
        )
        assert codes(report) == ["MDV010"]

    def test_redundant_predicate(self, schema):
        rule = (
            "search CycleProvider c register c "
            "where c.serverPort > 5 and c.serverPort > 3"
        )
        report = lint_rule_text(rule, schema)
        assert codes(report) == ["MDV011"]
        (diagnostic,) = report
        assert diagnostic.severity is Severity.WARNING
        start, end = diagnostic.span
        assert rule[start:end] == "c.serverPort > 3"
        assert report.exit_code() == 1

    def test_self_comparison_always_true(self, schema):
        report = lint_rule_text(
            "search CycleProvider c register c "
            "where c.serverPort = c.serverPort",
            schema,
        )
        assert codes(report) == ["MDV011"]

    def test_self_comparison_never_true(self, schema):
        report = lint_rule_text(
            "search CycleProvider c register c "
            "where c.serverPort != c.serverPort",
            schema,
        )
        assert codes(report) == ["MDV010"]

    def test_existential_predicates_do_not_conjoin(self, rich_schema):
        # Distinct elements of a set-valued property may satisfy the
        # two predicates separately: not a contradiction.
        report = lint_rule_text(
            "search CycleProvider c register c "
            "where c.tags? = 'gpu' and c.tags? = 'fast'",
            rich_schema,
        )
        assert report.is_clean

    def test_path_slots_tracked_separately(self, schema):
        report = lint_rule_text(
            "search CycleProvider c register c "
            "where c.serverInformation.memory > 64 "
            "and c.serverInformation.cpu < 10",
            schema,
        )
        assert report.is_clean

    def test_contradiction_through_path(self, schema):
        report = lint_rule_text(
            "search CycleProvider c register c "
            "where c.serverInformation.memory > 64 "
            "and c.serverInformation.memory < 32",
            schema,
        )
        assert codes(report) == ["MDV010"]


class TestDiagnosticContract:
    def test_unknown_code_rejected(self):
        from repro.analysis.diagnostics import Diagnostic

        with pytest.raises(ValueError):
            Diagnostic(Severity.ERROR, "MDV999", "nope")

    def test_render_mentions_code_and_span(self, schema):
        report = lint_rule_text(
            "search CycleProvider c register c "
            "where c.serverPort < 5 and c.serverPort > 9",
            schema,
        )
        rendered = report.render()
        assert "MDV010" in rendered
        assert "error" in rendered
