"""Property tests for the whole-registry optimizer's two soundness claims.

1. *Canonicalization is meaning-preserving*: a rule and its canonical
   form have identical match sets on every document stream (and a rule
   whose canonical form is unsatisfiable matches nothing), and
   canonicalizing twice is a no-op.
2. *Covering edges are sound*: when the audit says rule B is covered by
   rule A, every document B matches is also matched by A.

Both are checked against the real filter engine on random documents —
the oracle is evaluation, not the optimizer's own algebra.
"""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.analysis.rulebase import canonicalize, find_covering_edges
from repro.filter.engine import FilterEngine
from repro.rdf.model import Document, URIRef
from repro.rdf.schema import objectglobe_schema
from repro.rules.atoms import AtomNode, JoinAtom
from repro.rules.decompose import DecomposedRule, decompose_rule
from repro.rules.normalize import normalize_rule
from repro.rules.parser import parse_rule
from repro.rules.registry import RuleRegistry
from repro.storage.engine import Database
from repro.storage.schema import create_all
from tests.conftest import prop_settings
from tests.rules.test_decompose_roundtrip_properties import rule_texts

SCHEMA = objectglobe_schema()

#: Hosts overlapping the rule strategies' string constants as equals,
#: supersets and near-misses.
_HOSTS = [
    "passau",
    "uni-passau.de",
    "tum",
    "www.tum.org",
    "unrelated",
]

_VALUES = st.sampled_from([0, 1, 63, 64, 65, 499, 500, 501, 999, 1000])


@st.composite
def documents(draw, index: int = 0):
    doc = Document(f"doc{index}.rdf")
    provider = doc.new_resource("host", "CycleProvider")
    provider.add("serverHost", draw(st.sampled_from(_HOSTS)))
    provider.add("synthValue", draw(_VALUES))
    provider.add("serverInformation", URIRef(f"doc{index}.rdf#info"))
    info = doc.new_resource("info", "ServerInformation")
    info.add("memory", draw(_VALUES))
    info.add("cpu", draw(_VALUES))
    return doc


@st.composite
def document_streams(draw, size: int = 4):
    return [draw(documents(index=i)) for i in range(size)]


def _decompose(text: str) -> DecomposedRule:
    return decompose_rule(normalize_rule(parse_rule(text), SCHEMA)[0], SCHEMA)


def _tree_decomposed(node: AtomNode, source) -> DecomposedRule:
    """Wrap an arbitrary atom tree as a registrable DecomposedRule."""
    atoms: list[AtomNode] = []
    seen: set[str] = set()

    def walk(current: AtomNode) -> None:
        if isinstance(current, JoinAtom):
            walk(current.left)
            walk(current.right)
        if current.key not in seen:
            seen.add(current.key)
            atoms.append(current)

    walk(node)
    return DecomposedRule(end=node, source=source, atoms=atoms)


def _match_sets(
    decomposed_rules: list[DecomposedRule], docs: list[Document]
) -> list[set[str]]:
    """Evaluate every rule over the stream; match sets per rule."""
    db = Database()
    create_all(db)
    registry = RuleRegistry(db)
    engine = FilterEngine(db, registry)
    try:
        ends = []
        for index, decomposed in enumerate(decomposed_rules):
            registration = registry.register_subscription(
                f"s{index}", f"rule {index}", decomposed
            )
            engine.initialize_rules(registration.created)
            ends.append(registration.end_rule)
        for doc in docs:
            engine.process_insertions(list(doc))
        return [
            {str(uri) for uri in engine.current_matches(end)} for end in ends
        ]
    finally:
        engine.close()
        db.close()


@prop_settings(40)
@given(text=rule_texts(), docs=document_streams())
def test_canonical_form_is_evaluator_equivalent(text, docs):
    decomposed = _decompose(text)
    canon = canonicalize(decomposed.end, SCHEMA)
    if not canon.satisfiable:
        # An unsatisfiable canonical form asserts the *original* rule
        # matches nothing — check exactly that.
        (original,) = _match_sets([decomposed], docs)
        assert original == set()
        return
    original, canonical = _match_sets(
        [decomposed, _tree_decomposed(canon.node, decomposed.source)], docs
    )
    assert original == canonical


@prop_settings(50)
@given(text=rule_texts())
def test_canonicalize_is_idempotent(text):
    first = canonicalize(_decompose(text).end, SCHEMA)
    assert canonicalize(first.node, SCHEMA).key == first.key
    # The schema-free (conservative) form is a fixpoint too.
    conservative = canonicalize(_decompose(text).end)
    assert canonicalize(conservative.node).key == conservative.key


@prop_settings(30)
@given(left=rule_texts(), right=rule_texts(), docs=document_streams())
def test_covering_edges_are_sound(left, right, docs):
    """A covered rule never matches a document its coverer misses."""
    first, second = _decompose(left), _decompose(right)
    edges = find_covering_edges([(1, first.end), (2, second.end)])
    if not edges:
        return
    matches = {1: None, 2: None}
    matches[1], matches[2] = _match_sets([first, second], docs)
    for edge in edges:
        assert matches[edge.covered] <= matches[edge.covering], (
            f"covered rule {edge.covered} matched a document its "
            f"coverer missed"
        )
