"""The MDV06x source-code lint pack (``repro.analysis.code``).

Every rule is exercised on synthetic files in ``tmp_path`` — the pack
is purely syntactic, so no imports run — plus the one invariant that
matters most: the shipped ``src/repro`` tree itself lints clean (this
is exactly what the CI job asserts).
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.code import (
    CONCURRENCY_ALLOWLIST,
    CONNECT_ALLOWLIST,
    HOT_PATHS,
    default_root,
    lint_file,
    lint_paths,
)

# Wall-clock / sqlite / thread snippets used across the tests.
_CLOCK = "import time\n__all__ = []\n\ndef stamp():\n    return time.time()\n"


def _write(tmp_path: Path, name: str, source: str) -> Path:
    target = tmp_path / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source, encoding="utf-8")
    return target


def _codes(report) -> list[str]:
    return [d.code for d in report.diagnostics]


class TestConnectRule:
    def test_raw_connect_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            "import sqlite3\n__all__ = []\nconn = sqlite3.connect(':memory:')\n",
        )
        assert _codes(lint_file(path)) == ["MDV060"]

    def test_aliased_import_resolved(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            "import sqlite3 as sql\n__all__ = []\nconn = sql.connect('x')\n",
        )
        assert _codes(lint_file(path)) == ["MDV060"]

    def test_storage_engine_allowlisted(self, tmp_path):
        path = _write(
            tmp_path,
            "repro/storage/engine.py",
            "import sqlite3\n__all__ = []\nconn = sqlite3.connect(':memory:')\n",
        )
        # The same suffix registers a hot path (MDV063) — only the
        # connect rule is under test here.
        assert "MDV060" not in _codes(lint_file(path))


class TestConcurrencyRule:
    def test_thread_creation_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            "import threading\n__all__ = []\nt = threading.Thread(target=print)\n",
        )
        assert _codes(lint_file(path)) == ["MDV061"]

    def test_executor_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            "from concurrent.futures import ThreadPoolExecutor\n"
            "__all__ = []\npool = ThreadPoolExecutor(4)\n",
        )
        assert _codes(lint_file(path)) == ["MDV061"]

    def test_check_same_thread_false_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "repro/storage/engine.py",
            "import sqlite3\n__all__ = []\n"
            "conn = sqlite3.connect('x', check_same_thread=False)\n",
        )
        assert "MDV061" in _codes(lint_file(path))

    def test_shard_pool_allowlisted(self, tmp_path):
        path = _write(
            tmp_path,
            "repro/filter/shards.py",
            "import threading\n__all__ = []\nt = threading.Thread(target=print)\n",
        )
        assert _codes(lint_file(path)) == []


class TestWallClockRule:
    def test_time_time_flagged(self, tmp_path):
        path = _write(tmp_path, "mod.py", _CLOCK)
        assert _codes(lint_file(path)) == ["MDV062"]

    def test_datetime_now_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            "from datetime import datetime\n__all__ = []\n"
            "stamp = datetime.now()\n",
        )
        assert _codes(lint_file(path)) == ["MDV062"]

    def test_perf_counter_is_clean(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            "import time\n__all__ = []\nstarted = time.perf_counter()\n",
        )
        assert _codes(lint_file(path)) == []

    def test_waiver_comment_suppresses(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            "import time\n__all__ = []\n"
            "stamp = time.time()  # mdv: allow(MDV062)\n",
        )
        assert _codes(lint_file(path)) == []

    def test_waiver_must_name_the_code(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            "import time\n__all__ = []\n"
            "stamp = time.time()  # mdv: allow(MDV060)\n",
        )
        assert _codes(lint_file(path)) == ["MDV062"]


class TestHotPathRule:
    def test_uninstrumented_hot_path_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "repro/text/index.py",
            "__all__ = []\n\ndef match_contains_indexed(db):\n    return []\n",
        )
        assert _codes(lint_file(path)) == ["MDV063"]

    def test_instrumented_hot_path_clean(self, tmp_path):
        path = _write(
            tmp_path,
            "repro/text/index.py",
            "__all__ = []\n\n"
            "def match_contains_indexed(db, metrics):\n"
            "    metrics.counter('x').inc()\n    return []\n",
        )
        assert _codes(lint_file(path)) == []

    def test_missing_hot_path_warns(self, tmp_path):
        path = _write(tmp_path, "repro/text/index.py", "__all__ = []\n")
        report = lint_file(path)
        assert _codes(report) == ["MDV063"]
        assert report.diagnostics[0].severity.name == "WARNING"


class TestExportsRule:
    def test_missing_all_flagged(self, tmp_path):
        path = _write(tmp_path, "mod.py", "def f():\n    return 1\n")
        assert _codes(lint_file(path)) == ["MDV064"]

    def test_phantom_export_flagged(self, tmp_path):
        path = _write(tmp_path, "mod.py", "__all__ = ['missing']\n")
        assert _codes(lint_file(path)) == ["MDV064"]

    def test_syntax_error_reported_not_raised(self, tmp_path):
        path = _write(tmp_path, "mod.py", "def broken(:\n")
        report = lint_file(path)
        assert _codes(report) == ["MDV064"]
        assert report.has_errors

    def test_conditional_definitions_counted(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            "__all__ = ['f']\n\n"
            "try:\n    import json\nexcept ImportError:\n    json = None\n\n"
            "if True:\n    def f():\n        return 1\n",
        )
        assert _codes(lint_file(path)) == []


class TestDurabilityRule:
    SCOPED = "repro/mdv/mod.py"

    def test_raw_commit_flagged_in_scope(self, tmp_path):
        path = _write(
            tmp_path,
            self.SCOPED,
            "__all__ = []\n\ndef f(db):\n    db.commit()\n",
        )
        assert _codes(lint_file(path)) == ["MDV065"]

    def test_raw_commit_outside_scope_ignored(self, tmp_path):
        path = _write(
            tmp_path,
            "repro/bench/mod.py",
            "__all__ = []\n\ndef f(db):\n    db.commit()\n",
        )
        assert _codes(lint_file(path)) == []

    def test_multi_table_mutation_outside_transaction_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            self.SCOPED,
            "__all__ = []\n\n"
            "def f(db):\n"
            "    db.execute('DELETE FROM a WHERE x = ?', (1,))\n"
            "    db.execute('INSERT INTO b VALUES (?)', (1,))\n",
        )
        assert _codes(lint_file(path)) == ["MDV065"]

    def test_transaction_block_makes_it_clean(self, tmp_path):
        path = _write(
            tmp_path,
            self.SCOPED,
            "__all__ = []\n\n"
            "def f(db):\n"
            "    with db.transaction():\n"
            "        db.execute('DELETE FROM a')\n"
            "        db.execute('INSERT INTO b VALUES (1)')\n",
        )
        assert _codes(lint_file(path)) == []

    def test_single_table_mutation_allowed(self, tmp_path):
        path = _write(
            tmp_path,
            self.SCOPED,
            "__all__ = []\n\n"
            "def f(db):\n"
            "    db.execute('UPDATE a SET x = 1')\n"
            "    db.execute('DELETE FROM a WHERE x = 2')\n"
            "    db.query_all('SELECT * FROM b')\n",
        )
        assert _codes(lint_file(path)) == []

    def test_waiver_on_def_line_suppresses(self, tmp_path):
        path = _write(
            tmp_path,
            self.SCOPED,
            "__all__ = []\n\n"
            "def f(db):  # mdv: allow(MDV065): caller holds the txn\n"
            "    db.execute('DELETE FROM a')\n"
            "    db.execute('INSERT INTO b VALUES (1)')\n",
        )
        assert _codes(lint_file(path)) == []

    def test_dynamic_sql_counts_as_distinct_tables(self, tmp_path):
        path = _write(
            tmp_path,
            self.SCOPED,
            "__all__ = []\n\n"
            "def f(db, t1, t2):\n"
            "    db.execute(f'DELETE FROM {t1} WHERE x = 1')\n"
            "    db.execute(f'DELETE FROM {t2} WHERE x = 2')\n",
        )
        assert _codes(lint_file(path)) == ["MDV065"]

    def test_executemany_counts_as_mutation(self, tmp_path):
        path = _write(
            tmp_path,
            self.SCOPED,
            "__all__ = []\n\n"
            "def f(db, rows):\n"
            "    db.executemany('INSERT OR REPLACE INTO a VALUES (?)', rows)\n"
            "    db.execute('DELETE FROM b')\n",
        )
        assert _codes(lint_file(path)) == ["MDV065"]


class TestLockScopeRule:
    SCOPED = "repro/filter/counting.py"
    # The same suffix registers a hot path (MDV063); this stub satisfies
    # it so the lock-scope rule is tested in isolation.
    _STUB = (
        "__all__ = []\n\n"
        "class CountingMatcher:\n"
        "    def match_rows(self):\n"
        "        self._m_match_ms.observe(1.0)\n"
    )

    def test_unlocked_assign_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            self.SCOPED,
            self._STUB
            + "\n    def wipe(self):\n        self._idx_eq = {}\n",
        )
        assert _codes(lint_file(path)) == ["MDV066"]

    def test_unlocked_mutating_call_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            self.SCOPED,
            self._STUB
            + "\n    def add(self, k, r):\n"
            "        self._idx_eq.setdefault(k, {})[r] = None\n",
        )
        assert _codes(lint_file(path)) == ["MDV066"]

    def test_unlocked_delete_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            self.SCOPED,
            self._STUB
            + "\n    def drop(self, k):\n        del self._idx_eq[k]\n",
        )
        assert _codes(lint_file(path)) == ["MDV066"]

    def test_mutation_under_lock_clean(self, tmp_path):
        path = _write(
            tmp_path,
            self.SCOPED,
            self._STUB
            + "\n    def add(self, k):\n"
            "        with self._lock:\n"
            "            self._idx_eq[k] = {}\n"
            "            self._idx_entries.clear()\n",
        )
        assert _codes(lint_file(path)) == []

    def test_init_exempt(self, tmp_path):
        path = _write(
            tmp_path,
            self.SCOPED,
            self._STUB
            + "\n    def __init__(self):\n        self._idx_eq = {}\n",
        )
        assert _codes(lint_file(path)) == []

    def test_reads_and_other_attributes_ignored(self, tmp_path):
        path = _write(
            tmp_path,
            self.SCOPED,
            self._STUB
            + "\n    def peek(self, k):\n"
            "        self.cache = {}\n"
            "        return self._idx_eq.get(k)\n",
        )
        assert _codes(lint_file(path)) == []

    def test_waiver_on_def_line_suppresses(self, tmp_path):
        path = _write(
            tmp_path,
            self.SCOPED,
            self._STUB
            + "\n    def wipe(self):"
            "  # mdv: allow(MDV066): single-threaded setup\n"
            "        self._idx_eq = {}\n",
        )
        assert _codes(lint_file(path)) == []

    def test_outside_scope_ignored(self, tmp_path):
        path = _write(
            tmp_path,
            "repro/filter/other.py",
            "__all__ = []\n\n"
            "class X:\n"
            "    def wipe(self):\n        self._idx_eq = {}\n",
        )
        assert _codes(lint_file(path)) == []


class TestLintPaths:
    def test_directory_walk_counts_files(self, tmp_path):
        _write(tmp_path, "pkg/a.py", "__all__ = []\n")
        _write(tmp_path, "pkg/b.py", _CLOCK)
        report, checked = lint_paths([tmp_path / "pkg"], root=tmp_path / "pkg")
        assert checked == 2
        assert _codes(report) == ["MDV062"]

    def test_shipped_tree_lints_clean(self):
        # The CI gate: the real source tree carries zero findings (all
        # sanctioned sites are allowlisted or explicitly waived).
        report, checked = lint_paths()
        assert checked > 50
        assert report.diagnostics == []

    def test_allowlists_cover_real_files(self):
        root = default_root().parent
        for suffix in CONNECT_ALLOWLIST + CONCURRENCY_ALLOWLIST:
            assert (root / suffix).exists(), suffix
        for suffix, __ in HOT_PATHS:
            assert (root / suffix).exists(), suffix
