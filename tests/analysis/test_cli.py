"""CLI tests: ``python -m repro.analysis`` commands and exit codes."""

import pytest

from repro.analysis.__main__ import main
from repro.mdv.provider import MetadataProvider
from repro.rdf.schema import objectglobe_schema
from repro.storage.engine import Database

CLEAN_RULE = "search CycleProvider c register c"
UNSAT_RULE = (
    "search CycleProvider c register c "
    "where c.serverPort < 5 and c.serverPort > 9"
)
REDUNDANT_RULE = (
    "search CycleProvider c register c "
    "where c.serverPort > 5 and c.serverPort > 3"
)


@pytest.fixture()
def mdp_db(tmp_path):
    """A file-backed MDP store with one live subscription."""
    path = str(tmp_path / "mdp.db")
    provider = MetadataProvider(objectglobe_schema(), db=Database(path))
    provider.subscribe(
        "lmr1", "search CycleProvider c register c where c.serverPort > 5"
    )
    provider.db.commit()
    return path


class TestLint:
    def test_clean_rule_exits_zero(self, capsys):
        assert main(["lint", "--rule", CLEAN_RULE]) == 0
        assert "clean" in capsys.readouterr().out

    def test_warnings_exit_one(self, capsys):
        assert main(["lint", "--rule", REDUNDANT_RULE]) == 1
        assert "MDV011" in capsys.readouterr().out

    def test_errors_exit_two(self, capsys):
        assert main(["lint", "--rule", UNSAT_RULE]) == 2
        out = capsys.readouterr().out
        assert "MDV010" in out
        assert "^" in out  # span caret rendering

    def test_schema_error_has_distinct_code(self, capsys):
        assert main(["lint", "--rule", "search Bogus b register b"]) == 2
        assert "MDV002" in capsys.readouterr().out

    def test_rule_file_paragraphs_and_comments(self, tmp_path, capsys):
        rules = tmp_path / "rules.txt"
        rules.write_text(
            "# first rule: clean\n"
            "search CycleProvider c register c\n"
            "where c.serverPort > 5\n"
            "\n"
            "# second rule: unsatisfiable\n"
            f"{UNSAT_RULE}\n"
        )
        assert main(["lint", str(rules)]) == 2
        out = capsys.readouterr().out
        assert f"{rules}:2" in out
        assert "2 input(s)" in out

    def test_missing_file_exits_two(self, capsys):
        assert main(["lint", "/no/such/rules.txt"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_no_input_exits_two(self, capsys):
        assert main(["lint"]) == 2
        assert "nothing to lint" in capsys.readouterr().err

    def test_lint_against_database_flags_duplicate(self, mdp_db, capsys):
        code = main([
            "lint",
            "--rule",
            "search CycleProvider c register c where c.serverPort > 5",
            "--db",
            mdp_db,
        ])
        assert code == 1
        assert "MDV020" in capsys.readouterr().out

    def test_lint_against_database_flags_subsumed(self, mdp_db, capsys):
        code = main([
            "lint",
            "--rule",
            "search CycleProvider c register c where c.serverPort > 9",
            "--db",
            mdp_db,
        ])
        assert code == 1
        assert "MDV021" in capsys.readouterr().out

    def test_lint_missing_database_exits_two(self, capsys):
        code = main(["lint", "--rule", CLEAN_RULE, "--db", "/no/such.db"])
        assert code == 2


class TestAudit:
    def test_clean_database_exits_zero(self, mdp_db, capsys):
        assert main(["audit", "--db", mdp_db]) == 0
        assert "clean" in capsys.readouterr().out

    def test_corrupted_refcount_exits_two(self, mdp_db, capsys):
        db = Database(mdp_db)
        db.execute("UPDATE atomic_rules SET refcount = refcount + 1")
        db.commit()
        db.close()
        assert main(["audit", "--db", mdp_db]) == 2
        assert "MDV031" in capsys.readouterr().out

    def test_orphaned_materialized_row_exits_one(self, mdp_db, capsys):
        db = Database(mdp_db)
        db.execute(
            "INSERT INTO materialized (rule_id, uri_reference) "
            "VALUES (9999, 'x')"
        )
        db.commit()
        db.close()
        assert main(["audit", "--db", mdp_db]) == 1
        assert "MDV038" in capsys.readouterr().out

    def test_missing_database_exits_two(self, capsys):
        assert main(["audit", "--db", "/no/such.db"]) == 2
        assert "no such database" in capsys.readouterr().err


class TestCodes:
    def test_codes_lists_every_code(self, capsys):
        from repro.analysis.diagnostics import CODES

        assert main(["codes"]) == 0
        out = capsys.readouterr().out
        for code in CODES:
            assert code in out
