"""Whole-registry optimizer tests: canonical forms, covering, audit.

Covers the ``repro.analysis.rulebase`` module end to end on small,
hand-checkable registries; the 100k-rule scalability contract lives in
the ``analysis`` bench figure, not here.
"""

from __future__ import annotations

import pytest

from repro.analysis.rulebase import (
    CanonicalRule,
    audit_registry,
    canonical_hash,
    canonicalize,
    find_covering_edges,
    load_registry_atoms,
)
from repro.rdf.schema import objectglobe_schema
from repro.rules.decompose import decompose_rule
from repro.rules.atoms import AtomNode
from repro.rules.normalize import normalize_rule
from repro.rules.parser import parse_rule
from tests.conftest import PAPER_RULE, register_rule

SCHEMA = objectglobe_schema()


def _end(text: str) -> AtomNode:
    rule = parse_rule(text)
    normalized = normalize_rule(rule, SCHEMA)
    assert len(normalized) == 1
    return decompose_rule(normalized[0], SCHEMA).end


def _rule(where: str) -> str:
    return f"search CycleProvider c register c where {where}"


# ----------------------------------------------------------------------
# Canonicalization
# ----------------------------------------------------------------------
class TestCanonicalize:
    def test_numeric_spelling_unified(self):
        assert canonical_hash(_end(_rule("c.synthValue > 5"))) == (
            canonical_hash(_end(_rule("c.synthValue > 5.0")))
        )

    def test_conjunct_order_irrelevant(self):
        left = _end(_rule("c.synthValue > 5 and c.serverPort > 3"))
        right = _end(_rule("c.serverPort > 3 and c.synthValue > 5"))
        assert canonicalize(left).key == canonicalize(right).key

    def test_redundant_bound_dropped(self):
        loose = _end(_rule("c.synthValue > 5 and c.synthValue > 3"))
        tight = _end(_rule("c.synthValue > 5"))
        assert canonicalize(loose).key == canonicalize(tight).key

    def test_subsumed_needle_dropped(self):
        both = _end(
            _rule(
                "c.serverHost contains 'passau' and c.serverHost "
                "contains 'pas'"
            )
        )
        one = _end(_rule("c.serverHost contains 'passau'"))
        assert canonicalize(both).key == canonicalize(one).key

    def test_distinct_rules_stay_distinct(self):
        assert canonical_hash(_end(_rule("c.synthValue > 5"))) != (
            canonical_hash(_end(_rule("c.synthValue > 6")))
        )
        assert canonical_hash(_end(_rule("c.synthValue > 5"))) != (
            canonical_hash(_end(_rule("c.synthValue >= 5")))
        )

    def test_idempotent(self):
        for text in (
            PAPER_RULE,
            _rule("c.synthValue > 5 and c.synthValue > 3"),
            _rule("c.serverHost contains 'passau'"),
        ):
            first = canonicalize(_end(text))
            again = canonicalize(first.node)
            assert again.key == first.key

    def test_canonical_rule_key_and_hash(self):
        canon = canonicalize(_end(_rule("c.synthValue > 5")))
        assert isinstance(canon, CanonicalRule)
        assert canon.satisfiable
        assert len(canon.hash) == 64

    def test_unsat_needs_schema(self):
        end = _end(_rule("c.serverPort < 5 and c.serverPort > 9"))
        # Without a schema the prop could be multivalued: one value
        # below 5 and another above 9 can coexist, so this must stay
        # satisfiable (conservative).
        assert canonicalize(end).satisfiable
        canon = canonicalize(end, SCHEMA)
        assert not canon.satisfiable
        assert canon.key == "UNSAT[CycleProvider]"

    def test_unsat_spellings_share_one_key(self):
        first = _end(_rule("c.serverPort < 5 and c.serverPort > 9"))
        second = _end(_rule("c.serverPort < 1 and c.serverPort > 2"))
        assert canonicalize(first, SCHEMA).key == (
            canonicalize(second, SCHEMA).key
        )

    def test_single_valued_interval_merge_needs_schema(self):
        # < and > on one single-valued prop collapse to an interval
        # only when the schema vouches for single-valuedness.
        end = _end(_rule("c.serverPort > 2 and c.serverPort > 4"))
        assert canonicalize(end, SCHEMA).key == (
            canonicalize(_end(_rule("c.serverPort > 4")), SCHEMA).key
        )


# ----------------------------------------------------------------------
# Bulk loading
# ----------------------------------------------------------------------
class TestLoadRegistryAtoms:
    def test_roundtrip_matches_load_atom(self, db, registry, engine, schema):
        register_rule(engine, registry, schema, PAPER_RULE)
        register_rule(
            engine, registry, schema, _rule("c.synthValue > 5"), "other"
        )
        nodes = load_registry_atoms(db)
        assert nodes
        for rule_id, node in nodes.items():
            assert node.key == registry.load_atom(rule_id).key

    def test_empty_registry(self, db):
        assert load_registry_atoms(db) == {}


# ----------------------------------------------------------------------
# Covering graph
# ----------------------------------------------------------------------
class TestCoveringEdges:
    def test_comparison_chain_immediate_predecessor(self):
        reps = [
            (1, _end(_rule("c.synthValue > 3"))),
            (2, _end(_rule("c.synthValue > 5"))),
            (3, _end(_rule("c.synthValue > 9"))),
        ]
        edges = {(e.covered, e.covering) for e in find_covering_edges(reps)}
        # One edge per covered rule, to its immediate coverer — the
        # transitive 3<-1 edge is implied, not materialized.
        assert edges == {(2, 1), (3, 2)}

    def test_needle_substring_coverage(self):
        reps = [
            (1, _end(_rule("c.serverHost contains 'pas'"))),
            (2, _end(_rule("c.serverHost contains 'passau'"))),
        ]
        edges = {(e.covered, e.covering) for e in find_covering_edges(reps)}
        assert edges == {(2, 1)}

    def test_unrelated_rules_no_edges(self):
        reps = [
            (1, _end(_rule("c.synthValue > 5"))),
            (2, _end(_rule("c.serverHost contains 'passau'"))),
        ]
        assert find_covering_edges(reps) == []

    def test_multi_atom_context_coverage(self):
        # Same second conjunct, one loosened bound: covered by the
        # looser spelling.
        reps = [
            (
                1,
                _end(
                    _rule(
                        "c.synthValue > 3 and c.serverHost contains 'pas'"
                    )
                ),
            ),
            (
                2,
                _end(
                    _rule(
                        "c.synthValue > 5 and c.serverHost contains 'pas'"
                    )
                ),
            ),
        ]
        edges = {(e.covered, e.covering) for e in find_covering_edges(reps)}
        assert (2, 1) in edges


# ----------------------------------------------------------------------
# Whole-registry audit
# ----------------------------------------------------------------------
def _codes(audit) -> set[str]:
    return {d.code for d in audit.report.diagnostics}


class TestAuditRegistry:
    def test_empty_database(self, db):
        audit = audit_registry(db)
        assert audit.end_rules == 0
        assert audit.covering_edges == []
        # Advisor recommendations are always emitted (MDV054 infos).
        assert _codes(audit) == {"MDV054"}
        assert audit.report.exit_code() == 0

    def test_duplicate_subscription_reported(
        self, db, registry, engine, schema
    ):
        register_rule(engine, registry, schema, PAPER_RULE, "a")
        register_rule(engine, registry, schema, PAPER_RULE, "b")
        audit = audit_registry(db)
        assert "MDV050" in _codes(audit)
        assert audit.duplicate_subscription_groups

    def test_equivalent_spellings_grouped(self, db, registry, engine, schema):
        first = register_rule(
            engine, registry, schema, _rule("c.synthValue > 5"), "a"
        )
        # Different stored atoms (a redundant extra bound), same
        # canonical form — the atom-level dedupe can't see this one.
        second = register_rule(
            engine,
            registry,
            schema,
            _rule("c.synthValue > 5.0 and c.synthValue > -1"),
            "b",
        )
        audit = audit_registry(db)
        assert "MDV051" in _codes(audit)
        groups = audit.to_dict()["equivalence"]["equivalent_groups"]
        assert sorted([first, second]) in groups

    def test_shadowed_rule_reported(self, db, registry, engine, schema):
        loose = register_rule(
            engine, registry, schema, _rule("c.synthValue > 3"), "a"
        )
        tight = register_rule(
            engine, registry, schema, _rule("c.synthValue > 5"), "b"
        )
        audit = audit_registry(db)
        assert "MDV052" in _codes(audit)
        pairs = {(e.covered, e.covering) for e in audit.covering_edges}
        assert (tight, loose) in pairs

    def test_dead_rule_needs_schema(self, db, registry, engine, schema):
        register_rule(
            engine,
            registry,
            schema,
            _rule("c.serverPort > 9 and c.serverPort < 5"),
            "a",
        )
        assert "MDV053" not in _codes(audit_registry(db))
        audit = audit_registry(db, schema)
        assert "MDV053" in _codes(audit)
        assert audit.dead_rules

    def test_payload_shape(self, db, registry, engine, schema):
        register_rule(engine, registry, schema, PAPER_RULE)
        payload = audit_registry(db, schema).to_dict()
        assert payload["generated_by"] == "repro.analysis.rulebase"
        assert set(payload) == {
            "generated_by",
            "registry",
            "equivalence",
            "subsumption",
            "advisor",
            "diagnostics",
        }
        assert payload["registry"]["end_rules"] == 1
        assert set(payload["advisor"]) == {
            "contains_index",
            "join_evaluation",
            "parallelism",
            "triggering",
            "stats",
        }

    def test_metrics_recorded(self, db, registry, engine, schema):
        from repro.obs.metrics import default_registry

        register_rule(engine, registry, schema, PAPER_RULE)
        audit_registry(db)
        counters = default_registry().counter_values()
        assert counters.get("analysis.audits") == 1
        assert counters.get("analysis.rules_audited") == 1


# ----------------------------------------------------------------------
# Index advisor
# ----------------------------------------------------------------------
class TestAdvisor:
    def test_small_base_recommends_scan(self, db, registry, engine, schema):
        register_rule(engine, registry, schema, PAPER_RULE)
        advice = audit_registry(db).advice
        assert advice.contains_index == "scan"
        assert advice.parallelism == 1

    def test_many_contains_rules_recommend_trigram(self, db, schema):
        from repro.workload.registry import build_registry

        # fig13 mix is half CON: 160 rules -> 80 contains rules, past
        # the 64-rule trigram threshold.
        build_registry(db, 160, mix="fig13", schema=schema)
        advice = audit_registry(db).advice
        assert advice.contains_index == "trigram"
        assert advice.parallelism == 1

    def test_small_base_recommends_sql_triggering(
        self, db, registry, engine, schema
    ):
        register_rule(engine, registry, schema, PAPER_RULE)
        assert audit_registry(db).advice.triggering == "sql"

    def test_large_base_recommends_counting(self, db, schema, monkeypatch):
        from repro.analysis import rulebase
        from repro.workload.registry import build_registry

        # Building 10k real rules is slow; lower the threshold instead —
        # the recommendation logic is a comparison, not the build.
        monkeypatch.setattr(rulebase, "COUNTING_RULE_THRESHOLD", 100)
        build_registry(db, 160, mix="fig13", schema=schema)
        assert audit_registry(db).advice.triggering == "counting"


@pytest.mark.parametrize("count,mix", [(10, "comp"), (12, "uniform")])
def test_build_registry_counts(db, schema, count, mix):
    from repro.workload.registry import build_registry

    build_registry(db, count, mix=mix, schema=schema)
    audit = audit_registry(db)
    assert audit.end_rules == count
