"""CLI tests for the machine-readable surface added with the optimizer:
``--format json`` on every subcommand, the ``audit`` registry section +
``--analysis-json`` dump, and the ``code`` lint-pack subcommand."""

import json

import pytest

from repro.analysis.__main__ import main
from repro.mdv.provider import MetadataProvider
from repro.rdf.schema import objectglobe_schema
from repro.storage.engine import Database

REDUNDANT_RULE = (
    "search CycleProvider c register c "
    "where c.serverPort > 5 and c.serverPort > 3"
)


@pytest.fixture()
def mdp_db(tmp_path):
    """A file-backed MDP store with two equivalent subscriptions."""
    path = str(tmp_path / "mdp.db")
    provider = MetadataProvider(objectglobe_schema(), db=Database(path))
    provider.subscribe(
        "lmr1", "search CycleProvider c register c where c.serverPort > 5"
    )
    provider.subscribe(
        "lmr2",
        "search CycleProvider c register c "
        "where c.serverPort > 5.0 and c.serverPort > -1",
    )
    provider.db.commit()
    return path


def _json_out(capsys):
    return json.loads(capsys.readouterr().out)


class TestLintJson:
    def test_rule_findings_as_json(self, capsys):
        assert main(["lint", "--rule", REDUNDANT_RULE, "--format", "json"]) == 1
        payload = _json_out(capsys)
        assert payload["summary"]["warnings"] >= 1
        (entry,) = payload["inputs"]
        assert entry["rule"] == REDUNDANT_RULE
        assert any(d["code"] == "MDV011" for d in entry["diagnostics"])

    def test_clean_rule_json(self, capsys):
        clean = "search CycleProvider c register c"
        assert main(["lint", "--rule", clean, "--format", "json"]) == 0
        payload = _json_out(capsys)
        assert payload["summary"]["errors"] == 0


class TestAuditJson:
    def test_registry_sections_present(self, mdp_db, capsys):
        code = main(["audit", "--db", mdp_db, "--format", "json"])
        payload = _json_out(capsys)
        rulebase = payload["rulebase"]
        assert rulebase["registry"]["end_rules"] >= 1
        assert rulebase["equivalence"]["equivalent_groups"]
        assert set(rulebase["advisor"]) >= {
            "contains_index",
            "join_evaluation",
            "parallelism",
        }
        # The equivalent pair surfaces as MDV051 — a warning, exit 1.
        assert code == 1
        assert any(
            d["code"] == "MDV051" for d in payload["diagnostics"]
        )

    def test_analysis_json_dump(self, mdp_db, tmp_path, capsys):
        out = tmp_path / "ANALYSIS.json"
        main(["audit", "--db", mdp_db, "--analysis-json", str(out)])
        capsys.readouterr()
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["generated_by"] == "repro.analysis.rulebase"
        assert set(payload) == {
            "generated_by",
            "registry",
            "equivalence",
            "subsumption",
            "advisor",
            "diagnostics",
        }

    def test_text_format_mentions_registry(self, mdp_db, capsys):
        main(["audit", "--db", mdp_db])
        out = capsys.readouterr().out
        assert "MDV051" in out


class TestCodeSubcommand:
    def test_shipped_tree_clean_json(self, capsys):
        assert main(["code", "--format", "json"]) == 0
        payload = _json_out(capsys)
        assert payload["files_checked"] > 50
        assert payload["summary"]["errors"] == 0

    def test_findings_on_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import time\n__all__ = []\nstamp = time.time()\n",
            encoding="utf-8",
        )
        code = main(
            ["code", str(bad), "--root", str(tmp_path), "--format", "json"]
        )
        assert code == 2
        payload = _json_out(capsys)
        assert payload["files_checked"] == 1
        assert any(
            d["code"] == "MDV062" for d in payload["diagnostics"]
        )

    def test_text_output(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f():\n    return 1\n", encoding="utf-8")
        assert main(["code", str(bad), "--root", str(tmp_path)]) == 2
        assert "MDV064" in capsys.readouterr().out


def test_codes_json_lists_rulebase_and_lint_pack(capsys):
    assert main(["codes", "--format", "json"]) == 0
    payload = _json_out(capsys)
    codes = set(payload)
    assert {"MDV050", "MDV051", "MDV054", "MDV060", "MDV064"} <= codes
