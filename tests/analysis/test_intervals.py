"""Unit tests for the abstract constraint domains."""

from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.intervals import (
    NumericConstraints,
    StringConstraints,
    predicate_implies,
)
from tests.conftest import prop_settings

NUMERIC_OPERATORS = ["=", "!=", "<", "<=", ">", ">="]


class TestNumericConstraints:
    def test_empty_is_satisfiable(self):
        assert NumericConstraints().is_satisfiable()

    def test_contradictory_bounds(self):
        constraints = NumericConstraints()
        constraints.add("<", 5.0)
        constraints.add(">", 9.0)
        assert not constraints.is_satisfiable()

    def test_touching_open_bounds(self):
        constraints = NumericConstraints()
        constraints.add("<", 5.0)
        constraints.add(">=", 5.0)
        assert not constraints.is_satisfiable()

    def test_touching_closed_bounds(self):
        constraints = NumericConstraints()
        constraints.add("<=", 5.0)
        constraints.add(">=", 5.0)
        assert constraints.is_satisfiable()

    def test_point_interval_excluded(self):
        constraints = NumericConstraints()
        constraints.add("<=", 5.0)
        constraints.add(">=", 5.0)
        constraints.add("!=", 5.0)
        assert not constraints.is_satisfiable()

    def test_conflicting_equalities(self):
        constraints = NumericConstraints()
        constraints.add("=", 3.0)
        constraints.add("=", 4.0)
        assert not constraints.is_satisfiable()
        assert not constraints.allows(3.0)
        assert not constraints.allows(4.0)

    def test_equality_outside_bounds(self):
        constraints = NumericConstraints()
        constraints.add("=", 3.0)
        constraints.add(">", 7.0)
        assert not constraints.is_satisfiable()

    def test_implies_from_equality(self):
        constraints = NumericConstraints()
        constraints.add("=", 6.0)
        assert constraints.implies(">", 5.0)
        assert constraints.implies("<=", 6.0)
        assert not constraints.implies(">", 6.0)

    def test_implies_from_bounds(self):
        constraints = NumericConstraints()
        constraints.add(">", 5.0)
        assert constraints.implies(">", 3.0)
        assert constraints.implies(">=", 5.0)
        assert constraints.implies("!=", 4.0)
        assert not constraints.implies(">", 6.0)
        assert not constraints.implies("<", 100.0)

    @given(
        op_a=st.sampled_from(NUMERIC_OPERATORS),
        value_a=st.integers(-5, 5),
        op_b=st.sampled_from(NUMERIC_OPERATORS),
        value_b=st.integers(-5, 5),
        probe=st.integers(-12, 12),
    )
    @prop_settings(max_examples=400)
    def test_predicate_implies_is_sound(
        self, op_a, value_a, op_b, value_b, probe
    ):
        """If A implies B, every point satisfying A satisfies B."""
        if predicate_implies(op_a, str(value_a), op_b, str(value_b), True):
            a = NumericConstraints()
            a.add(op_a, float(value_a))
            b = NumericConstraints()
            b.add(op_b, float(value_b))
            for candidate in (float(probe), probe + 0.5):
                if a.allows(candidate):
                    assert b.allows(candidate)


class TestStringConstraints:
    def test_conflicting_equalities(self):
        constraints = StringConstraints()
        constraints.add("=", "a")
        constraints.add("=", "b")
        assert not constraints.is_satisfiable()

    def test_equality_against_substring(self):
        constraints = StringConstraints()
        constraints.add("=", "tum.de")
        constraints.add("contains", "passau")
        assert not constraints.is_satisfiable()

    def test_equality_with_matching_substring(self):
        constraints = StringConstraints()
        constraints.add("=", "uni-passau.de")
        constraints.add("contains", "passau")
        assert constraints.is_satisfiable()

    def test_equality_excluded(self):
        constraints = StringConstraints()
        constraints.add("=", "a")
        constraints.add("!=", "a")
        assert not constraints.is_satisfiable()

    def test_contains_implies_shorter_contains(self):
        assert predicate_implies(
            "contains", "uni-passau", "contains", "passau", False
        )
        assert not predicate_implies(
            "contains", "passau", "contains", "uni-passau", False
        )

    def test_equality_implies_contains(self):
        assert predicate_implies("=", "uni-passau.de", "contains", "passau", False)
        assert not predicate_implies("=", "tum.de", "contains", "passau", False)

    def test_ordering_on_strings_only_trivially(self):
        assert predicate_implies("<", "5", "<", "5", True)
        assert not predicate_implies("<", "a", "<=", "b", False)
