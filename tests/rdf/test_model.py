"""Unit tests for the RDF data model."""

import pytest

from repro.rdf.model import (
    Document,
    Literal,
    Resource,
    Statement,
    URIRef,
    make_uri_reference,
)


class TestURIRef:
    def test_is_a_string(self):
        uri = URIRef("doc.rdf#host")
        assert uri == "doc.rdf#host"
        assert isinstance(uri, str)

    def test_document_uri_and_local_name(self):
        uri = URIRef("doc.rdf#host")
        assert uri.document_uri == "doc.rdf"
        assert uri.local_name == "host"

    def test_without_fragment(self):
        uri = URIRef("http://example.org/doc.rdf")
        assert uri.document_uri == "http://example.org/doc.rdf"
        assert uri.local_name == ""

    def test_last_hash_wins(self):
        uri = URIRef("a#b#c")
        assert uri.document_uri == "a#b"
        assert uri.local_name == "c"

    def test_make_uri_reference(self):
        assert make_uri_reference("doc.rdf", "host") == "doc.rdf#host"

    def test_usable_as_dict_key(self):
        mapping = {URIRef("a#b"): 1}
        assert mapping["a#b"] == 1


class TestLiteral:
    def test_accepts_scalars(self):
        assert Literal("x").value == "x"
        assert Literal(5).value == 5
        assert Literal(5.5).value == 5.5

    def test_rejects_bool_and_none(self):
        with pytest.raises(TypeError):
            Literal(True)
        with pytest.raises(TypeError):
            Literal(None)  # type: ignore[arg-type]

    def test_is_numeric(self):
        assert Literal(1).is_numeric
        assert Literal(1.5).is_numeric
        assert not Literal("1").is_numeric

    def test_sql_value_int(self):
        assert Literal(64).sql_value() == "64"

    def test_sql_value_integral_float_canonicalized(self):
        # Integral floats render like integers so int/float equality is
        # consistent in the string-based FilterData storage.
        assert Literal(64.0).sql_value() == "64"

    def test_sql_value_fractional_float(self):
        assert Literal(2.5).sql_value() == "2.5"

    def test_sql_value_string(self):
        assert Literal("64").sql_value() == "64"


class TestResource:
    def test_add_and_get(self):
        resource = Resource("d#r", "C")
        resource.add("p", 1)
        resource.add("p", 2)
        assert [v.value for v in resource.get("p")] == [1, 2]

    def test_set_replaces(self):
        resource = Resource("d#r", "C")
        resource.add("p", 1)
        resource.set("p", 9)
        assert [v.value for v in resource.get("p")] == [9]

    def test_get_one(self):
        resource = Resource("d#r", "C")
        assert resource.get_one("p") is None
        resource.add("p", 1)
        assert resource.get_one("p").value == 1
        resource.add("p", 2)
        with pytest.raises(ValueError):
            resource.get_one("p")

    def test_remove(self):
        resource = Resource("d#r", "C")
        resource.add("p", 1)
        resource.remove("p")
        assert resource.get("p") == []
        resource.remove("p")  # idempotent

    def test_references_only_uris(self):
        resource = Resource("d#r", "C")
        resource.add("ref", URIRef("d#other"))
        resource.add("lit", "plain")
        assert list(resource.references()) == [("ref", URIRef("d#other"))]

    def test_statements_carry_class(self):
        resource = Resource("d#r", "C")
        resource.add("p", 1)
        (statement,) = list(resource.statements())
        assert statement == Statement(URIRef("d#r"), "C", "p", Literal(1))

    def test_equality_by_content(self):
        a = Resource("d#r", "C", [("p", Literal(1))])
        b = Resource("d#r", "C", [("p", Literal(1))])
        c = Resource("d#r", "C", [("p", Literal(2))])
        assert a == b
        assert a != c

    def test_copy_is_independent(self):
        original = Resource("d#r", "C", [("p", Literal(1))])
        duplicate = original.copy()
        duplicate.add("p", 2)
        assert len(original.get("p")) == 1
        assert len(duplicate.get("p")) == 2

    def test_hash_by_uri(self):
        a = Resource("d#r", "C")
        b = Resource("d#r", "D")
        assert hash(a) == hash(b)


class TestDocument:
    def test_new_resource(self):
        doc = Document("doc.rdf")
        resource = doc.new_resource("host", "CycleProvider")
        assert resource.uri == "doc.rdf#host"
        assert doc.get("doc.rdf#host") is resource

    def test_add_rejects_foreign_uri(self):
        doc = Document("doc.rdf")
        with pytest.raises(ValueError):
            doc.add(Resource("other.rdf#x", "C"))

    def test_membership_and_len(self):
        doc = Document("doc.rdf")
        doc.new_resource("a", "C")
        assert "doc.rdf#a" in doc
        assert "doc.rdf#b" not in doc
        assert len(doc) == 1

    def test_remove(self):
        doc = Document("doc.rdf")
        doc.new_resource("a", "C")
        removed = doc.remove("doc.rdf#a")
        assert removed is not None
        assert len(doc) == 0
        assert doc.remove("doc.rdf#a") is None

    def test_statements_cover_all_resources(self):
        doc = Document("doc.rdf")
        doc.new_resource("a", "C").add("p", 1)
        doc.new_resource("b", "C").add("p", 2)
        assert len(list(doc.statements())) == 2

    def test_copy_deep(self):
        doc = Document("doc.rdf")
        doc.new_resource("a", "C").add("p", 1)
        duplicate = doc.copy()
        duplicate.get("doc.rdf#a").set("p", 9)
        assert doc.get("doc.rdf#a").get_one("p").value == 1
