"""Unit tests for document diffing (the update/delete entry point)."""

import pytest

from repro.rdf.diff import deletion_diff, diff_documents
from repro.rdf.model import Document


def make(uri="d.rdf", **resources):
    doc = Document(uri)
    for local, props in resources.items():
        resource = doc.new_resource(local, "CycleProvider")
        for name, value in props.items():
            resource.add(name, value)
    return doc


def test_initial_registration():
    new = make(a={"p": 1}, b={"p": 2})
    diff = diff_documents(None, new)
    assert diff.is_initial_registration
    assert {r.uri.local_name for r in diff.inserted} == {"a", "b"}
    assert not diff.updated and not diff.deleted


def test_unchanged():
    old = make(a={"p": 1})
    new = make(a={"p": 1})
    diff = diff_documents(old, new)
    assert not diff.has_changes
    assert len(diff.unchanged) == 1


def test_property_change_is_update():
    old = make(a={"p": 1})
    new = make(a={"p": 2})
    diff = diff_documents(old, new)
    (pair,) = diff.updated
    assert pair[0].get_one("p").value == 1
    assert pair[1].get_one("p").value == 2


def test_property_added_is_update():
    old = make(a={"p": 1})
    new = make(a={"p": 1, "q": 2})
    assert len(diff_documents(old, new).updated) == 1


def test_property_removed_is_update():
    old = make(a={"p": 1, "q": 2})
    new = make(a={"p": 1})
    assert len(diff_documents(old, new).updated) == 1


def test_resource_removed_is_delete():
    old = make(a={"p": 1}, b={"p": 2})
    new = make(a={"p": 1})
    diff = diff_documents(old, new)
    assert [r.uri.local_name for r in diff.deleted] == ["b"]


def test_resource_added_is_insert():
    old = make(a={"p": 1})
    new = make(a={"p": 1}, b={"p": 2})
    diff = diff_documents(old, new)
    assert [r.uri.local_name for r in diff.inserted] == ["b"]


def test_mixed_diff_shapes():
    old = make(a={"p": 1}, b={"p": 2}, c={"p": 3})
    new = make(a={"p": 1}, b={"p": 9}, d={"p": 4})
    diff = diff_documents(old, new)
    assert [r.uri.local_name for r in diff.inserted] == ["d"]
    assert [old_r.uri.local_name for old_r, __ in diff.updated] == ["b"]
    assert [r.uri.local_name for r in diff.deleted] == ["c"]
    assert [r.uri.local_name for r in diff.unchanged] == ["a"]


def test_old_versions_and_new_versions():
    old = make(a={"p": 1}, b={"p": 2})
    new = make(a={"p": 9}, c={"p": 3})
    diff = diff_documents(old, new)
    old_changed = {r.uri.local_name for r in diff.old_versions_of_changed()}
    new_changed = {r.uri.local_name for r in diff.new_versions_of_changed()}
    assert old_changed == {"a", "b"}  # updated-old + deleted
    assert new_changed == {"a", "c"}  # updated-new + inserted


def test_uri_mismatch_rejected():
    with pytest.raises(ValueError):
        diff_documents(make("a.rdf"), make("b.rdf"))


def test_deletion_diff():
    old = make(a={"p": 1}, b={"p": 2})
    diff = deletion_diff(old)
    assert {r.uri.local_name for r in diff.deleted} == {"a", "b"}
    assert not diff.inserted and not diff.updated
    assert diff.has_changes


def test_summary_mentions_counts():
    old = make(a={"p": 1})
    new = make(b={"p": 1})
    summary = diff_documents(old, new).summary()
    assert "+1" in summary and "-1" in summary
