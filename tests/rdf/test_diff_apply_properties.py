"""Property tests: atom decomposition round-trips, diff-apply = direct.

Two invariants the incremental update path rests on:

1. **Atoms are lossless.**  A document's ``FilterData`` rows determine
   every resource's class and property values — grouping the atoms by
   resource reconstructs exactly what the document said (the identity
   atom carries the class, the remaining rows the statements).
2. **A diff is as good as a fresh start.**  Registering version A and
   then publishing ``diff(A, B)`` must leave the engine in the same
   observable state — materialized matches of every subscription — as
   registering version B directly.  This is the paper's Section 3.5
   claim that the three-pass algorithm computes the correct final state
   for arbitrary updates.
"""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.filter.decompose import document_atoms
from repro.filter.engine import FilterEngine
from repro.rdf.diff import diff_documents
from repro.rdf.model import Document, URIRef
from repro.rdf.namespaces import RDF_SUBJECT
from repro.rdf.schema import objectglobe_schema
from repro.rules.decompose import decompose_rule
from repro.rules.normalize import normalize_rule
from repro.rules.parser import parse_rule
from repro.rules.registry import RuleRegistry
from repro.storage.engine import Database
from repro.storage.schema import create_all
from tests.conftest import prop_settings

SCHEMA = objectglobe_schema()

RULES = [
    "search CycleProvider c register c "
    "where c.serverInformation.memory > 64",
    "search CycleProvider c register c where c.serverHost contains 'de'",
    "search ServerInformation s register s where s.cpu >= 500",
    "search CycleProvider c register c",
]

host_names = st.sampled_from(
    ["a.uni-passau.de", "b.tum.de", "c.fu.org", "d.lmu.de"]
)
memories = st.integers(min_value=1, max_value=300)
cpus = st.integers(min_value=100, max_value=900)


@st.composite
def schema_documents(draw, index: int = 0):
    """A Figure-1-shaped document with drawn property values."""
    doc = Document(f"doc{index}.rdf")
    host = doc.new_resource("host", "CycleProvider")
    host.add("serverHost", draw(host_names))
    host.add("serverInformation", URIRef(f"doc{index}.rdf#info"))
    info = doc.new_resource("info", "ServerInformation")
    info.add("memory", draw(memories))
    info.add("cpu", draw(cpus))
    return doc


@prop_settings(50)
@given(doc=schema_documents())
def test_document_atoms_roundtrip(doc):
    """Grouping a document's atoms by resource reconstructs it."""
    atoms = document_atoms(doc)
    by_uri: dict[str, list] = {}
    classes: dict[str, str] = {}
    for uri, rdf_class, prop, value in atoms:
        if prop == RDF_SUBJECT:
            # The identity atom: value is the URI itself.
            assert value == uri
            classes[uri] = rdf_class
        else:
            by_uri.setdefault(uri, []).append((prop, value))
        assert classes.get(uri, rdf_class) == rdf_class

    assert set(classes) == {str(r.uri) for r in doc}
    for resource in doc:
        uri = str(resource.uri)
        assert classes[uri] == resource.rdf_class
        expected = sorted(
            (s.predicate, s.sql_value()) for s in resource.statements()
        )
        assert sorted(by_uri.get(uri, [])) == expected


def _engine_with_rules():
    db = Database()
    create_all(db)
    registry = RuleRegistry(db)
    engine = FilterEngine(db, registry)
    ends = []
    for i, text in enumerate(RULES):
        normalized = normalize_rule(parse_rule(text), SCHEMA)[0]
        registration = registry.register_subscription(
            f"lmr{i}", text, decompose_rule(normalized, SCHEMA)
        )
        engine.initialize_rules(registration.created)
        ends.append(registration.end_rule)
    return db, engine, ends


def _final_state(engine, ends):
    return [
        sorted(str(u) for u in engine.current_matches(end)) for end in ends
    ]


@prop_settings(40)
@given(data=st.data())
def test_diff_then_apply_equals_direct_registration(data):
    old = data.draw(schema_documents(), label="old version")
    new = data.draw(schema_documents(), label="new version")

    db_a, engine_a, ends_a = _engine_with_rules()
    db_b, engine_b, ends_b = _engine_with_rules()
    try:
        # Path A: register old, then publish the diff to new.
        engine_a.process_diff(diff_documents(None, old))
        engine_a.process_diff(diff_documents(old, new))
        # Path B: register new directly.
        engine_b.process_diff(diff_documents(None, new))
        assert _final_state(engine_a, ends_a) == _final_state(engine_b, ends_b)
    finally:
        db_a.close()
        db_b.close()
