"""Unit tests for the RDF serializers (round-trips with the parser)."""

from repro.rdf.model import Document, URIRef
from repro.rdf.parser import parse_document
from repro.rdf.serializer import to_ntriples, to_rdfxml


def test_rdfxml_roundtrip(schema, figure1):
    xml = to_rdfxml(figure1)
    parsed = parse_document(xml, figure1.uri, schema)
    assert sorted(parsed.resources) == sorted(figure1.resources)
    for uri, resource in figure1.resources.items():
        assert parsed.get(uri) == resource


def test_rdfxml_flat_form_uses_rdf_resource(figure1):
    xml = to_rdfxml(figure1)
    assert 'rdf:resource="doc.rdf#info"' in xml
    assert xml.count("<CycleProvider") == 1


def test_rdfxml_escapes_special_characters(schema):
    doc = Document("d.rdf")
    doc.new_resource("x", "CycleProvider").add("serverHost", "a<b&c>d")
    xml = to_rdfxml(doc)
    assert "a&lt;b&amp;c&gt;d" in xml
    parsed = parse_document(xml, "d.rdf", schema)
    assert parsed.get("d.rdf#x").get_one("serverHost").value == "a<b&c>d"


def test_rdfxml_absolute_uri_uses_about():
    doc = Document("d.rdf")
    # A resource whose URI has no local fragment part.
    from repro.rdf.model import Resource

    doc.resources[URIRef("d.rdf")] = Resource(URIRef("d.rdf"), "Thing")
    xml = to_rdfxml(doc)
    assert 'rdf:about="d.rdf"' in xml


def test_ntriples_stable_and_sorted(figure1):
    lines = to_ntriples(figure1).splitlines()
    assert lines == sorted(lines)
    assert "<doc.rdf#host> serverPort 5874 ." in lines
    assert "<doc.rdf#host> serverInformation <doc.rdf#info> ." in lines
    assert '<doc.rdf#host> serverHost "pirates.uni-passau.de" .' in lines


def test_ntriples_empty_document():
    assert to_ntriples(Document("d.rdf")) == ""
