"""Tests for the namespace helpers and remaining serializer utilities."""

from repro.rdf.namespaces import (
    MDV_NS,
    RDF_ID_ATTR,
    RDF_NS,
    RDF_ROOT_TAG,
    RDF_SUBJECT,
    qualified,
    split_qualified,
)
from repro.rdf.serializer import indent_xml


def test_qualified_roundtrip():
    tag = qualified("http://example.org/ns#", "memory")
    assert tag == "{http://example.org/ns#}memory"
    assert split_qualified(tag) == ("http://example.org/ns#", "memory")


def test_split_unqualified():
    assert split_qualified("memory") == ("", "memory")


def test_constants_are_consistent():
    assert RDF_ID_ATTR == qualified(RDF_NS, "ID")
    assert RDF_ROOT_TAG == qualified(RDF_NS, "RDF")
    assert RDF_SUBJECT == "rdf#subject"
    assert MDV_NS.endswith("#")


def test_indent_xml_pretty_prints():
    pretty = indent_xml("<a><b>1</b><b>2</b></a>")
    assert pretty.count("\n") >= 3
    assert "<b>1</b>" in pretty


def test_doctests_in_namespaces():
    import doctest

    import repro.rdf.namespaces as module

    results = doctest.testmod(module)
    assert results.failed == 0


def test_doctests_in_model():
    import doctest

    import repro.rdf.model as module

    results = doctest.testmod(module)
    assert results.failed == 0


def test_doctests_in_parser_modules():
    import doctest

    import repro.rules.parser as rules_parser

    results = doctest.testmod(rules_parser)
    assert results.failed == 0
