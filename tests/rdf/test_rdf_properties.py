"""Property-based tests for the RDF layer (round-trips and invariants)."""

from tests.conftest import prop_settings
from hypothesis import given, settings, strategies as st

from repro.rdf.diff import diff_documents
from repro.rdf.model import Document, Literal, Resource, URIRef
from repro.rdf.parser import parse_document
from repro.rdf.serializer import to_ntriples, to_rdfxml

# XML 1.0 forbids most control characters; stay within printable text
# plus the characters that require escaping.
text_values = st.text(
    alphabet=st.characters(
        codec="utf-8",
        min_codepoint=0x20,
        max_codepoint=0x2FF,
        exclude_characters="\x7f",
    ),
    min_size=0,
    max_size=20,
)
local_ids = st.text(
    alphabet=st.sampled_from("abcdefghij0123456789"), min_size=1, max_size=8
)
property_names = st.sampled_from(["p", "q", "tag", "ref", "value"])
scalar_values = st.one_of(
    st.integers(min_value=-(10**9), max_value=10**9),
    text_values,
)


@st.composite
def documents(draw):
    doc = Document("doc.rdf")
    ids = draw(st.lists(local_ids, min_size=1, max_size=5, unique=True))
    for local in ids:
        resource = doc.new_resource(local, draw(st.sampled_from(["A", "B"])))
        for __ in range(draw(st.integers(min_value=0, max_value=4))):
            name = draw(property_names)
            if name == "ref":
                target = draw(st.sampled_from(ids))
                resource.add(name, URIRef(f"doc.rdf#{target}"))
            else:
                resource.add(name, draw(scalar_values))
    return doc


@prop_settings(60)
@given(doc=documents())
def test_rdfxml_roundtrip_property(doc):
    """serialize → parse is the identity on documents.

    No schema is passed, so literal typing relies on the numeric-text
    heuristics — integers and non-numeric-looking strings round-trip
    exactly; the generator avoids ambiguous numeric strings by
    construction (a string "42" would legitimately come back as int 42).
    """
    for resource in doc:
        for name in resource.property_names():
            filtered = []
            for value in resource.get(name):
                if isinstance(value, Literal) and isinstance(value.value, str):
                    text = value.value.strip()
                    if _looks_numeric(text) or text != value.value:
                        continue  # would not round-trip untyped
                filtered.append(value)
            resource._properties[name] = filtered  # test-only surgery
    xml = to_rdfxml(doc)
    parsed = parse_document(xml, doc.uri)
    pruned = {
        uri: r for uri, r in doc.resources.items()
    }
    assert set(parsed.resources) == set(pruned)
    for uri, resource in pruned.items():
        other = parsed.get(uri)
        for name in resource.property_names():
            expected = [str(v) for v in resource.get(name)]
            got = [str(v) for v in other.get(name)]
            assert got == expected, (uri, name)


def _looks_numeric(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True


@prop_settings(60)
@given(doc=documents())
def test_ntriples_deterministic(doc):
    assert to_ntriples(doc) == to_ntriples(doc.copy())


@prop_settings(60)
@given(doc=documents())
def test_diff_against_self_is_empty(doc):
    diff = diff_documents(doc, doc.copy())
    assert not diff.has_changes
    assert len(diff.unchanged) == len(doc)


@prop_settings(60)
@given(doc=documents(), data=st.data())
def test_diff_detects_any_single_mutation(doc, data):
    mutated = doc.copy()
    uris = sorted(mutated.resources)
    victim_uri = data.draw(st.sampled_from(uris))
    action = data.draw(st.sampled_from(["remove", "add_prop", "new_resource"]))
    if action == "remove":
        mutated.remove(victim_uri)
        diff = diff_documents(doc, mutated)
        assert [r.uri for r in diff.deleted] == [victim_uri]
    elif action == "add_prop":
        mutated.get(victim_uri).add("fresh_prop", 1)
        diff = diff_documents(doc, mutated)
        assert [old.uri for old, __ in diff.updated] == [victim_uri]
    else:
        mutated.new_resource("zzznew", "A")
        diff = diff_documents(doc, mutated)
        assert [r.uri.local_name for r in diff.inserted] == ["zzznew"]


@prop_settings(80)
@given(value=st.one_of(st.integers(), st.floats(allow_nan=False, allow_infinity=False)))
def test_literal_sql_value_numeric_consistency(value):
    """Equal numbers render to equal canonical strings (int vs float)."""
    literal = Literal(value)
    rendered = literal.sql_value()
    assert float(rendered) == float(value)
    if isinstance(value, float) and value.is_integer():
        assert rendered == str(int(value))


@prop_settings(60)
@given(
    doc_uri=st.text(
        alphabet=st.sampled_from("abc./:"), min_size=1, max_size=10
    ).filter(lambda s: "#" not in s),
    local=local_ids,
)
def test_uriref_split_roundtrip(doc_uri, local):
    from repro.rdf.model import make_uri_reference

    uri = make_uri_reference(doc_uri, local)
    assert uri.document_uri == doc_uri
    assert uri.local_name == local
