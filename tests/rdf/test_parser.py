"""Unit tests for the RDF/XML subset parser."""

import pytest

from repro.errors import DocumentParseError
from repro.rdf.model import URIRef
from repro.rdf.parser import parse_document, parse_literal_text
from repro.rdf.schema import PropertyKind

FIGURE1_XML = """<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns="http://mdv.db.fmi.uni-passau.de/schema#">
  <CycleProvider rdf:ID="host">
    <serverHost>pirates.uni-passau.de</serverHost>
    <serverPort>5874</serverPort>
    <serverInformation>
      <ServerInformation rdf:ID="info">
        <memory>92</memory>
        <cpu>600</cpu>
      </ServerInformation>
    </serverInformation>
  </CycleProvider>
</rdf:RDF>
"""


class TestParseLiteralText:
    def test_schema_typed(self):
        assert parse_literal_text("92", PropertyKind.INTEGER).value == 92
        assert parse_literal_text("92", PropertyKind.STRING).value == "92"
        assert parse_literal_text("1.5", PropertyKind.FLOAT).value == 1.5

    def test_untyped_guesses(self):
        assert parse_literal_text("92").value == 92
        assert parse_literal_text("1.5").value == 1.5
        assert parse_literal_text("host").value == "host"

    def test_bad_integer(self):
        with pytest.raises(DocumentParseError):
            parse_literal_text("abc", PropertyKind.INTEGER)

    def test_bad_float(self):
        with pytest.raises(DocumentParseError):
            parse_literal_text("abc", PropertyKind.FLOAT)

    def test_whitespace_stripped(self):
        assert parse_literal_text("  92\n", PropertyKind.INTEGER).value == 92


class TestParseDocument:
    def test_figure1_shape(self, schema):
        doc = parse_document(FIGURE1_XML, "doc.rdf", schema)
        assert sorted(doc.resources) == ["doc.rdf#host", "doc.rdf#info"]
        host = doc.get("doc.rdf#host")
        assert host.rdf_class == "CycleProvider"
        assert host.get_one("serverHost").value == "pirates.uni-passau.de"
        assert host.get_one("serverPort").value == 5874
        # Nested resource hoisted and replaced by a reference.
        assert host.get_one("serverInformation") == URIRef("doc.rdf#info")
        info = doc.get("doc.rdf#info")
        assert info.get_one("memory").value == 92
        assert info.get_one("cpu").value == 600

    def test_parse_without_schema_guesses_types(self):
        doc = parse_document(FIGURE1_XML, "doc.rdf")
        assert doc.get("doc.rdf#info").get_one("memory").value == 92

    def test_rdf_resource_attribute(self, schema):
        xml = """<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#">
          <CycleProvider rdf:ID="host">
            <serverInformation rdf:resource="other.rdf#info"/>
          </CycleProvider>
        </rdf:RDF>"""
        doc = parse_document(xml, "doc.rdf", schema)
        host = doc.get("doc.rdf#host")
        assert host.get_one("serverInformation") == URIRef("other.rdf#info")

    def test_rdf_about_keeps_absolute_uri(self):
        xml = """<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#">
          <Thing rdf:about="http://example.org/x#y"/>
        </rdf:RDF>"""
        doc = parse_document(xml, "doc.rdf")
        assert "http://example.org/x#y" in doc

    def test_schema_reference_property_text(self, schema):
        # A reference-typed property given as text becomes a URIRef.
        xml = """<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#">
          <CycleProvider rdf:ID="host">
            <serverInformation>other.rdf#info</serverInformation>
          </CycleProvider>
        </rdf:RDF>"""
        doc = parse_document(xml, "doc.rdf", schema)
        value = doc.get("doc.rdf#host").get_one("serverInformation")
        assert isinstance(value, URIRef)

    def test_repeated_properties(self):
        xml = """<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#">
          <Thing rdf:ID="t"><tag>a</tag><tag>b</tag></Thing>
        </rdf:RDF>"""
        doc = parse_document(xml, "doc.rdf")
        assert [v.value for v in doc.get("doc.rdf#t").get("tag")] == ["a", "b"]

    def test_malformed_xml(self):
        with pytest.raises(DocumentParseError):
            parse_document("<rdf:RDF", "doc.rdf")

    def test_wrong_root_element(self):
        with pytest.raises(DocumentParseError):
            parse_document("<notrdf/>", "doc.rdf")

    def test_resource_without_id(self):
        xml = """<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#">
          <Thing/>
        </rdf:RDF>"""
        with pytest.raises(DocumentParseError):
            parse_document(xml, "doc.rdf")

    def test_property_with_two_nested_resources_rejected(self):
        xml = """<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#">
          <Thing rdf:ID="t">
            <ref><A rdf:ID="a"/><B rdf:ID="b"/></ref>
          </Thing>
        </rdf:RDF>"""
        with pytest.raises(DocumentParseError):
            parse_document(xml, "doc.rdf")
