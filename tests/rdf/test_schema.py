"""Unit tests for RDF Schema support (classes, references, validation)."""

import pytest

from repro.errors import (
    SchemaError,
    SchemaValidationError,
    UnknownClassError,
    UnknownPropertyError,
)
from repro.rdf.model import Document, Resource, URIRef
from repro.rdf.schema import (
    PropertyDef,
    PropertyKind,
    RefStrength,
    Schema,
    objectglobe_schema,
)


class TestPropertyDef:
    def test_reference_requires_target(self):
        with pytest.raises(SchemaError):
            PropertyDef("ref", PropertyKind.REFERENCE)

    def test_literal_rejects_target(self):
        with pytest.raises(SchemaError):
            PropertyDef("p", PropertyKind.STRING, target_class="C")

    def test_strength_flags(self):
        strong = PropertyDef(
            "ref",
            PropertyKind.REFERENCE,
            target_class="C",
            strength=RefStrength.STRONG,
        )
        weak = PropertyDef("ref2", PropertyKind.REFERENCE, target_class="C")
        assert strong.is_strong
        assert not weak.is_strong

    def test_is_numeric(self):
        assert PropertyDef("i", PropertyKind.INTEGER).is_numeric
        assert PropertyDef("f", PropertyKind.FLOAT).is_numeric
        assert not PropertyDef("s", PropertyKind.STRING).is_numeric


class TestSchemaLookups:
    def test_duplicate_class_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.define_class("CycleProvider")

    def test_unknown_class(self, schema):
        with pytest.raises(UnknownClassError):
            schema.class_def("Nope")

    def test_property_resolution_via_superclass(self, rich_schema):
        # serverHost is defined on Provider; visible on CycleProvider.
        prop = rich_schema.property_def("CycleProvider", "serverHost")
        assert prop.kind is PropertyKind.STRING

    def test_unknown_property(self, schema):
        with pytest.raises(UnknownPropertyError):
            schema.property_def("CycleProvider", "nope")

    def test_subclasses_of(self, rich_schema):
        assert sorted(rich_schema.subclasses_of("Provider")) == [
            "CycleProvider",
            "DataProvider",
            "Provider",
        ]
        assert rich_schema.subclasses_of("CycleProvider") == ["CycleProvider"]

    def test_superclass_chain(self, rich_schema):
        assert list(rich_schema.superclass_chain("CycleProvider")) == [
            "CycleProvider",
            "Provider",
        ]

    def test_resolve_path(self, schema):
        prop = schema.resolve_path(
            "CycleProvider", ["serverInformation", "memory"]
        )
        assert prop.name == "memory"
        assert prop.kind is PropertyKind.INTEGER

    def test_resolve_path_through_non_reference_fails(self, schema):
        with pytest.raises(SchemaError):
            schema.resolve_path("CycleProvider", ["serverHost", "memory"])

    def test_resolve_empty_path_fails(self, schema):
        with pytest.raises(SchemaError):
            schema.resolve_path("CycleProvider", [])

    def test_path_classes(self, schema):
        classes = schema.path_classes(
            "CycleProvider", ["serverInformation", "memory"]
        )
        assert classes == ["ServerInformation"]

    def test_strong_reference_properties(self, schema):
        strong = schema.strong_reference_properties("CycleProvider")
        assert [p.name for p in strong] == ["serverInformation"]
        assert schema.strong_reference_properties("ServerInformation") == []


class TestFreezeCheck:
    def test_detects_missing_superclass(self):
        schema = Schema()
        schema.define_class("A", superclass="Missing")
        with pytest.raises(UnknownClassError):
            schema.freeze_check()

    def test_detects_missing_reference_target(self):
        schema = Schema()
        schema.define_class(
            "A",
            [PropertyDef("r", PropertyKind.REFERENCE, target_class="Missing")],
        )
        with pytest.raises(UnknownClassError):
            schema.freeze_check()

    def test_detects_superclass_cycle(self):
        schema = Schema()
        schema.define_class("A", superclass="B")
        schema.define_class("B", superclass="A")
        with pytest.raises(SchemaError):
            schema.freeze_check()


class TestValidation:
    def test_figure1_document_validates(self, schema, figure1):
        schema.validate_document(figure1)

    def test_unknown_class_rejected(self, schema):
        doc = Document("d.rdf")
        doc.new_resource("x", "Mystery")
        with pytest.raises(SchemaValidationError):
            schema.validate_document(doc)

    def test_unknown_property_rejected(self, schema):
        doc = Document("d.rdf")
        doc.new_resource("x", "CycleProvider").add("bogus", 1)
        with pytest.raises(SchemaValidationError):
            schema.validate_document(doc)

    def test_type_mismatch_rejected(self, schema):
        doc = Document("d.rdf")
        doc.new_resource("x", "ServerInformation").add("memory", "lots")
        with pytest.raises(SchemaValidationError):
            schema.validate_document(doc)

    def test_float_property_accepts_int(self, rich_schema):
        doc = Document("d.rdf")
        doc.new_resource("x", "ServerInformation").add("load", 1)
        rich_schema.validate_document(doc)

    def test_reference_needs_uri(self, schema):
        doc = Document("d.rdf")
        doc.new_resource("x", "CycleProvider").add("serverInformation", "oops")
        with pytest.raises(SchemaValidationError):
            schema.validate_document(doc)

    def test_literal_property_rejects_uri(self, schema):
        doc = Document("d.rdf")
        doc.new_resource("x", "ServerInformation").add(
            "memory", URIRef("d.rdf#y")
        )
        with pytest.raises(SchemaValidationError):
            schema.validate_document(doc)

    def test_multivalue_on_single_valued_rejected(self, schema):
        doc = Document("d.rdf")
        resource = doc.new_resource("x", "ServerInformation")
        resource.add("memory", 1)
        resource.add("memory", 2)
        with pytest.raises(SchemaValidationError):
            schema.validate_document(doc)

    def test_multivalued_property_accepts_many(self, rich_schema):
        doc = Document("d.rdf")
        resource = doc.new_resource("x", "CycleProvider")
        resource.add("tags", "fast")
        resource.add("tags", "cheap")
        rich_schema.validate_document(doc)

    def test_local_reference_class_checked(self, schema):
        doc = Document("d.rdf")
        host = doc.new_resource("host", "CycleProvider")
        host.add("serverInformation", URIRef("d.rdf#wrong"))
        doc.new_resource("wrong", "CycleProvider")
        with pytest.raises(SchemaValidationError):
            schema.validate_document(doc)

    def test_external_reference_accepted(self, schema):
        doc = Document("d.rdf")
        host = doc.new_resource("host", "CycleProvider")
        host.add("serverInformation", URIRef("elsewhere.rdf#info"))
        schema.validate_document(doc)

    def test_required_property_enforced(self):
        schema = Schema()
        schema.define_class(
            "A", [PropertyDef("must", PropertyKind.STRING, required=True)]
        )
        schema.freeze_check()
        doc = Document("d.rdf")
        doc.new_resource("x", "A")
        with pytest.raises(SchemaValidationError):
            schema.validate_document(doc)

    def test_subclass_instance_valid_against_superclass_reference(
        self, rich_schema
    ):
        doc = Document("d.rdf")
        data = doc.new_resource("d", "DataProvider")
        data.add("host", URIRef("d.rdf#c"))
        doc.new_resource("c", "CycleProvider")
        rich_schema.validate_document(doc)


def test_objectglobe_schema_is_consistent():
    schema = objectglobe_schema()
    assert schema.has_class("CycleProvider")
    assert schema.property_def("CycleProvider", "serverInformation").is_strong
