"""Tests for RDF Schema serialization of MDV schemas."""

import pytest
from tests.conftest import prop_settings
from hypothesis import given, settings, strategies as st

from repro.errors import DocumentParseError
from repro.rdf.schema import (
    PropertyDef,
    PropertyKind,
    RefStrength,
    Schema,
    objectglobe_schema,
)
from repro.rdf.schema_io import parse_schema, schema_to_rdfxml


def schemas_equal(left: Schema, right: Schema) -> bool:
    if sorted(left.class_names()) != sorted(right.class_names()):
        return False
    for name in left.class_names():
        l_def, r_def = left.class_def(name), right.class_def(name)
        if l_def.superclass != r_def.superclass:
            return False
        if l_def.properties != r_def.properties:
            return False
    return True


class TestRoundTrip:
    def test_objectglobe_roundtrip(self):
        schema = objectglobe_schema()
        xml = schema_to_rdfxml(schema)
        assert schemas_equal(parse_schema(xml), schema)

    def test_document_mentions_mdv_vocabulary(self):
        xml = schema_to_rdfxml(objectglobe_schema())
        assert "mdv:referenceStrength" in xml
        assert "strong" in xml
        assert "rdfs:Class" in xml
        assert 'rdf:Property rdf:ID="CycleProvider.serverHost"' in xml

    def test_subclass_and_flags_roundtrip(self, rich_schema):
        xml = schema_to_rdfxml(rich_schema)
        parsed = parse_schema(xml)
        assert schemas_equal(parsed, rich_schema)
        assert parsed.class_def("CycleProvider").superclass == "Provider"
        assert parsed.property_def("CycleProvider", "tags").multivalued

    def test_required_flag_roundtrip(self):
        schema = Schema()
        schema.define_class(
            "A", [PropertyDef("must", PropertyKind.STRING, required=True)]
        )
        schema.freeze_check()
        parsed = parse_schema(schema_to_rdfxml(schema))
        assert parsed.property_def("A", "must").required

    def test_same_property_name_on_two_classes(self):
        schema = Schema()
        schema.define_class("A", [PropertyDef("size", PropertyKind.INTEGER)])
        schema.define_class("B", [PropertyDef("size", PropertyKind.STRING)])
        schema.freeze_check()
        parsed = parse_schema(schema_to_rdfxml(schema))
        assert parsed.property_def("A", "size").kind is PropertyKind.INTEGER
        assert parsed.property_def("B", "size").kind is PropertyKind.STRING


class TestParsingErrors:
    def test_malformed_xml(self):
        with pytest.raises(DocumentParseError):
            parse_schema("<rdf:RDF")

    def test_unknown_domain_rejected(self):
        xml = schema_to_rdfxml(objectglobe_schema()).replace(
            'rdfs:domain rdf:resource="#CycleProvider"',
            'rdfs:domain rdf:resource="#Ghost"',
        )
        with pytest.raises(DocumentParseError):
            parse_schema(xml)

    def test_bad_strength_rejected(self):
        xml = schema_to_rdfxml(objectglobe_schema()).replace(
            ">strong<", ">adamantium<"
        )
        with pytest.raises(DocumentParseError):
            parse_schema(xml)

    def test_dangling_reference_target_rejected(self):
        schema = Schema()
        schema.define_class(
            "A",
            [
                PropertyDef(
                    "r", PropertyKind.REFERENCE, target_class="A",
                )
            ],
        )
        schema.freeze_check()
        xml = schema_to_rdfxml(schema).replace(
            '<rdfs:range rdf:resource="#A"/>',
            '<rdfs:range rdf:resource="#Missing"/>',
        )
        with pytest.raises(DocumentParseError):
            parse_schema(xml)


# -- property-based round trip ------------------------------------------
class_names = st.sampled_from(["Alpha", "Beta", "Gamma", "Delta"])
prop_names = st.sampled_from(["p1", "p2", "value", "link", "items"])
literal_kinds = st.sampled_from(
    [PropertyKind.STRING, PropertyKind.INTEGER, PropertyKind.FLOAT]
)


@st.composite
def random_schemas(draw):
    names = draw(
        st.lists(class_names, min_size=1, max_size=4, unique=True)
    )
    schema = Schema()
    for index, name in enumerate(names):
        properties = []
        used = set()
        for __ in range(draw(st.integers(min_value=0, max_value=3))):
            prop_name = draw(prop_names)
            if prop_name in used:
                continue
            used.add(prop_name)
            if draw(st.booleans()):
                properties.append(
                    PropertyDef(
                        prop_name,
                        draw(literal_kinds),
                        multivalued=draw(st.booleans()),
                        required=draw(st.booleans()),
                    )
                )
            else:
                properties.append(
                    PropertyDef(
                        prop_name,
                        PropertyKind.REFERENCE,
                        target_class=draw(st.sampled_from(names)),
                        strength=draw(st.sampled_from(list(RefStrength))),
                        multivalued=draw(st.booleans()),
                    )
                )
        # Only earlier classes may serve as superclasses (acyclic).
        superclass = None
        if index > 0 and draw(st.booleans()):
            superclass = draw(st.sampled_from(names[:index]))
        definition = schema.define_class(name, superclass=superclass)
        for prop in properties:
            # Avoid redefining an inherited property name ambiguously;
            # MDV resolves through the superclass chain anyway.
            definition.add(prop)
    schema.freeze_check()
    return schema


@prop_settings(60)
@given(schema=random_schemas())
def test_schema_roundtrip_property(schema):
    xml = schema_to_rdfxml(schema)
    assert schemas_equal(parse_schema(xml), schema)
