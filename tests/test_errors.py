"""Tests for the exception hierarchy."""

import pytest

from repro import errors


def test_everything_derives_from_mdv_error():
    for name in errors.__all__:
        exc_class = getattr(errors, name)
        assert issubclass(exc_class, errors.MDVError), name


def test_hierarchy_shape():
    assert issubclass(errors.UnknownClassError, errors.SchemaError)
    assert issubclass(errors.UnknownPropertyError, errors.SchemaError)
    assert issubclass(errors.SchemaValidationError, errors.SchemaError)
    assert issubclass(errors.DocumentParseError, errors.ParseError)
    assert issubclass(errors.RuleSyntaxError, errors.ParseError)
    assert issubclass(errors.QuerySyntaxError, errors.RuleSyntaxError)
    assert issubclass(errors.NormalizationError, errors.RuleError)
    assert issubclass(errors.DecompositionError, errors.RuleError)
    assert issubclass(errors.DocumentNotFoundError, errors.RepositoryError)


def test_unknown_class_message():
    err = errors.UnknownClassError("Mystery")
    assert "Mystery" in str(err)
    assert err.class_name == "Mystery"


def test_unknown_property_message():
    err = errors.UnknownPropertyError("C", "p")
    assert "C" in str(err) and "p" in str(err)


def test_rule_syntax_error_position():
    err = errors.RuleSyntaxError("bad token", position=17)
    assert "17" in str(err)
    assert err.position == 17
    plain = errors.RuleSyntaxError("bad token")
    assert plain.position is None


def test_document_not_found_carries_uri():
    err = errors.DocumentNotFoundError("doc.rdf")
    assert err.document_uri == "doc.rdf"


def test_single_catch_all():
    with pytest.raises(errors.MDVError):
        raise errors.DecompositionError("nope")
