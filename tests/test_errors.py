"""Tests for the exception hierarchy."""

import pytest

from repro import errors


def test_everything_derives_from_mdv_error():
    for name in errors.__all__:
        exc_class = getattr(errors, name)
        assert issubclass(exc_class, errors.MDVError), name


def test_hierarchy_shape():
    assert issubclass(errors.UnknownClassError, errors.SchemaError)
    assert issubclass(errors.UnknownPropertyError, errors.SchemaError)
    assert issubclass(errors.SchemaValidationError, errors.SchemaError)
    assert issubclass(errors.DocumentParseError, errors.ParseError)
    assert issubclass(errors.RuleSyntaxError, errors.ParseError)
    assert issubclass(errors.QuerySyntaxError, errors.RuleSyntaxError)
    assert issubclass(errors.NormalizationError, errors.RuleError)
    assert issubclass(errors.DecompositionError, errors.RuleError)
    assert issubclass(errors.DocumentNotFoundError, errors.RepositoryError)
    assert issubclass(errors.EndpointDownError, errors.NetworkError)
    assert issubclass(errors.DeliveryError, errors.NetworkError)
    assert issubclass(errors.NetworkError, errors.MDVError)


def test_network_errors_are_not_storage_or_rule_errors():
    """The retryable branch is disjoint from the fail-fast branches."""
    assert not issubclass(errors.NetworkError, errors.StorageError)
    assert not issubclass(errors.NetworkError, errors.RuleError)
    assert not issubclass(errors.StorageError, errors.NetworkError)


def test_endpoint_down_carries_endpoint_and_reason():
    err = errors.EndpointDownError("mdp-1")
    assert err.endpoint == "mdp-1"
    assert err.reason == "unreachable"
    assert "mdp-1" in str(err)
    crashed = errors.EndpointDownError("lmr-2", "crashed")
    assert crashed.reason == "crashed"
    assert "crashed" in str(crashed)


def test_delivery_error_is_catchable_as_network_error():
    with pytest.raises(errors.NetworkError):
        raise errors.DeliveryError("dropped in transit")


def test_unknown_class_message():
    err = errors.UnknownClassError("Mystery")
    assert "Mystery" in str(err)
    assert err.class_name == "Mystery"


def test_unknown_property_message():
    err = errors.UnknownPropertyError("C", "p")
    assert "C" in str(err) and "p" in str(err)


def test_rule_syntax_error_position():
    err = errors.RuleSyntaxError("bad token", position=17)
    assert "17" in str(err)
    assert err.position == 17
    plain = errors.RuleSyntaxError("bad token")
    assert plain.position is None


def test_document_not_found_carries_uri():
    err = errors.DocumentNotFoundError("doc.rdf")
    assert err.document_uri == "doc.rdf"


def test_single_catch_all():
    with pytest.raises(errors.MDVError):
        raise errors.DecompositionError("nope")
