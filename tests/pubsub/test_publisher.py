"""Unit tests for notification routing (the Publisher)."""

from repro.filter.results import PublishOutcome
from repro.pubsub.notifications import (
    DeleteNotification,
    MatchNotification,
    NotificationBatch,
    UnmatchNotification,
)
from repro.pubsub.publisher import Publisher
from repro.rdf.model import Document, URIRef
from repro.rules.decompose import decompose_rule
from repro.rules.normalize import normalize_rule
from repro.rules.parser import parse_rule


def setup_world(schema, registry):
    """Two subscribers on one rule, one subscriber on another."""
    doc = Document("doc.rdf")
    host = doc.new_resource("host", "CycleProvider")
    host.add("serverHost", "pirates.uni-passau.de")
    host.add("serverInformation", URIRef("doc.rdf#info"))
    info = doc.new_resource("info", "ServerInformation")
    info.add("memory", 92)

    def register(subscriber, text):
        normalized = normalize_rule(parse_rule(text), schema)[0]
        return registry.register_subscription(
            subscriber, text, decompose_rule(normalized, schema)
        )

    shared_rule = (
        "search CycleProvider c register c "
        "where c.serverHost contains 'passau'"
    )
    first = register("lmr-1", shared_rule)
    second = register("lmr-2", shared_rule)
    other = register(
        "lmr-2", "search ServerInformation s register s where s.memory > 1"
    )
    publisher = Publisher(schema, registry, doc.get)
    return doc, publisher, first, second, other


def test_matches_fan_out_to_all_subscribers(schema, registry):
    doc, publisher, first, __, __o = setup_world(schema, registry)
    outcome = PublishOutcome()
    outcome.add_matched(first.end_rule, URIRef("doc.rdf#host"))
    batches = publisher.batches_for(outcome)
    assert [b.subscriber for b in batches] == ["lmr-1", "lmr-2"]
    for batch in batches:
        (notification,) = batch.notifications
        assert isinstance(notification, MatchNotification)
        assert notification.uri == "doc.rdf#host"


def test_payload_contains_strong_closure(schema, registry):
    doc, publisher, first, __, __o = setup_world(schema, registry)
    outcome = PublishOutcome()
    outcome.add_matched(first.end_rule, URIRef("doc.rdf#host"))
    (batch, __b2) = publisher.batches_for(outcome)
    payload = batch.notifications[0].payload
    assert [str(r.uri) for r in payload.strong_closure] == ["doc.rdf#info"]


def test_payload_is_a_copy(schema, registry):
    doc, publisher, first, __, __o = setup_world(schema, registry)
    outcome = PublishOutcome()
    outcome.add_matched(first.end_rule, URIRef("doc.rdf#host"))
    (batch, __b2) = publisher.batches_for(outcome)
    payload = batch.notifications[0].payload
    payload.resource.set("serverHost", "mutated")
    assert doc.get("doc.rdf#host").get_one("serverHost").value != "mutated"


def test_unmatch_routing(schema, registry):
    __, publisher, first, __s, other = setup_world(schema, registry)
    outcome = PublishOutcome()
    outcome.add_unmatched(other.end_rule, URIRef("doc.rdf#info"))
    (batch,) = publisher.batches_for(outcome)
    assert batch.subscriber == "lmr-2"
    (notification,) = batch.notifications
    assert isinstance(notification, UnmatchNotification)
    assert notification.uri == "doc.rdf#info"


def test_deletions_broadcast_to_every_subscriber(schema, registry):
    __, publisher, *__rest = setup_world(schema, registry)
    outcome = PublishOutcome()
    outcome.deleted.add(URIRef("doc.rdf#info"))
    batches = publisher.batches_for(outcome)
    assert {b.subscriber for b in batches} == {"lmr-1", "lmr-2"}
    for batch in batches:
        assert any(
            isinstance(n, DeleteNotification) for n in batch.notifications
        )


def test_missing_resource_content_skipped(schema, registry):
    __, publisher, first, __s, __o = setup_world(schema, registry)
    outcome = PublishOutcome()
    outcome.add_matched(first.end_rule, URIRef("gone.rdf#x"))
    assert publisher.batches_for(outcome) == []


def test_named_rule_pseudo_subscriber_excluded(schema, registry):
    rule_text = "search CycleProvider c register c"
    normalized = normalize_rule(parse_rule(rule_text), schema)[0]
    registration = registry.register_named_rule(
        "AllProviders", rule_text, decompose_rule(normalized, schema)
    )
    doc = Document("doc.rdf")
    doc.new_resource("host", "CycleProvider")
    publisher = Publisher(schema, registry, doc.get)
    outcome = PublishOutcome()
    outcome.add_matched(registration.end_rule, URIRef("doc.rdf#host"))
    assert publisher.batches_for(outcome) == []


def test_initial_batch(schema, registry):
    doc, publisher, first, __, __o = setup_world(schema, registry)
    subscription = first.subscription
    batch = publisher.initial_batch(
        "lmr-1",
        subscription.sub_id,
        subscription.rule_text,
        [URIRef("doc.rdf#host")],
    )
    assert isinstance(batch, NotificationBatch)
    assert len(batch) == 1
    assert batch.notifications[0].sub_id == subscription.sub_id


def test_payload_cache_reuses_closure_computation(schema, registry):
    doc, publisher, first, second, __ = setup_world(schema, registry)
    outcome = PublishOutcome()
    outcome.add_matched(first.end_rule, URIRef("doc.rdf#host"))
    batches = publisher.batches_for(outcome)
    payloads = [b.notifications[0].payload for b in batches]
    assert payloads[0] is payloads[1]


def test_notification_counter(schema, registry):
    __, publisher, first, __s, __o = setup_world(schema, registry)
    outcome = PublishOutcome()
    outcome.add_matched(first.end_rule, URIRef("doc.rdf#host"))
    publisher.batches_for(outcome)
    assert publisher.notifications_sent == 2


def test_batch_size_estimates(schema, registry):
    doc, publisher, first, __, __o = setup_world(schema, registry)
    outcome = PublishOutcome()
    outcome.add_matched(first.end_rule, URIRef("doc.rdf#host"))
    (batch, __b) = publisher.batches_for(outcome)
    assert batch.approximate_size() > 0
