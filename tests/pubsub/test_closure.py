"""Unit tests for strong-reference closure (paper, Section 2.4)."""

from repro.pubsub.closure import strong_closure, strong_targets
from repro.rdf.model import Document, URIRef
from repro.rdf.schema import PropertyDef, PropertyKind, RefStrength, Schema


def chain_schema() -> Schema:
    """A → strong → B → strong → C, plus a weak edge A → D."""
    schema = Schema()
    schema.define_class("D", [])
    schema.define_class("C", [])
    schema.define_class(
        "B",
        [
            PropertyDef(
                "next", PropertyKind.REFERENCE, target_class="C",
                strength=RefStrength.STRONG,
            )
        ],
    )
    schema.define_class(
        "A",
        [
            PropertyDef(
                "child", PropertyKind.REFERENCE, target_class="B",
                strength=RefStrength.STRONG,
            ),
            PropertyDef("weak", PropertyKind.REFERENCE, target_class="D"),
        ],
    )
    schema.define_class(
        "Cyclic",
        [
            PropertyDef(
                "peer", PropertyKind.REFERENCE, target_class="Cyclic",
                strength=RefStrength.STRONG, multivalued=True,
            )
        ],
    )
    schema.freeze_check()
    return schema


def build_chain():
    doc = Document("d.rdf")
    a = doc.new_resource("a", "A")
    a.add("child", URIRef("d.rdf#b"))
    a.add("weak", URIRef("d.rdf#dd"))
    b = doc.new_resource("b", "B")
    b.add("next", URIRef("d.rdf#c"))
    doc.new_resource("c", "C")
    doc.new_resource("dd", "D")
    return doc


def test_strong_targets_direct_only():
    schema = chain_schema()
    doc = build_chain()
    assert strong_targets(doc.get("d.rdf#a"), schema) == [URIRef("d.rdf#b")]
    assert strong_targets(doc.get("d.rdf#c"), schema) == []


def test_weak_references_never_followed():
    schema = chain_schema()
    doc = build_chain()
    closure = strong_closure(doc.get("d.rdf#a"), schema, doc.get)
    assert {str(r.uri) for r in closure} == {"d.rdf#b", "d.rdf#c"}


def test_closure_is_transitive_and_excludes_start():
    schema = chain_schema()
    doc = build_chain()
    closure = strong_closure(doc.get("d.rdf#a"), schema, doc.get)
    assert all(r.uri != "d.rdf#a" for r in closure)
    assert len(closure) == 2


def test_dangling_reference_skipped():
    schema = chain_schema()
    doc = Document("d.rdf")
    a = doc.new_resource("a", "A")
    a.add("child", URIRef("gone.rdf#b"))
    closure = strong_closure(doc.get("d.rdf#a"), schema, doc.get)
    assert closure == []


def test_cycles_terminate():
    schema = chain_schema()
    doc = Document("d.rdf")
    x = doc.new_resource("x", "Cyclic")
    y = doc.new_resource("y", "Cyclic")
    x.add("peer", URIRef("d.rdf#y"))
    y.add("peer", URIRef("d.rdf#x"))
    closure = strong_closure(doc.get("d.rdf#x"), schema, doc.get)
    assert {str(r.uri) for r in closure} == {"d.rdf#y"}


def test_unknown_class_has_no_strong_targets():
    schema = chain_schema()
    doc = Document("d.rdf")
    weird = doc.new_resource("w", "Mystery")
    weird.add("child", URIRef("d.rdf#x"))
    assert strong_targets(weird, schema) == []


def test_objectglobe_server_information_travels(schema, figure1):
    closure = strong_closure(figure1.get("doc.rdf#host"), schema, figure1.get)
    assert [str(r.uri) for r in closure] == ["doc.rdf#info"]
