"""Unit tests for rule normalization (paper, Section 3.3)."""

import pytest

from repro.errors import NormalizationError, UnknownClassError
from repro.rdf.namespaces import RDF_SUBJECT
from repro.rules.normalize import normalize_rule, to_dnf
from repro.rules.parser import parse_rule

from tests.conftest import PAPER_RULE


def normalize_one(text, schema, named=None):
    results = normalize_rule(parse_rule(text), schema, named)
    assert len(results) == 1
    return results[0]


class TestPathSplitting:
    def test_paper_normalized_form(self, schema):
        """The paper's Example 1 normalization (Section 3.3)."""
        normalized = normalize_one(
            "search CycleProvider c register c "
            "where c.serverHost contains 'uni-passau.de' "
            "and c.serverInformation.memory > 64",
            schema,
        )
        assert normalized.register == "c"
        # The search part now contains all classes used in the where part.
        assert list(normalized.variables.values()) == [
            "CycleProvider",
            "ServerInformation",
        ]
        # Path expressions are split into single property accesses.
        assert len(normalized.constants) == 2
        assert len(normalized.joins) == 1
        join = normalized.joins[0]
        assert join.left_prop == "serverInformation"
        assert join.right_prop is None

    def test_shared_prefix_single_variable(self, schema):
        """Both paths bind to the SAME fresh variable (Section 3.3.1)."""
        normalized = normalize_one(PAPER_RULE, schema)
        # One fresh variable, not two: same-resource semantics preserved.
        assert len(normalized.variables) == 2
        fresh = [v for v in normalized.variables if v.startswith("_v")]
        assert len(fresh) == 1
        assert len(normalized.joins) == 1

    def test_distinct_roots_get_distinct_variables(self, rich_schema):
        normalized = normalize_one(
            "search DataProvider d, DataProvider e register d "
            "where d.host.serverPort = 1 and e.host.serverPort = 2 "
            "and d.host = e.host",
            rich_schema,
        )
        fresh = [v for v in normalized.variables if v.startswith("_v")]
        assert len(fresh) == 2

    def test_deep_path(self, rich_schema):
        normalized = normalize_one(
            "search DataProvider d register d "
            "where d.host.serverInformation.memory > 64",
            rich_schema,
        )
        # d -> host -> serverInformation: two fresh variables.
        fresh = [v for v in normalized.variables if v.startswith("_v")]
        assert len(fresh) == 2
        assert len(normalized.joins) == 2

    def test_path_through_literal_rejected(self, schema):
        with pytest.raises(NormalizationError):
            normalize_one(
                "search CycleProvider c register c "
                "where c.serverHost.memory > 64",
                schema,
            )


class TestPredicateClassification:
    def test_bare_variable_becomes_subject_predicate(self, schema):
        normalized = normalize_one(
            "search CycleProvider c register c where c = 'doc.rdf#host'",
            schema,
        )
        (predicate,) = normalized.constants
        assert predicate.prop == RDF_SUBJECT

    def test_constant_on_left_is_flipped(self, schema):
        normalized = normalize_one(
            "search ServerInformation s register s where 64 < s.memory",
            schema,
        )
        (predicate,) = normalized.constants
        assert predicate.operator == ">"
        assert predicate.value.value == 64

    def test_numeric_equality_is_string_compared(self, schema):
        # Following the paper's storage design, = compares canonically
        # rendered strings; only the ordering operators reconvert.
        normalized = normalize_one(
            "search ServerInformation s register s where s.memory = 64",
            schema,
        )
        assert normalized.constants[0].numeric is False

    def test_ordering_operator_is_numeric(self, schema):
        normalized = normalize_one(
            "search ServerInformation s register s where s.memory > 64",
            schema,
        )
        assert normalized.constants[0].numeric is True

    def test_ordering_on_string_property_rejected(self, schema):
        with pytest.raises(NormalizationError):
            normalize_one(
                "search CycleProvider c register c where c.serverHost > 'a'",
                schema,
            )

    def test_ordering_with_string_constant_rejected(self, schema):
        with pytest.raises(NormalizationError):
            normalize_one(
                "search ServerInformation s register s where s.memory > 'x'",
                schema,
            )

    def test_contains_requires_string(self, schema):
        with pytest.raises(NormalizationError):
            normalize_one(
                "search ServerInformation s register s "
                "where s.memory contains '6'",
                schema,
            )

    def test_contains_constant_left_rejected(self, schema):
        with pytest.raises(NormalizationError):
            normalize_one(
                "search CycleProvider c register c "
                "where 'x' contains c.serverHost",
                schema,
            )

    def test_numeric_property_vs_string_constant_rejected(self, schema):
        with pytest.raises(NormalizationError):
            normalize_one(
                "search ServerInformation s register s where s.memory = 'a'",
                schema,
            )

    def test_string_property_vs_number_rejected(self, schema):
        with pytest.raises(NormalizationError):
            normalize_one(
                "search CycleProvider c register c where c.serverHost = 5",
                schema,
            )

    def test_two_constants_rejected(self, schema):
        with pytest.raises(NormalizationError):
            normalize_one(
                "search CycleProvider c register c where 1 = 1", schema
            )

    def test_bare_variable_ordering_rejected(self, schema):
        with pytest.raises(NormalizationError):
            normalize_one(
                "search CycleProvider c register c where c > 'x'", schema
            )

    def test_unknown_class_in_search(self, schema):
        with pytest.raises(UnknownClassError):
            normalize_one("search Unicorn u register u", schema)

    def test_unbound_variable_in_where(self, schema):
        with pytest.raises(NormalizationError):
            normalize_one(
                "search CycleProvider c register c where x.memory > 64",
                schema,
            )


class TestJoinPredicates:
    def test_identity_join(self, schema):
        normalized = normalize_one(
            "search CycleProvider c, ServerInformation s register c "
            "where c.serverInformation = s and s.memory > 64",
            schema,
        )
        (join,) = normalized.joins
        assert join.left_prop == "serverInformation"
        assert join.right_prop is None

    def test_ordering_join_requires_numeric_both_sides(self, rich_schema):
        with pytest.raises(NormalizationError):
            normalize_one(
                "search CycleProvider c, ServerInformation s register c "
                "where c.serverHost < s.memory",
                rich_schema,
            )

    def test_numeric_join_allowed(self, rich_schema):
        normalized = normalize_one(
            "search ServerInformation a, ServerInformation b register a "
            "where a.memory > b.cpu and a = b",
            rich_schema,
        )
        numeric_joins = [j for j in normalized.joins if j.numeric]
        assert len(numeric_joins) == 1

    def test_reference_join_target_checked(self, rich_schema):
        with pytest.raises(NormalizationError):
            normalize_one(
                "search CycleProvider c, DataProvider d register c "
                "where c.serverInformation = d",
                rich_schema,
            )

    def test_literal_vs_bare_variable_rejected(self, schema):
        with pytest.raises(NormalizationError):
            normalize_one(
                "search CycleProvider c, ServerInformation s register c "
                "where c.serverHost = s and s.memory > 1",
                schema,
            )

    def test_self_join_predicate(self, rich_schema):
        normalized = normalize_one(
            "search ServerInformation s register s where s.memory = s.cpu",
            rich_schema,
        )
        (join,) = normalized.joins
        assert join.is_self_join


class TestConnectivity:
    def test_disconnected_variable_rejected(self, schema):
        with pytest.raises(NormalizationError):
            normalize_one(
                "search CycleProvider c, ServerInformation s register c "
                "where s.memory > 64",
                schema,
            )

    def test_connected_chain_accepted(self, rich_schema):
        normalize_one(
            "search DataProvider d, CycleProvider c, ServerInformation s "
            "register d where d.host = c and c.serverInformation = s "
            "and s.memory > 64",
            rich_schema,
        )


class TestAnyOperator:
    def test_any_on_multivalued_accepted(self, rich_schema):
        normalized = normalize_one(
            "search CycleProvider c register c where c.tags? = 'fast'",
            rich_schema,
        )
        assert normalized.constants[0].prop == "tags"

    def test_any_on_single_valued_rejected(self, rich_schema):
        with pytest.raises(NormalizationError):
            normalize_one(
                "search CycleProvider c register c where c.serverPort? = 80",
                rich_schema,
            )

    def test_any_mid_path(self, rich_schema):
        normalized = normalize_one(
            "search CycleProvider c register c "
            "where c.mirrors?.serverHost contains 'de'",
            rich_schema,
        )
        assert len(normalized.joins) == 1


class TestOrSplitting:
    def test_or_produces_two_conjuncts(self, schema):
        results = normalize_rule(
            parse_rule(
                "search CycleProvider c register c "
                "where c.synthValue > 9 or c.serverHost contains 'de'"
            ),
            schema,
        )
        assert len(results) == 2

    def test_and_distributes_over_or(self, schema):
        results = normalize_rule(
            parse_rule(
                "search CycleProvider c register c "
                "where c.synthValue > 1 and "
                "(c.serverHost contains 'a' or c.serverHost contains 'b')"
            ),
            schema,
        )
        assert len(results) == 2
        for conjunct in results:
            properties = sorted(p.prop for p in conjunct.constants)
            assert properties == ["serverHost", "synthValue"]

    def test_dnf_explosion_guarded(self, schema):
        clauses = " and ".join(
            f"(c.synthValue = {i} or c.synthValue = {i + 100})"
            for i in range(8)
        )
        with pytest.raises(NormalizationError):
            normalize_rule(
                parse_rule(
                    f"search CycleProvider c register c where {clauses}"
                ),
                schema,
            )

    def test_to_dnf_shape(self, schema):
        rule = parse_rule(
            "search CycleProvider c register c "
            "where (c.synthValue = 1 or c.synthValue = 2) "
            "and (c.synthValue = 3 or c.synthValue = 4)"
        )
        conjuncts = to_dnf(rule.where)
        assert len(conjuncts) == 4
        assert all(len(conjunct) == 2 for conjunct in conjuncts)


class TestNamedExtensions:
    def test_named_extension_type_used(self, schema):
        normalized = normalize_one(
            "search PassauHosts p register p where p.serverPort = 80",
            schema,
            named={"PassauHosts": "CycleProvider"},
        )
        assert normalized.variables["p"] == "CycleProvider"

    def test_unknown_extension_rejected(self, schema):
        with pytest.raises(UnknownClassError):
            normalize_one(
                "search PassauHosts p register p", schema, named={}
            )
