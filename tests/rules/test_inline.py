"""Tests for named-rule inlining (the query-path expansion)."""

import pytest

from repro.errors import NormalizationError
from repro.rules.ast import Query
from repro.rules.inline import inline_named_query, inline_named_rules
from repro.rules.parser import parse_query, parse_rule

PASSAU = parse_rule(
    "search CycleProvider c register c "
    "where c.serverHost contains 'passau'"
)
BIG = parse_rule(
    "search CycleProvider c, ServerInformation s register c "
    "where c.serverInformation = s and s.memory > 64"
)


def test_simple_expansion():
    rule = parse_rule("search PassauHosts p register p where p.serverPort = 80")
    expanded = inline_named_rules(rule, {"PassauHosts": PASSAU})
    assert [e.name for e in expanded.extensions] == ["CycleProvider"]
    assert [e.variable for e in expanded.extensions] == ["p"]
    text = str(expanded)
    assert "contains 'passau'" in text
    assert "p.serverPort = 80" in text


def test_register_variable_unified():
    rule = parse_rule("search PassauHosts p register p")
    expanded = inline_named_rules(rule, {"PassauHosts": PASSAU})
    # The named rule's register variable c was renamed to p everywhere.
    assert "c" not in {e.variable for e in expanded.extensions}
    assert "p.serverHost" in str(expanded)


def test_auxiliary_variables_renamed_apart():
    rule = parse_rule(
        "search BigHosts b, ServerInformation s register b "
        "where b.serverInformation = s"
    )
    expanded = inline_named_rules(rule, {"BigHosts": BIG})
    variables = [e.variable for e in expanded.extensions]
    # The named rule's own 's' must not collide with the outer 's'.
    assert len(variables) == len(set(variables))
    assert "s" in variables  # the outer one survives as-is


def test_two_uses_of_same_named_rule():
    rule = parse_rule(
        "search BigHosts a, BigHosts b register a where a = b"
    )
    expanded = inline_named_rules(rule, {"BigHosts": BIG})
    variables = [e.variable for e in expanded.extensions]
    assert len(variables) == len(set(variables)) == 4


def test_recursive_expansion():
    fast = parse_rule(
        "search PassauHosts p register p where p.serverPort = 80"
    )
    rule = parse_rule("search FastPassau f register f")
    expanded = inline_named_rules(
        rule, {"PassauHosts": PASSAU, "FastPassau": fast}
    )
    text = str(expanded)
    assert "contains 'passau'" in text
    assert "serverPort = 80" in text
    assert [e.name for e in expanded.extensions] == ["CycleProvider"]


def test_cycle_detected():
    selfish = parse_rule("search Loop x register x where x.serverPort = 1")
    with pytest.raises(NormalizationError):
        inline_named_rules(
            parse_rule("search Loop y register y"), {"Loop": selfish}
        )


def test_unknown_names_left_untouched():
    rule = parse_rule("search CycleProvider c register c")
    expanded = inline_named_rules(rule, {"PassauHosts": PASSAU})
    assert expanded == rule


def test_or_inside_named_rule_survives():
    either = parse_rule(
        "search CycleProvider c register c "
        "where c.serverHost contains 'a' or c.serverHost contains 'b'"
    )
    rule = parse_rule("search Either e register e where e.serverPort = 80")
    expanded = inline_named_rules(rule, {"Either": either})
    assert "or" in str(expanded)


def test_inline_named_query():
    query = parse_query("search PassauHosts p where p.serverPort > 90")
    expanded = inline_named_query(query, {"PassauHosts": PASSAU})
    assert isinstance(expanded, Query)
    assert expanded.result == "p"
    assert "contains 'passau'" in str(expanded)


def test_expanded_rule_normalizes(schema):
    """The expansion must type-check against the plain schema."""
    from repro.rules.normalize import normalize_rule

    rule = parse_rule("search BigHosts b register b")
    expanded = inline_named_rules(rule, {"BigHosts": BIG})
    conjuncts = normalize_rule(expanded, schema)
    assert len(conjuncts) == 1
    assert conjuncts[0].register == "b"
