"""Property-based tests for the rule language pipeline."""

from tests.conftest import prop_settings
from hypothesis import given, settings, strategies as st

from repro.rdf.schema import objectglobe_schema
from repro.rules.decompose import decompose_rule
from repro.rules.normalize import normalize_rule
from repro.rules.parser import parse_rule

SCHEMA = objectglobe_schema()

comparison_ops = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])
int_constants = st.integers(min_value=-1000, max_value=1000)
string_constants = st.sampled_from(
    ["uni-passau.de", "tum", "it's", "a%b_c", ""]
)


@st.composite
def predicates(draw):
    kind = draw(
        st.sampled_from(
            ["host_contains", "host_eq", "synth_cmp", "memory_path", "cpu_path", "oid"]
        )
    )
    if kind == "host_contains":
        needle = draw(string_constants).replace("'", "''")
        return f"c.serverHost contains '{needle}'"
    if kind == "host_eq":
        value = draw(string_constants).replace("'", "''")
        op = draw(st.sampled_from(["=", "!="]))
        return f"c.serverHost {op} '{value}'"
    if kind == "synth_cmp":
        return f"c.synthValue {draw(comparison_ops)} {draw(int_constants)}"
    if kind == "memory_path":
        return (
            f"c.serverInformation.memory {draw(comparison_ops)} "
            f"{draw(int_constants)}"
        )
    if kind == "cpu_path":
        return (
            f"c.serverInformation.cpu {draw(comparison_ops)} "
            f"{draw(int_constants)}"
        )
    return "c = 'doc0.rdf#host'"


@st.composite
def rule_texts(draw):
    parts = draw(st.lists(predicates(), min_size=1, max_size=4))
    return (
        "search CycleProvider c register c where " + " and ".join(parts)
    )


@prop_settings(80)
@given(text=rule_texts())
def test_parse_str_roundtrip(text):
    rule = parse_rule(text)
    assert parse_rule(str(rule)) == rule


@prop_settings(80)
@given(text=rule_texts())
def test_decomposition_is_deterministic(text):
    """Equal rules always decompose to equal atom keys (dedup soundness)."""
    first = decompose_rule(
        normalize_rule(parse_rule(text), SCHEMA)[0], SCHEMA
    )
    second = decompose_rule(
        normalize_rule(parse_rule(text), SCHEMA)[0], SCHEMA
    )
    assert first.end.key == second.end.key
    assert [a.key for a in first.atoms] == [a.key for a in second.atoms]


@prop_settings(80)
@given(text=rule_texts())
def test_decomposition_structure_invariants(text):
    decomposed = decompose_rule(
        normalize_rule(parse_rule(text), SCHEMA)[0], SCHEMA
    )
    from repro.rules.atoms import JoinAtom, TriggeringAtom

    keys = set()
    for atom in decomposed.atoms:
        # Children-first ordering.
        if isinstance(atom, JoinAtom):
            assert atom.left.key in keys
            assert atom.right.key in keys
        keys.add(atom.key)
        # Triggering atoms refer to a single class with a full predicate
        # or none at all.
        if isinstance(atom, TriggeringAtom):
            assert (atom.prop is None) == (atom.operator is None)
    # The end rule registers the rule's search class.
    assert decomposed.rdf_class == "CycleProvider"
    # The dependency tree depth bounds the filter iteration count.
    assert decomposed.depth() <= len(decomposed.atoms)


@prop_settings(60)
@given(text=rule_texts())
def test_predicate_order_does_not_change_end_key(text):
    """Conjunct order must not affect the canonical decomposition."""
    rule = parse_rule(text)
    from repro.rules.ast import And, Rule

    if not isinstance(rule.where, And):
        return
    reversed_where = And(tuple(reversed(rule.where.operands)))
    reordered = Rule(rule.extensions, rule.register, reversed_where)
    original = decompose_rule(
        normalize_rule(rule, SCHEMA)[0], SCHEMA
    )
    shuffled = decompose_rule(
        normalize_rule(reordered, SCHEMA)[0], SCHEMA
    )
    assert original.end.key == shuffled.end.key
