"""Tests for the rule explanation utility."""

from repro.rules.explain import explain_decomposition, explain_rule

from tests.conftest import PAPER_RULE


def test_explain_paper_rule(schema):
    text = explain_rule(PAPER_RULE, schema)
    assert "normalized:" in text
    assert "triggering" in text
    assert "join" in text
    assert "max filter iterations: 2" in text
    assert "uni-passau.de" in text


def test_explain_class_only_rule(schema):
    text = explain_rule("search CycleProvider c register c", schema)
    assert "class-only on CycleProvider" in text
    assert "max filter iterations: 0" in text


def test_explain_or_rule(schema):
    text = explain_rule(
        "search CycleProvider c register c "
        "where c.synthValue > 1 or c.synthValue < 0",
        schema,
    )
    assert "or-split into 2 conjuncts" in text
    assert text.count("--- conjunct") == 2


def test_explain_named_extension(schema):
    text = explain_rule(
        "search Fast f register f where f.serverPort = 80",
        schema,
        named_extension_types={"Fast": "CycleProvider"},
    )
    assert "CycleProvider.serverPort = 80" in text


def test_explain_decomposition_direct(schema):
    from repro.rules.decompose import decompose_rule
    from repro.rules.normalize import normalize_rule
    from repro.rules.parser import parse_rule

    decomposed = decompose_rule(
        normalize_rule(parse_rule(PAPER_RULE), schema)[0], schema
    )
    text = explain_decomposition(decomposed)
    assert "children first" in text
    assert "registers CycleProvider" in text
