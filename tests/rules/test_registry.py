"""Unit tests for the persistent rule registry (paper, §3.3.2–3.3.4)."""

import pytest

from repro.errors import SubscriptionError
from repro.rules.decompose import decompose_rule
from repro.rules.normalize import normalize_rule
from repro.rules.parser import parse_rule
from repro.rules.registry import RuleRegistry

from tests.conftest import PAPER_RULE


def decomposed(text, schema, named=None, producers=None):
    normalized = normalize_rule(parse_rule(text), schema, named)[0]
    return decompose_rule(normalized, schema, producers)


PATH_MEMORY = (
    "search CycleProvider c register c "
    "where c.serverInformation.memory > 64"
)
PATH_CPU = (
    "search CycleProvider c register c "
    "where c.serverInformation.cpu > 500"
)


class TestEnsureAtoms:
    def test_paper_example_counts(self, registry, schema, db):
        registry.register_subscription(
            "lmr", PAPER_RULE, decomposed(PAPER_RULE, schema)
        )
        assert registry.triggering_count() == 3
        assert registry.join_count() == 2
        assert registry.group_count() == 2

    def test_dedup_across_subscriptions(self, registry, schema):
        """Section 3.3.3: RuleA and the join group are shared."""
        registry.register_subscription(
            "lmr1", PATH_MEMORY, decomposed(PATH_MEMORY, schema)
        )
        before = registry.atom_count()
        registration = registry.register_subscription(
            "lmr2", PATH_CPU, decomposed(PATH_CPU, schema)
        )
        # Class-only CycleProvider atom reused; 2 new atoms (cpu + join).
        assert registry.atom_count() == before + 2
        assert len(registration.created) == 2
        assert registration.reused_existing_atoms
        # Both joins share one rule group (C1/C2 of the paper).
        assert registry.group_count() == 1

    def test_identical_rule_twice_creates_nothing(self, registry, schema):
        registry.register_subscription(
            "lmr1", PATH_MEMORY, decomposed(PATH_MEMORY, schema)
        )
        registration = registry.register_subscription(
            "lmr2", PATH_MEMORY, decomposed(PATH_MEMORY, schema)
        )
        assert registration.created == []

    def test_duplicate_subscription_rejected(self, registry, schema):
        registry.register_subscription(
            "lmr", PATH_MEMORY, decomposed(PATH_MEMORY, schema)
        )
        with pytest.raises(SubscriptionError):
            registry.register_subscription(
                "lmr", PATH_MEMORY, decomposed(PATH_MEMORY, schema)
            )

    def test_no_duplicate_rule_texts(self, registry, schema, db):
        registry.register_subscription(
            "lmr", PAPER_RULE, decomposed(PAPER_RULE, schema)
        )
        total = db.scalar("SELECT COUNT(*) FROM atomic_rules")
        distinct = db.scalar("SELECT COUNT(DISTINCT rule_text) FROM atomic_rules")
        assert total == distinct

    def test_dedup_disabled_shares_nothing(self, db, schema):
        registry = RuleRegistry(db, deduplicate=False)
        registry.register_subscription(
            "lmr1", PATH_MEMORY, decomposed(PATH_MEMORY, schema)
        )
        before = registry.atom_count()
        registration = registry.register_subscription(
            "lmr2", PATH_CPU, decomposed(PATH_CPU, schema)
        )
        assert registry.atom_count() == before + len(registration.all_rule_ids)


class TestTriggeringIndexRows:
    def test_oid_rule_lands_in_eq_table(self, registry, schema, db):
        rule = "search CycleProvider c register c where c = 'd.rdf#h'"
        registry.register_subscription("lmr", rule, decomposed(rule, schema))
        row = db.query_one("SELECT * FROM filter_rules_eq")
        assert row["property"] == "rdf#subject"
        assert row["value"] == "d.rdf#h"

    def test_contains_rule_lands_in_con_table(self, registry, schema, db):
        rule = (
            "search CycleProvider c register c "
            "where c.serverHost contains 'de'"
        )
        registry.register_subscription("lmr", rule, decomposed(rule, schema))
        assert db.count("filter_rules_con") == 1

    def test_class_only_rule_lands_in_class_table(self, registry, schema, db):
        rule = "search CycleProvider c register c"
        registry.register_subscription("lmr", rule, decomposed(rule, schema))
        assert db.count("filter_rules_class") == 1

    def test_subclass_extension_rows(self, db, rich_schema):
        registry = RuleRegistry(db)
        rule = "search Provider p register p"
        registry.register_subscription(
            "lmr", rule, decomposed(rule, rich_schema)
        )
        rows = db.query_all("SELECT class FROM filter_rules_class ORDER BY class")
        assert [r["class"] for r in rows] == [
            "CycleProvider",
            "DataProvider",
            "Provider",
        ]

    def test_each_comparison_operator_routed(self, registry, schema, db):
        operators = {
            "<": "filter_rules_lt",
            "<=": "filter_rules_le",
            ">": "filter_rules_gt",
            ">=": "filter_rules_ge",
        }
        for index, (op, table) in enumerate(operators.items()):
            rule = (
                f"search ServerInformation s register s "
                f"where s.memory {op} {index}"
            )
            registry.register_subscription(
                f"lmr{index}", rule, decomposed(rule, schema)
            )
            assert db.count(table) == 1, table


class TestDependencies:
    def test_dependency_rows_carry_group(self, registry, schema, db):
        registry.register_subscription(
            "lmr", PATH_MEMORY, decomposed(PATH_MEMORY, schema)
        )
        rows = db.query_all("SELECT * FROM rule_dependencies")
        assert len(rows) == 2  # left + right input of the join rule
        assert all(r["group_id"] is not None for r in rows)

    def test_graph_is_acyclic(self, registry, schema, db):
        from repro.rules.graph import DependencyGraph

        registry.register_subscription(
            "lmr", PAPER_RULE, decomposed(PAPER_RULE, schema)
        )
        graph = DependencyGraph.load(db)
        assert graph.is_acyclic()
        assert graph.longest_path_length() == 2


class TestUnsubscribe:
    def test_full_cleanup(self, registry, schema, db):
        registry.register_subscription(
            "lmr", PAPER_RULE, decomposed(PAPER_RULE, schema)
        )
        removed = registry.unsubscribe("lmr", PAPER_RULE)
        assert len(removed) == 5
        assert registry.atom_count() == 0
        assert db.count("rule_dependencies") == 0
        assert db.count("filter_rules_con") == 0
        assert db.count("subscription_rules") == 0

    def test_shared_atoms_survive(self, registry, schema):
        registry.register_subscription(
            "lmr1", PATH_MEMORY, decomposed(PATH_MEMORY, schema)
        )
        registry.register_subscription(
            "lmr2", PATH_CPU, decomposed(PATH_CPU, schema)
        )
        registry.unsubscribe("lmr2", PATH_CPU)
        # lmr1's three atoms remain, lmr2's private two are gone.
        assert registry.atom_count() == 3
        assert registry.subscriptions_of("lmr1")

    def test_unknown_unsubscribe_rejected(self, registry, schema):
        with pytest.raises(SubscriptionError):
            registry.unsubscribe("lmr", "search CycleProvider c register c")


class TestLookups:
    def test_end_rule_ids_and_subscriptions_for(self, registry, schema):
        first = registry.register_subscription(
            "lmr1", PATH_MEMORY, decomposed(PATH_MEMORY, schema)
        )
        second = registry.register_subscription(
            "lmr2", PATH_CPU, decomposed(PATH_CPU, schema)
        )
        assert registry.end_rule_ids() == {first.end_rule, second.end_rule}
        subs = registry.subscriptions_for({first.end_rule})
        assert [s.subscriber for s in subs] == ["lmr1"]

    def test_shared_end_rule_routes_to_both(self, registry, schema):
        first = registry.register_subscription(
            "lmr1", PATH_MEMORY, decomposed(PATH_MEMORY, schema)
        )
        registry.register_subscription(
            "lmr2", PATH_MEMORY, decomposed(PATH_MEMORY, schema)
        )
        subs = registry.subscriptions_for({first.end_rule})
        assert sorted(s.subscriber for s in subs) == ["lmr1", "lmr2"]


class TestAtomReconstruction:
    def test_roundtrip_triggering(self, registry, schema):
        rule = "search ServerInformation s register s where s.memory > 64"
        registration = registry.register_subscription(
            "lmr", rule, decomposed(rule, schema)
        )
        node = registry.load_atom(registration.end_rule)
        registry._node_cache.clear()
        reloaded = registry.load_atom(registration.end_rule)
        assert reloaded.key == node.key

    def test_roundtrip_join_tree(self, registry, schema):
        registration = registry.register_subscription(
            "lmr", PAPER_RULE, decomposed(PAPER_RULE, schema)
        )
        registry._node_cache.clear()
        node = registry.load_atom(registration.end_rule)
        assert node.key == decomposed(PAPER_RULE, schema).end.key

    def test_missing_atom_raises(self, registry):
        with pytest.raises(SubscriptionError):
            registry.load_atom(999)


class TestNamedRules:
    def test_register_and_lookup(self, registry, schema):
        rule = (
            "search CycleProvider c register c "
            "where c.serverHost contains 'passau'"
        )
        registration = registry.register_named_rule(
            "PassauHosts", rule, decomposed(rule, schema)
        )
        assert registry.named_rule("PassauHosts") == (
            registration.end_rule,
            "CycleProvider",
        )
        assert registry.named_rule_types() == {"PassauHosts": "CycleProvider"}

    def test_duplicate_name_rejected(self, registry, schema):
        rule = "search CycleProvider c register c"
        registry.register_named_rule("N", rule, decomposed(rule, schema))
        with pytest.raises(SubscriptionError):
            registry.register_named_rule("N", rule, decomposed(rule, schema))

    def test_named_producer_embedding(self, registry, schema):
        base_rule = (
            "search CycleProvider c register c "
            "where c.serverHost contains 'passau'"
        )
        registry.register_named_rule(
            "PassauHosts", base_rule, decomposed(base_rule, schema)
        )
        producers = registry.named_producers()
        derived = decomposed(
            "search PassauHosts p register p where p.serverPort = 80",
            schema,
            named={"PassauHosts": "CycleProvider"},
            producers=producers,
        )
        registration = registry.register_subscription(
            "lmr", "derived", derived
        )
        # The named rule's atom is shared, not re-created.
        created_keys = {atom.key for __, atom in registration.created}
        assert producers["PassauHosts"].key not in created_keys


class TestNamedRuleSharing:
    def test_unsubscribe_keeps_named_rule_atoms(self, registry, schema):
        """Atoms shared with a named rule survive subscriber churn."""
        base_rule = (
            "search CycleProvider c register c "
            "where c.serverHost contains 'passau'"
        )
        registry.register_named_rule(
            "PassauHosts", base_rule, decomposed(base_rule, schema)
        )
        atoms_after_named = registry.atom_count()

        derived = decomposed(
            "search PassauHosts p register p where p.serverPort = 80",
            schema,
            named={"PassauHosts": "CycleProvider"},
            producers=registry.named_producers(),
        )
        registry.register_subscription("lmr", "derived-rule", derived)
        registry.unsubscribe("lmr", "derived-rule")
        # The named rule's own atom is still there; the derived-only
        # atoms are gone.
        assert registry.atom_count() == atoms_after_named
        assert registry.named_rule("PassauHosts") is not None


class TestBulkRegisterTriggering:
    """The bench-scale bulk loader must be indistinguishable from the
    normal registration path at the storage layer."""

    def _mirror_tables(self, db):
        """Every table the triggering path writes, as sorted row sets."""
        tables = [
            "atomic_rules", "filter_rules_class", "filter_rules_eq",
            "filter_rules_con", "filter_rules_gt", "subscriptions",
            "subscription_rules", "filter_rules_con_tri",
        ]
        return {
            table: sorted(
                tuple(row) for row in db.query_all(f"SELECT * FROM {table}")
            )
            for table in tables
        }

    def _atoms(self, registry, schema, texts):
        for text in texts:
            node = decomposed(text, schema)
            yield text, node.end

    RULES = [
        "search CycleProvider c register c",
        "search CycleProvider c register c where c.synthValue > 5",
        "search CycleProvider c register c "
        "where c.serverHost contains 'passau'",
        "search CycleProvider c register c "
        "where c.serverHost = 'a.uni-passau.de'",
    ]

    def test_equivalent_to_normal_path(self, db, schema):
        registry = RuleRegistry(db)
        created = registry.bulk_register_triggering(
            "bulk", self._atoms(registry, schema, self.RULES)
        )
        assert len(created) == len(self.RULES)
        bulk_rows = self._mirror_tables(db)
        bulk_version = registry.mutation_version

        from repro.storage.engine import Database
        from repro.storage.schema import create_all

        other = Database()
        create_all(other)
        normal = RuleRegistry(other)
        for text in self.RULES:
            normal.register_subscription("bulk", text, decomposed(text, schema))
        assert self._mirror_tables(other) == bulk_rows
        assert normal.mutation_version == bulk_version
        other.close()

    def test_mutation_log_covers_bulk_inserts(self, db, schema):
        registry = RuleRegistry(db)
        before = registry.mutation_version
        created = registry.bulk_register_triggering(
            "bulk", self._atoms(registry, schema, self.RULES)
        )
        assert registry.mutation_version == before + len(created)
        versions = [m.version for m in registry.mutation_log]
        assert versions == sorted(versions)
        logged = {m.rule_id for m in registry.mutation_log}
        assert {rule_id for rule_id, __ in created} <= logged

    def test_dedupe_shares_rules(self, db, schema):
        registry = RuleRegistry(db)
        text = self.RULES[1]
        created = registry.bulk_register_triggering(
            "a", self._atoms(registry, schema, [text])
        )
        again = registry.bulk_register_triggering(
            "b", self._atoms(registry, schema, [text])
        )
        assert len(created) == 1 and again == []
        assert db.count("atomic_rules") == 1
        assert db.count("subscriptions") == 2

    def test_rejects_nothing_but_triggering(self, db, schema):
        registry = RuleRegistry(db)
        node = decomposed(PATH_MEMORY, schema)
        from repro.rules.atoms import TriggeringAtom

        assert not isinstance(node.end, TriggeringAtom)
