"""Property tests: decomposition persists and reloads losslessly.

The registry stores every atom of a decomposed rule relationally
(trigger-index rows, join rows, dependency edges).  Reconstructing the
atom tree from those tables (:meth:`RuleRegistry.load_atom`) must yield
the same canonical key as the in-memory decomposition — otherwise
deduplication (matching new rules against stored ones by key) would
silently diverge from the stored semantics.  The sharded evaluator
additionally relies on children-first persistence order and on the
mutation counter moving with every index change.
"""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.rdf.schema import objectglobe_schema
from repro.rules.decompose import decompose_rule
from repro.rules.normalize import normalize_rule
from repro.rules.parser import parse_rule
from repro.rules.registry import RuleRegistry
from repro.storage.engine import Database
from repro.storage.schema import create_all
from tests.conftest import prop_settings

SCHEMA = objectglobe_schema()

string_constants = st.sampled_from(["passau", "tum", "de", "uni", "org"])
int_constants = st.integers(min_value=0, max_value=1000)
comparison_ops = st.sampled_from(["<", "<=", ">", ">=", "=", "!="])


@st.composite
def predicates(draw):
    kind = draw(
        st.sampled_from(
            ["host_contains", "host_eq", "synth_cmp", "memory_path", "cpu_path"]
        )
    )
    if kind == "host_contains":
        return f"c.serverHost contains '{draw(string_constants)}'"
    if kind == "host_eq":
        op = draw(st.sampled_from(["=", "!="]))
        return f"c.serverHost {op} '{draw(string_constants)}'"
    if kind == "synth_cmp":
        return f"c.synthValue {draw(comparison_ops)} {draw(int_constants)}"
    if kind == "memory_path":
        return (
            f"c.serverInformation.memory {draw(comparison_ops)} "
            f"{draw(int_constants)}"
        )
    return (
        f"c.serverInformation.cpu {draw(comparison_ops)} {draw(int_constants)}"
    )


@st.composite
def rule_texts(draw):
    parts = draw(st.lists(predicates(), min_size=1, max_size=4))
    return "search CycleProvider c register c where " + " and ".join(parts)


def _decompose(text: str):
    return decompose_rule(normalize_rule(parse_rule(text), SCHEMA)[0], SCHEMA)


@prop_settings(50)
@given(text=rule_texts())
def test_atoms_are_listed_children_first(text):
    decomposed = _decompose(text)
    seen: set[str] = set()
    for atom in decomposed.atoms:
        if atom.kind == "join":
            assert atom.left.key in seen, "left child after parent"
            assert atom.right.key in seen, "right child after parent"
        seen.add(atom.key)
    assert decomposed.end.key in seen


@prop_settings(50)
@given(text=rule_texts())
def test_persisted_atoms_reload_to_equal_keys(text):
    decomposed = _decompose(text)
    db = Database()
    create_all(db)
    try:
        registry = RuleRegistry(db)
        end_id, all_ids, __ = registry.ensure_atoms(decomposed)

        # Reload through a *fresh* registry so nothing comes from the
        # in-memory node cache — only from the tables.
        fresh = RuleRegistry(db)
        assert fresh.load_atom(end_id).key == decomposed.end.key
        stored_keys = {fresh.load_atom(rule_id).key for rule_id in all_ids}
        assert stored_keys == {atom.key for atom in decomposed.atoms}
    finally:
        db.close()


@prop_settings(30)
@given(text=rule_texts())
def test_registration_bumps_mutation_version(text):
    """New trigger-index rows must move the shard-replica version."""
    db = Database()
    create_all(db)
    try:
        registry = RuleRegistry(db)
        before = registry.mutation_version
        registry.ensure_atoms(_decompose(text))
        assert registry.mutation_version > before
    finally:
        db.close()
