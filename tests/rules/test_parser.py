"""Unit tests for the rule/query parser."""

import pytest

from repro.errors import QuerySyntaxError, RuleSyntaxError
from repro.rules.ast import And, Constant, Or, PathExpr, PathStep, Predicate
from repro.rules.parser import parse_query, parse_rule


class TestRuleParsing:
    def test_minimal_rule(self):
        rule = parse_rule("search CycleProvider c register c")
        assert rule.register == "c"
        assert rule.where is None
        assert rule.variables() == {"c": "CycleProvider"}

    def test_multiple_extensions(self):
        rule = parse_rule(
            "search CycleProvider c, ServerInformation s register c "
            "where c.serverInformation = s"
        )
        assert rule.variables() == {
            "c": "CycleProvider",
            "s": "ServerInformation",
        }

    def test_paper_rule_example1(self):
        rule = parse_rule(
            "search CycleProvider c register c "
            "where c.serverHost contains 'uni-passau.de' "
            "and c.serverInformation.memory > 64"
        )
        assert isinstance(rule.where, And)
        first, second = rule.where.operands
        assert first.operator == "contains"
        assert second.operator == ">"
        assert second.left == PathExpr(
            "c", (PathStep("serverInformation"), PathStep("memory"))
        )
        assert isinstance(second.right, Constant)
        assert second.right.literal.value == 64

    def test_bare_variable_predicate(self):
        rule = parse_rule(
            "search CycleProvider c register c where c = 'doc.rdf#host'"
        )
        assert isinstance(rule.where, Predicate)
        assert rule.where.left == PathExpr("c")

    def test_any_operator(self):
        rule = parse_rule(
            "search CycleProvider c register c where c.tags? = 'fast'"
        )
        assert rule.where.left.steps == (PathStep("tags", any=True),)

    def test_or_and_precedence(self):
        rule = parse_rule(
            "search CycleProvider c register c "
            "where c.synthValue > 1 and c.synthValue < 5 "
            "or c.synthValue = 9"
        )
        assert isinstance(rule.where, Or)
        left, right = rule.where.operands
        assert isinstance(left, And)
        assert isinstance(right, Predicate)

    def test_parentheses(self):
        rule = parse_rule(
            "search CycleProvider c register c "
            "where c.synthValue > 1 and (c.synthValue < 5 "
            "or c.synthValue = 9)"
        )
        assert isinstance(rule.where, And)
        __, grouped = rule.where.operands
        assert isinstance(grouped, Or)

    def test_constant_on_left(self):
        rule = parse_rule(
            "search ServerInformation s register s where 64 < s.memory"
        )
        assert rule.where.left == Constant(rule.where.left.literal)

    def test_register_must_be_bound(self):
        with pytest.raises(RuleSyntaxError):
            parse_rule("search CycleProvider c register x")

    def test_duplicate_variables_rejected(self):
        with pytest.raises(RuleSyntaxError):
            parse_rule("search CycleProvider c, ServerInformation c register c")

    def test_missing_register(self):
        with pytest.raises(RuleSyntaxError):
            parse_rule("search CycleProvider c where c.synthValue > 1")

    def test_trailing_garbage(self):
        with pytest.raises(RuleSyntaxError):
            parse_rule("search CycleProvider c register c extra")

    def test_missing_operand(self):
        with pytest.raises(RuleSyntaxError):
            parse_rule("search CycleProvider c register c where c.synthValue >")

    def test_unbalanced_parenthesis(self):
        with pytest.raises(RuleSyntaxError):
            parse_rule(
                "search CycleProvider c register c where (c.synthValue > 1"
            )

    def test_roundtrip_str_parse(self):
        text = (
            "search CycleProvider c register c "
            "where c.serverHost contains 'uni-passau.de' "
            "and c.serverInformation.memory > 64"
        )
        rule = parse_rule(text)
        assert parse_rule(str(rule)) == rule

    def test_string_escape_roundtrip(self):
        rule = parse_rule(
            "search CycleProvider c register c where c.serverHost = 'o''neil'"
        )
        assert rule.where.right.literal.value == "o'neil"
        assert parse_rule(str(rule)) == rule


class TestQueryParsing:
    def test_query_has_no_register(self):
        query = parse_query(
            "search CycleProvider c where c.synthValue > 5"
        )
        assert query.result == "c"

    def test_query_as_rule(self):
        query = parse_query("search CycleProvider c where c.synthValue > 5")
        rule = query.as_rule()
        assert rule.register == "c"
        assert rule.where == query.where

    def test_query_errors_are_query_syntax(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("search")

    def test_query_multi_extension(self):
        query = parse_query(
            "search CycleProvider c, ServerInformation s "
            "where c.serverInformation = s"
        )
        assert query.result == "c"
