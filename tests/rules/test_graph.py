"""Unit tests for the dependency-graph view."""

from repro.rules.decompose import decompose_rule
from repro.rules.graph import DependencyGraph
from repro.rules.normalize import normalize_rule
from repro.rules.parser import parse_rule

from tests.conftest import PAPER_RULE


def register(registry, schema, text, subscriber="lmr"):
    normalized = normalize_rule(parse_rule(text), schema)[0]
    return registry.register_subscription(
        subscriber, text, decompose_rule(normalized, schema)
    )


def test_empty_graph(db):
    graph = DependencyGraph.load(db)
    assert graph.stats() == {
        "atoms": 0,
        "triggering": 0,
        "joins": 0,
        "groups": 0,
        "edges": 0,
        "max_depth": 0,
    }
    assert graph.is_acyclic()


def test_paper_example_structure(db, registry, schema):
    registration = register(registry, schema, PAPER_RULE)
    graph = DependencyGraph.load(db)
    stats = graph.stats()
    assert stats["atoms"] == 5
    assert stats["triggering"] == 3
    assert stats["joins"] == 2
    assert stats["edges"] == 4
    assert stats["max_depth"] == 2
    assert graph.roots() == [registration.end_rule]
    assert len(graph.leaves()) == 3


def test_merged_graph_shares_nodes(db, registry, schema):
    register(
        registry,
        schema,
        "search CycleProvider c register c "
        "where c.serverInformation.memory > 64",
        "lmr1",
    )
    register(
        registry,
        schema,
        "search CycleProvider c register c "
        "where c.serverInformation.cpu > 500",
        "lmr2",
    )
    graph = DependencyGraph.load(db)
    stats = graph.stats()
    # Shared class-only atom: 3 + 2 atoms rather than 3 + 3.
    assert stats["atoms"] == 5
    assert stats["groups"] == 1
    assert len(graph.roots()) == 2


def test_successors_predecessors(db, registry, schema):
    registration = register(registry, schema, PAPER_RULE)
    graph = DependencyGraph.load(db)
    end = registration.end_rule
    assert graph.successors(end) == []
    inputs = graph.predecessors(end)
    assert len(inputs) == 2


def test_to_dot_renders_nodes_and_edges(db, registry, schema):
    register(registry, schema, PAPER_RULE)
    dot = DependencyGraph.load(db).to_dot()
    assert dot.startswith("digraph")
    assert dot.count("->") == 4
    assert "CycleProvider" in dot


def test_refcounts_visible(db, registry, schema):
    register(registry, schema, PAPER_RULE, "lmr1")
    register(registry, schema, PAPER_RULE, "lmr2")
    graph = DependencyGraph.load(db)
    assert all(node.refcount == 2 for node in graph.nodes.values())
