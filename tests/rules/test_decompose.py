"""Unit tests for rule decomposition into atomic rules (paper, §3.3.1)."""

import pytest

from repro.errors import DecompositionError
from repro.rules.atoms import JoinAtom, TriggeringAtom, make_join
from repro.rules.decompose import decompose_rule
from repro.rules.normalize import normalize_rule
from repro.rules.parser import parse_rule

from tests.conftest import PAPER_RULE


def decompose(text, schema, named_producers=None):
    normalized = normalize_rule(parse_rule(text), schema)
    assert len(normalized) == 1
    return decompose_rule(normalized[0], schema, named_producers)


class TestPaperExample:
    """The worked example of Section 3.3.1: RuleA … RuleF."""

    def test_atom_inventory(self, schema):
        decomposed = decompose(PAPER_RULE, schema)
        triggering = decomposed.triggering_atoms()
        joins = decomposed.join_atoms()
        # RuleA (memory > 64), RuleB (cpu > 500), RuleC (contains).
        assert len(triggering) == 3
        # RuleE (a = b) and RuleF (c.serverInformation = a).
        assert len(joins) == 2

    def test_triggering_predicates(self, schema):
        decomposed = decompose(PAPER_RULE, schema)
        predicates = {
            (a.rdf_class, a.prop, a.operator, a.value)
            for a in decomposed.triggering_atoms()
        }
        assert predicates == {
            ("ServerInformation", "memory", ">", "64"),
            ("ServerInformation", "cpu", ">", "500"),
            ("CycleProvider", "serverHost", "contains", "uni-passau.de"),
        }

    def test_identity_join_inner(self, schema):
        decomposed = decompose(PAPER_RULE, schema)
        identity = [j for j in decomposed.join_atoms() if j.is_identity]
        assert len(identity) == 1
        assert identity[0].left_class == "ServerInformation"

    def test_end_rule_registers_cycle_provider(self, schema):
        decomposed = decompose(PAPER_RULE, schema)
        assert decomposed.rdf_class == "CycleProvider"
        assert isinstance(decomposed.end, JoinAtom)
        assert decomposed.end.left_prop == "serverInformation"

    def test_dependency_tree_depth(self, schema):
        # Figure 5: triggering leaves -> identity join -> reference join.
        assert decompose(PAPER_RULE, schema).depth() == 2

    def test_children_before_parents(self, schema):
        decomposed = decompose(PAPER_RULE, schema)
        seen = set()
        for atom in decomposed.atoms:
            if isinstance(atom, JoinAtom):
                assert atom.left.key in seen
                assert atom.right.key in seen
            seen.add(atom.key)

    def test_render_tree_mentions_all_atoms(self, schema):
        decomposed = decompose(PAPER_RULE, schema)
        rendering = decomposed.render_tree()
        assert "memory > #64" in rendering
        assert "cpu > #500" in rendering
        assert "uni-passau.de" in rendering


class TestSimpleShapes:
    def test_class_only_rule(self, schema):
        decomposed = decompose("search CycleProvider c register c", schema)
        (atom,) = decomposed.atoms
        assert isinstance(atom, TriggeringAtom)
        assert atom.is_class_only

    def test_single_predicate_rule_is_one_triggering_atom(self, schema):
        decomposed = decompose(
            "search CycleProvider c register c where c.synthValue > 5",
            schema,
        )
        assert len(decomposed.atoms) == 1
        assert decomposed.depth() == 0

    def test_oid_rule(self, schema):
        decomposed = decompose(
            "search CycleProvider c register c where c = 'doc.rdf#host'",
            schema,
        )
        (atom,) = decomposed.atoms
        assert atom.prop == "rdf#subject"
        assert atom.value == "doc.rdf#host"

    def test_path_rule_shares_class_atom(self, schema):
        """Section 3.3.3's first rule: class-only atom + memory atom + join."""
        decomposed = decompose(
            "search CycleProvider c register c "
            "where c.serverInformation.memory > 64",
            schema,
        )
        triggering = decomposed.triggering_atoms()
        class_only = [a for a in triggering if a.is_class_only]
        assert len(class_only) == 1
        assert class_only[0].rdf_class == "CycleProvider"
        assert len(decomposed.join_atoms()) == 1

    def test_subclass_extension_classes(self, rich_schema):
        decomposed = decompose("search Provider p register p", rich_schema)
        (atom,) = decomposed.atoms
        assert atom.extension_classes == (
            "CycleProvider",
            "DataProvider",
            "Provider",
        )

    def test_duplicate_predicates_deduplicated(self, schema):
        decomposed = decompose(
            "search CycleProvider c register c "
            "where c.synthValue > 5 and c.synthValue > 5",
            schema,
        )
        assert len(decomposed.atoms) == 1


class TestRuleGroups:
    def test_section_333_rule_group_sharing(self, schema):
        """RuleC1 and RuleC2 share a group signature but not a key."""
        first = decompose(
            "search CycleProvider c register c "
            "where c.serverInformation.memory > 64",
            schema,
        )
        second = decompose(
            "search CycleProvider c register c "
            "where c.serverInformation.cpu > 500",
            schema,
        )
        assert first.end.key != second.end.key
        assert first.end.group_signature == second.end.group_signature
        # And the class-only CycleProvider atom (RuleA) is shared.
        first_keys = {a.key for a in first.triggering_atoms()}
        second_keys = {a.key for a in second.triggering_atoms()}
        assert first_keys & second_keys

    def test_orientation_canonicalization(self, schema):
        """``c.serverInformation = s`` and ``s = c.serverInformation``
        land in the same group."""
        forward = decompose(
            "search CycleProvider c, ServerInformation s register c "
            "where c.serverInformation = s and s.memory > 1",
            schema,
        )
        backward = decompose(
            "search CycleProvider c, ServerInformation s register c "
            "where s = c.serverInformation and s.memory > 1",
            schema,
        )
        assert forward.end.key == backward.end.key


class TestJoinPeeling:
    def test_chain_query(self, rich_schema):
        decomposed = decompose(
            "search DataProvider d, CycleProvider c, ServerInformation s "
            "register d where d.host = c and c.serverInformation = s "
            "and s.memory > 64",
            rich_schema,
        )
        assert decomposed.rdf_class == "DataProvider"
        assert decomposed.depth() == 2

    def test_register_side_survives(self, rich_schema):
        decomposed = decompose(
            "search DataProvider d, CycleProvider c register c "
            "where d.host = c and d.collection contains 'x'",
            rich_schema,
        )
        assert decomposed.rdf_class == "CycleProvider"

    def test_multi_edge_join_graph_rejected(self, rich_schema):
        with pytest.raises(DecompositionError):
            decompose(
                "search ServerInformation a, ServerInformation b register a "
                "where a.memory = b.memory and a.cpu = b.cpu",
                rich_schema,
            )

    def test_self_join_atom(self, rich_schema):
        decomposed = decompose(
            "search ServerInformation s register s where s.memory = s.cpu",
            rich_schema,
        )
        (join,) = decomposed.join_atoms()
        assert join.self_join
        assert join.left.key == join.right.key


class TestNamedProducers:
    def test_named_extension_used_as_producer(self, schema):
        base = decompose(
            "search CycleProvider c register c "
            "where c.serverHost contains 'passau'",
            schema,
        )
        normalized = normalize_rule(
            parse_rule(
                "search PassauHosts p register p where p.serverPort = 80"
            ),
            schema,
            {"PassauHosts": "CycleProvider"},
        )[0]
        decomposed = decompose_rule(
            normalized, schema, {"PassauHosts": base.end}
        )
        # The named rule's end atom is embedded as an input.
        assert base.end.key in {a.key for a in decomposed.atoms}
        assert isinstance(decomposed.end, JoinAtom)
        assert decomposed.end.is_identity


class TestMakeJoin:
    def test_swap_flips_operator_and_register(self):
        left = TriggeringAtom("A", ("A",))
        right = TriggeringAtom("B", ("B",))
        join = make_join(
            left, "A", None, "<", right, "B", "size", register_side="left",
            numeric=True,
        )
        # Property side goes left: operands swapped, operator mirrored.
        assert join.left_prop == "size"
        assert join.operator == ">"
        assert join.register_side == "right"
        assert join.rdf_class == "A"
