"""Unit tests for the rule-language tokenizer."""

import pytest

from repro.errors import RuleSyntaxError
from repro.rules.tokens import Token, TokenType, tokenize


def kinds(text):
    return [t.type for t in tokenize(text)]


def texts(text):
    return [t.text for t in tokenize(text)[:-1]]


def test_keywords_case_insensitive():
    tokens = tokenize("SEARCH Register WHERE and OR Contains")
    assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])
    assert texts("SEARCH Register WHERE") == ["search", "register", "where"]


def test_identifiers():
    tokens = tokenize("CycleProvider c_1 _x")
    assert [t.type for t in tokens[:-1]] == [TokenType.IDENT] * 3


def test_numbers():
    assert texts("42 -7 3.25") == ["42", "-7", "3.25"]
    token_types = kinds("42 -7 3.25")[:-1]
    assert token_types == [TokenType.NUMBER] * 3


def test_number_then_dot_not_confused_with_path():
    # "5." followed by a non-digit must not swallow the dot.
    tokens = tokenize("5.x")
    assert tokens[0].text == "5"
    assert tokens[1].type is TokenType.DOT
    assert tokens[2].text == "x"


def test_operators():
    assert texts("= != < <= > >=") == ["=", "!=", "<", "<=", ">", ">="]
    assert all(
        t.type is TokenType.OPERATOR for t in tokenize("= != < <= > >=")[:-1]
    )


def test_bang_without_equals_rejected():
    with pytest.raises(RuleSyntaxError):
        tokenize("a ! b")


def test_string_constant():
    (token, __) = tokenize("'uni-passau.de'")
    assert token.type is TokenType.STRING
    assert token.text == "uni-passau.de"


def test_string_with_escaped_quote():
    (token, __) = tokenize("'it''s'")
    assert token.text == "it's"


def test_string_escape_followed_by_more_text():
    tokens = tokenize("'a''b' x")
    assert tokens[0].text == "a'b"
    assert tokens[1].text == "x"


def test_unterminated_string():
    with pytest.raises(RuleSyntaxError):
        tokenize("'oops")


def test_punctuation():
    assert kinds(". , ? ( )")[:-1] == [
        TokenType.DOT,
        TokenType.COMMA,
        TokenType.QUESTION,
        TokenType.LPAREN,
        TokenType.RPAREN,
    ]


def test_unexpected_character():
    with pytest.raises(RuleSyntaxError) as err:
        tokenize("a @ b")
    assert err.value.position == 2


def test_end_token_always_present():
    assert tokenize("")[-1].type is TokenType.END
    assert tokenize("x")[-1].type is TokenType.END


def test_positions_recorded():
    tokens = tokenize("ab cd")
    assert tokens[0].position == 0
    assert tokens[1].position == 3


def test_is_keyword_helper():
    token = Token(TokenType.KEYWORD, "search", 0)
    assert token.is_keyword("search")
    assert not token.is_keyword("where")


def test_full_rule_tokenizes():
    text = (
        "search CycleProvider c register c "
        "where c.serverHost contains 'uni-passau.de' "
        "and c.serverInformation.memory > 64"
    )
    tokens = tokenize(text)
    assert tokens[-1].type is TokenType.END
    assert sum(1 for t in tokens if t.type is TokenType.DOT) == 3
