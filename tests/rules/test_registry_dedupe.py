"""The registry's ``dedupe`` knob: off / report / merge.

``report`` surfaces semantically equivalent registrations as MDV051
warnings but stores them separately; ``merge`` shares the stored
triggering entry outright — fan-out is restored per subscription at
notification time (the differential oracle in
``tests/filter/test_dedupe_differential.py`` proves the delivered
streams identical).
"""

from __future__ import annotations

import pytest

from repro.filter.engine import FilterEngine
from repro.rules.registry import DEDUPE_MODES, RuleRegistry
from tests.conftest import register_rule

RULE = "search CycleProvider c register c where c.synthValue > 5"
#: Same match set as RULE, different atoms (extra redundant bound).
EQUIVALENT = (
    "search CycleProvider c register c "
    "where c.synthValue > 5.0 and c.synthValue > -1"
)


@pytest.fixture()
def setup(db, schema):
    def build(dedupe: str):
        registry = RuleRegistry(db, dedupe=dedupe)
        engine = FilterEngine(db, registry)
        return registry, engine

    return build


class TestKnobValidation:
    def test_modes(self):
        assert DEDUPE_MODES == ("off", "report", "merge")

    def test_unknown_mode_rejected(self, db):
        with pytest.raises(ValueError, match="unknown dedupe mode"):
            RuleRegistry(db, dedupe="aggressive")

    def test_requires_atom_dedup(self, db):
        with pytest.raises(ValueError, match="deduplicate"):
            RuleRegistry(db, deduplicate=False, dedupe="merge")


class TestReportMode:
    def test_equivalent_spelling_warned_but_stored(self, setup, schema):
        registry, engine = setup("report")
        first = register_rule(engine, registry, schema, RULE, "a")
        from repro.rules.decompose import decompose_rule
        from repro.rules.normalize import normalize_rule
        from repro.rules.parser import parse_rule

        decomposed = decompose_rule(
            normalize_rule(parse_rule(EQUIVALENT), schema)[0], schema
        )
        registration = registry.register_subscription("b", EQUIVALENT, decomposed)
        engine.initialize_rules(registration.created)
        codes = {d.code for d in registration.diagnostics}
        assert "MDV051" in codes
        warning = next(
            d for d in registration.diagnostics if d.code == "MDV051"
        )
        assert warning.severity.name == "WARNING"
        # Stored separately: a different end rule, atoms were created.
        assert registration.end_rule != first
        assert registration.created

    def test_identical_spelling_not_warned(self, setup, schema):
        registry, engine = setup("report")
        from repro.rules.decompose import decompose_rule
        from repro.rules.normalize import normalize_rule
        from repro.rules.parser import parse_rule

        register_rule(engine, registry, schema, RULE, "a")
        decomposed = decompose_rule(
            normalize_rule(parse_rule(RULE), schema)[0], schema
        )
        registration = registry.register_subscription("b", RULE, decomposed)
        # Identical keys already share atoms via ensure_atoms; that is
        # not an equivalence finding.
        assert not [d for d in registration.diagnostics if d.code == "MDV051"]


class TestMergeMode:
    def _register(self, registry, engine, schema, text, subscriber):
        from repro.rules.decompose import decompose_rule
        from repro.rules.normalize import normalize_rule
        from repro.rules.parser import parse_rule

        decomposed = decompose_rule(
            normalize_rule(parse_rule(text), schema)[0], schema
        )
        registration = registry.register_subscription(
            subscriber, text, decomposed
        )
        engine.initialize_rules(registration.created)
        return registration

    def test_equivalent_rule_shares_triggering_entry(
        self, db, setup, schema
    ):
        registry, engine = setup("merge")
        first = self._register(registry, engine, schema, RULE, "a")
        second = self._register(registry, engine, schema, EQUIVALENT, "b")
        assert second.end_rule == first.end_rule
        assert second.created == []
        infos = [d for d in second.diagnostics if d.code == "MDV051"]
        assert infos and infos[0].severity.name == "INFO"
        # Both subscriptions ride the one entry; fan-out data is intact.
        subs = registry.subscriptions_for({first.end_rule})
        assert {(s.subscriber, s.rule_text) for s in subs} == {
            ("a", RULE),
            ("b", EQUIVALENT),
        }
        refcount = db.scalar(
            "SELECT refcount FROM atomic_rules WHERE rule_id = ?",
            (first.end_rule,),
        )
        assert refcount == 2

    def test_unsubscribe_keeps_shared_tree_alive(self, db, setup, schema):
        registry, engine = setup("merge")
        first = self._register(registry, engine, schema, RULE, "a")
        self._register(registry, engine, schema, EQUIVALENT, "b")
        assert registry.unsubscribe("a", RULE) == []
        assert registry.subscriptions_for({first.end_rule})
        # Last rider gone: the tree and its canon entry are collected.
        removed = registry.unsubscribe("b", EQUIVALENT)
        assert first.end_rule in removed
        assert db.count("rule_canon") == 0
        assert db.count("atomic_rules") == 0

    def test_reregister_after_gc_starts_fresh(self, setup, schema):
        registry, engine = setup("merge")
        first = self._register(registry, engine, schema, RULE, "a")
        registry.unsubscribe("a", RULE)
        again = self._register(registry, engine, schema, EQUIVALENT, "b")
        # No stale canon row: the new registration created atoms.
        assert again.created
        assert again.end_rule != first.end_rule

    def test_late_merge_subscription_sees_existing_matches(
        self, db, setup, schema, figure1
    ):
        registry, engine = setup("merge")
        rule = (
            "search CycleProvider c register c where c.serverPort > 5"
        )
        equivalent = (
            "search CycleProvider c register c "
            "where c.serverPort > 5.0 and c.serverPort > -1"
        )
        first = self._register(registry, engine, schema, rule, "a")
        engine.process_insertions(list(figure1))
        # A later equivalent subscription shares the entry — and the
        # already-materialized matches come with it.
        second = self._register(registry, engine, schema, equivalent, "b")
        assert second.end_rule == first.end_rule
        matches = engine.current_matches(second.end_rule)
        assert matches


def test_dedupe_counter_incremented(db, schema):
    registry = RuleRegistry(db, dedupe="merge")
    engine = FilterEngine(db, registry)
    register_rule(engine, registry, schema, RULE, "a")
    from repro.obs.metrics import default_registry
    from repro.rules.decompose import decompose_rule
    from repro.rules.normalize import normalize_rule
    from repro.rules.parser import parse_rule

    decomposed = decompose_rule(
        normalize_rule(parse_rule(EQUIVALENT), schema)[0], schema
    )
    registry.register_subscription("b", EQUIVALENT, decomposed)
    counters = default_registry().counter_values()
    assert counters.get("analysis.dedupe_merged") == 1
