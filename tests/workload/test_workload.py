"""Tests for the benchmark workload generators (Figure 10 contracts)."""

import pytest

from repro.rdf.schema import objectglobe_schema
from repro.workload.documents import benchmark_batch, benchmark_document
from repro.workload.rules import (
    comp_rule,
    join_rule,
    oid_rule,
    path_rule,
    rules_of_type,
    synth_value_for_fraction,
)
from repro.workload.scenarios import WorkloadSpec


class TestDocuments:
    def test_shape_matches_figure1(self):
        doc = benchmark_document(7)
        assert sorted(r.rdf_class for r in doc) == [
            "CycleProvider",
            "ServerInformation",
        ]
        host = doc.get("doc7.rdf#host")
        assert host.get_one("serverInformation") == "doc7.rdf#info"

    def test_documents_validate_against_schema(self):
        schema = objectglobe_schema()
        for doc in benchmark_batch(5):
            schema.validate_document(doc)

    def test_memory_defaults_to_index(self):
        doc = benchmark_document(42)
        assert doc.get("doc42.rdf#info").get_one("memory").value == 42

    def test_batch_indices_consecutive(self):
        docs = benchmark_batch(3, start_index=10)
        assert [d.uri for d in docs] == [
            "doc10.rdf",
            "doc11.rdf",
            "doc12.rdf",
        ]


class TestRuleGenerators:
    def test_rule_texts_parse(self):
        from repro.rules.parser import parse_rule

        for text in (
            oid_rule(3),
            comp_rule(3),
            path_rule(3),
            join_rule(3),
        ):
            parse_rule(text)

    def test_figure10_shapes(self):
        assert "c = 'doc3.rdf#host'" in oid_rule(3)
        assert "synthValue > 3" in comp_rule(3)
        assert "serverInformation.memory = 3" in path_rule(3)
        assert "contains 'uni-passau.de'" in join_rule(3)
        assert "cpu = 600" in join_rule(3)

    def test_rules_of_type_dispatch(self):
        assert len(rules_of_type("OID", 4)) == 4
        with pytest.raises(ValueError):
            rules_of_type("BOGUS", 4)

    def test_synth_value_for_fraction(self):
        assert synth_value_for_fraction(1000, 0.1) == 100
        assert synth_value_for_fraction(1000, 0.0) == 0
        with pytest.raises(ValueError):
            synth_value_for_fraction(1000, 1.5)


class TestMatchingContracts:
    """The paper's matching contracts, verified via the query oracle."""

    @pytest.mark.parametrize("rule_type", ["OID", "PATH", "JOIN"])
    def test_one_to_one_matching(self, rule_type):
        from repro.query.evaluator import evaluate_query
        from repro.rules.parser import parse_query, parse_rule
        from repro.rules.ast import Query

        schema = objectglobe_schema()
        spec = WorkloadSpec(rule_type, rule_count=6)
        pool = {
            r.uri: r for doc in spec.documents(6) for r in doc
        }
        for index, text in enumerate(spec.rule_texts()):
            rule = parse_rule(text)
            query = Query(rule.extensions, rule.register, rule.where)
            matches = [
                str(r.uri) for r in evaluate_query(query, pool, schema)
            ]
            assert matches == [f"doc{index}.rdf#host"], text

    @pytest.mark.parametrize("fraction", [0.0, 0.25, 0.5, 1.0])
    def test_comp_fraction_contract(self, fraction):
        from repro.query.evaluator import evaluate_query
        from repro.rules.parser import parse_rule
        from repro.rules.ast import Query

        schema = objectglobe_schema()
        spec = WorkloadSpec("COMP", rule_count=8, match_fraction=fraction)
        pool = {r.uri: r for doc in spec.documents(1) for r in doc}
        matching = 0
        for text in spec.rule_texts():
            rule = parse_rule(text)
            query = Query(rule.extensions, rule.register, rule.where)
            if evaluate_query(query, pool, schema):
                matching += 1
        assert matching == spec.expected_matches_per_document()
        assert matching == round(8 * fraction)


class TestWorkloadSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec("NOPE", 10)
        with pytest.raises(ValueError):
            WorkloadSpec("OID", 0)

    def test_one_to_one_bound_enforced(self):
        spec = WorkloadSpec("PATH", rule_count=5)
        with pytest.raises(ValueError):
            spec.documents(6)
        spec.documents(5)  # exactly at the bound is fine

    def test_comp_unbounded(self):
        spec = WorkloadSpec("COMP", rule_count=5)
        assert len(spec.documents(20)) == 20

    def test_labels(self):
        assert WorkloadSpec("OID", 100).label() == "OID n=100"
        assert "match=10%" in WorkloadSpec("COMP", 100).label()
