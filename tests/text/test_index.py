"""Postings maintenance and the probe/verify loop (repro.text.index).

The registry maintains the trigram index regardless of any engine's
``contains_index`` mode (the knob only selects the read path), so these
tests register through a plain scan-mode engine and observe the index
tables directly via :class:`~repro.storage.tables.TextIndexTable`.
"""

from repro.obs.metrics import default_registry
from repro.storage.tables import TextIndexTable
from repro.text.index import (
    CONTAINS_INDEX_MODES,
    drop_contains_rule,
    index_contains_rule,
    match_contains_indexed,
)
from repro.text.ngrams import trigrams
from tests.conftest import register_rule

RULE = (
    "search CycleProvider c register c "
    "where c.serverHost contains 'uni-passau.de'"
)
SHORT_RULE = (
    "search CycleProvider c register c where c.serverHost contains 'de'"
)


def test_modes_constant():
    assert CONTAINS_INDEX_MODES == ("scan", "trigram")


class TestRegistryMaintenance:
    def test_registration_populates_index(self, db, registry, engine, schema):
        register_rule(engine, registry, schema, RULE)
        table = TextIndexTable(db)
        (rule_id,) = table.indexed_rule_ids()
        assert table.needle_of(rule_id) == "uni-passau.de"
        postings = table.postings_of(rule_id)
        assert postings == sorted(trigrams("uni-passau.de"))
        stored_count = db.scalar(
            "SELECT trigram_count FROM filter_rules_con_tri "
            "WHERE rule_id = ?",
            (rule_id,),
        )
        assert stored_count == len(postings)
        assert table.rules_for_trigram("pas") == [rule_id]

    def test_short_needle_stays_scan_only(self, db, registry, engine, schema):
        register_rule(engine, registry, schema, SHORT_RULE)
        table = TextIndexTable(db)
        assert table.indexed_rule_ids() == set()
        assert table.posting_count() == 0
        # The scan join still holds the rule — both paths together are
        # complete.
        assert db.count("filter_rules_con") == 1
        assert default_registry().counter("text.fallback_rules").value == 1

    def test_unsubscribe_drops_postings(self, db, registry, engine, schema):
        register_rule(engine, registry, schema, RULE)
        register_rule(engine, registry, schema, SHORT_RULE, subscriber="lmr2")
        registry.unsubscribe("lmr", RULE)
        table = TextIndexTable(db)
        assert table.indexed_rule_ids() == set()
        assert table.posting_count() == 0


def _publish_value(db, uri: str, value: str) -> None:
    db.execute(
        "INSERT INTO filter_input (uri_reference, class, property, value) "
        "VALUES (?, 'CycleProvider', 'serverHost', ?)",
        (uri, value),
    )


def _index_rule(db, rule_id: int, needle: str) -> None:
    """Index one synthetic rule (the con_tri table references atomic_rules)."""
    db.execute(
        "INSERT INTO atomic_rules (rule_id, kind, rule_text, class) "
        "VALUES (?, 'triggering', ?, 'CycleProvider')",
        (rule_id, f"synthetic contains {needle!r}"),
    )
    index_contains_rule(db, rule_id, ["CycleProvider"], "serverHost", needle)


class TestProbe:
    def test_candidates_verified_and_false_positives_counted(self, db):
        # "abcxbcd" carries both trigrams of the needle "abcd" without
        # containing it contiguously: a candidate the verifier must kill.
        assert trigrams("abcd") <= trigrams("abcxbcd")
        _index_rule(db, 7, "abcd")
        _publish_value(db, "doc0.rdf#host", "abcxbcd")
        _publish_value(db, "doc1.rdf#host", "zz-abcd-zz")
        hits = match_contains_indexed(db)
        assert hits == [("doc1.rdf#host", 7)]
        counters = default_registry().counter_values()
        assert counters["text.candidates"] == 2
        assert counters["text.verified"] == 1
        assert counters["text.false_positives"] == 1

    def test_value_shorter_than_trigram_cannot_match(self, db):
        _index_rule(db, 7, "abcd")
        _publish_value(db, "doc0.rdf#host", "ab")
        assert match_contains_indexed(db) == []
        assert default_registry().counter_values()["text.candidates"] == 0

    def test_duplicate_values_deduplicate_probes(self, db):
        _index_rule(db, 7, "abcd")
        for index in range(3):
            _publish_value(db, f"doc{index}.rdf#host", "has-abcd-inside")
        hits = match_contains_indexed(db)
        assert sorted(hits) == [
            ("doc0.rdf#host", 7),
            ("doc1.rdf#host", 7),
            ("doc2.rdf#host", 7),
        ]
        # One distinct value → one probe → one candidate row.
        assert default_registry().counter_values()["text.candidates"] == 1

    def test_class_and_property_scope_the_probe(self, db):
        _index_rule(db, 7, "abcd")
        db.execute(
            "INSERT INTO filter_input (uri_reference, class, property, value)"
            " VALUES ('doc0.rdf#info', 'ServerInformation', 'serverHost',"
            " 'has-abcd-inside')"
        )
        assert match_contains_indexed(db) == []

    def test_drop_removes_rule_from_probe(self, db):
        _index_rule(db, 7, "abcd")
        drop_contains_rule(db, 7)
        _publish_value(db, "doc0.rdf#host", "has-abcd-inside")
        assert match_contains_indexed(db) == []
