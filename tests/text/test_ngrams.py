"""Tokenizer and canonical ``contains`` semantics (repro.text.ngrams).

The exactness lemma the index rests on lives here: for an indexable
needle, substring containment implies trigram-set containment — so the
index probe can only over-approximate, never miss.  The Python and SQL
``contains`` implementations are also pinned against each other.
"""

from hypothesis import given, strategies as st

from repro.query.sql import sql_string_literal
from repro.storage.engine import Database
from repro.text.ngrams import (
    TRIGRAM_LENGTH,
    contains_match,
    contains_sql_condition,
    is_indexable,
    trigrams,
)
from tests.conftest import prop_settings

# SQLite TEXT cannot round-trip NUL and surrogates are not valid UTF-8.
_text = st.text(
    alphabet=st.characters(
        blacklist_categories=("Cs",), blacklist_characters="\x00"
    ),
    max_size=20,
)


class TestTrigrams:
    def test_sliding_windows(self):
        assert trigrams("abcde") == {"abc", "bcd", "cde"}

    def test_exact_length(self):
        assert trigrams("uni") == {"uni"}

    def test_too_short_is_empty(self):
        assert trigrams("ab") == frozenset()
        assert trigrams("") == frozenset()

    def test_repeated_windows_collapse(self):
        assert trigrams("aaaa") == {"aaa"}

    def test_is_indexable_boundary(self):
        assert not is_indexable("de")
        assert is_indexable("uni")
        assert len("de") < TRIGRAM_LENGTH <= len("uni")


class TestContainsSemantics:
    def test_exact_substring(self):
        assert contains_match("a.uni-passau.de", "passau")
        assert not contains_match("a.uni-passau.de", "tum")

    def test_case_sensitive(self):
        assert not contains_match("a.uni-passau.de", "UNI")
        assert not contains_match("A.UNI-PASSAU.DE", "uni")

    def test_empty_needle_matches_everything(self):
        assert contains_match("", "")
        assert contains_match("anything", "")

    def test_unicode_codepoints(self):
        assert contains_match("münchen.de", "ünch")
        assert not contains_match("munchen.de", "ünch")

    def test_numeric_looking_text(self):
        # Text comparison even when operands look numeric; SQL paths
        # must quote the needle so no numeric affinity applies.
        assert contains_match("12345", "234")
        assert not contains_match("12345", "23.4")


def _sql_contains(db: Database, value: str, needle: str) -> bool:
    condition = contains_sql_condition(
        sql_string_literal(value), sql_string_literal(needle)
    )
    return bool(db.scalar(f"SELECT {condition}"))


class TestSqlAgreement:
    def test_known_cases(self, db):
        cases = [
            ("a.uni-passau.de", "passau"),
            ("a.uni-passau.de", "UNI"),
            ("anything", ""),
            ("", ""),
            ("12345", "234"),
            ("münchen.de", "ünch"),
            ("o'neil.de", "'nei"),
        ]
        for value, needle in cases:
            assert _sql_contains(db, value, needle) == contains_match(
                value, needle
            ), (value, needle)

    @prop_settings(100)
    @given(value=_text, needle=_text)
    def test_property(self, value, needle):
        db = Database()
        try:
            assert _sql_contains(db, value, needle) == contains_match(
                value, needle
            )
        finally:
            db.close()


class TestExactnessLemma:
    """Substring containment implies trigram-set containment."""

    @prop_settings(150)
    @given(value=_text, data=st.data())
    def test_needle_trigrams_subset_of_value_trigrams(self, value, data):
        if len(value) < TRIGRAM_LENGTH:
            return
        start = data.draw(
            st.integers(0, len(value) - TRIGRAM_LENGTH), label="start"
        )
        end = data.draw(st.integers(start + TRIGRAM_LENGTH, len(value)))
        needle = value[start:end]
        assert contains_match(value, needle)
        assert trigrams(needle) <= trigrams(value)

    @prop_settings(150)
    @given(value=_text, needle=_text)
    def test_probe_never_misses(self, value, needle):
        # The contrapositive the probe uses: a missing needle trigram
        # proves the needle does not occur in the value.
        if is_indexable(needle) and not trigrams(needle) <= trigrams(value):
            assert not contains_match(value, needle)
