"""Fuzz tests: parsers must fail *predictably* on arbitrary input.

Whatever bytes arrive, the tokenizer, rule parser, query parser and the
document parsers must either succeed or raise the documented
:class:`~repro.errors.MDVError` subclass — never an arbitrary internal
exception.
"""

from tests.conftest import prop_settings
from hypothesis import given, settings, strategies as st

from repro.errors import DocumentParseError, MDVError, RuleSyntaxError
from repro.rdf.parser import parse_document
from repro.rules.parser import parse_query, parse_rule
from repro.rules.tokens import tokenize
from repro.xmlext.adapter import xml_to_document

arbitrary_text = st.text(max_size=200)
rule_like_text = st.lists(
    st.sampled_from(
        list("abcdefgh0123456789.,?()'=<>!_ ")
        + ["search ", "register ", "where ", " and ", " or "]
    ),
    max_size=25,
).map("".join)


@prop_settings(200)
@given(text=arbitrary_text)
def test_tokenizer_total(text):
    try:
        tokens = tokenize(text)
    except RuleSyntaxError:
        return
    assert tokens[-1].type.name == "END"


@prop_settings(200)
@given(text=rule_like_text)
def test_rule_parser_total(text):
    try:
        parse_rule(text)
    except RuleSyntaxError:
        pass


@prop_settings(200)
@given(text=rule_like_text)
def test_query_parser_total(text):
    try:
        parse_query(text)
    except RuleSyntaxError:
        pass


@prop_settings(150)
@given(text=arbitrary_text)
def test_document_parser_total(text):
    try:
        parse_document(text, "fuzz.rdf")
    except DocumentParseError:
        pass


@prop_settings(150)
@given(text=arbitrary_text)
def test_xml_adapter_total(text):
    try:
        xml_to_document(text, "fuzz.xml")
    except MDVError:
        pass
