"""Unit tests for :mod:`repro.obs.tracing`."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Span, Tracer


class FakeClock:
    """A deterministic millisecond clock advanced by hand."""

    def __init__(self) -> None:
        self.now_ms = 0.0

    def __call__(self) -> float:
        return self.now_ms

    def advance(self, ms: float) -> None:
        self.now_ms += ms


@pytest.fixture()
def clock() -> FakeClock:
    return FakeClock()


class TestSpanNesting:
    def test_nested_spans_build_a_tree(self, clock):
        tracer = Tracer(clock=clock)
        with tracer.span("outer") as outer:
            clock.advance(5)
            with tracer.span("inner-a"):
                clock.advance(2)
            with tracer.span("inner-b") as inner_b:
                clock.advance(3)
                with tracer.span("leaf"):
                    clock.advance(1)
        assert [child.name for child in outer.children] == [
            "inner-a", "inner-b",
        ]
        assert [child.name for child in inner_b.children] == ["leaf"]
        assert outer.duration_ms == pytest.approx(11.0)
        assert inner_b.duration_ms == pytest.approx(4.0)

    def test_depth_and_current_track_the_stack(self, clock):
        tracer = Tracer(clock=clock)
        assert tracer.depth == 0 and tracer.current is None
        with tracer.span("a"):
            assert tracer.depth == 1
            with tracer.span("b"):
                assert tracer.current.name == "b"
                assert tracer.depth == 2
            assert tracer.current.name == "a"
        assert tracer.depth == 0

    def test_only_roots_land_in_finished_roots(self, clock):
        tracer = Tracer(clock=clock)
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert [span.name for span in tracer.finished_roots] == ["root"]
        assert tracer.last_root().name == "root"

    def test_finished_roots_ring_is_bounded(self, clock):
        tracer = Tracer(clock=clock, keep=2)
        for index in range(4):
            with tracer.span(f"run{index}"):
                pass
        assert [span.name for span in tracer.finished_roots] == [
            "run2", "run3",
        ]

    def test_span_survives_exceptions(self, clock):
        tracer = Tracer(clock=clock)
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                clock.advance(7)
                raise RuntimeError("boom")
        root = tracer.last_root()
        assert root.name == "failing"
        assert root.duration_ms == pytest.approx(7.0)
        assert tracer.depth == 0


class TestSpanRendering:
    def test_open_span_duration_raises(self):
        span = Span("open", 0.0)
        with pytest.raises(ValueError):
            span.duration_ms

    def test_tree_and_to_dict(self, clock):
        tracer = Tracer(clock=clock)
        with tracer.span("root", iteration=1) as root:
            clock.advance(2)
            with tracer.span("child"):
                clock.advance(1)
            root.set("rows", 5)
        rendered = root.tree()
        assert "root 3.000ms iteration=1 rows=5" in rendered
        assert "\n  child 1.000ms" in rendered
        as_dict = root.to_dict()
        assert as_dict["duration_ms"] == pytest.approx(3.0)
        assert as_dict["children"][0]["name"] == "child"


class TestRegistryIntegration:
    def test_completed_spans_feed_histograms_and_counters(self, clock):
        registry = MetricsRegistry()
        tracer = Tracer(clock=clock, registry=registry)
        for duration in (3.0, 7.0):
            with tracer.span("filter.run"):
                clock.advance(duration)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["trace.filter.run.count"] == 2.0
        histogram = snapshot["histograms"]["trace.filter.run.ms"]
        assert histogram["count"] == 2
        assert histogram["sum"] == pytest.approx(10.0)

    def test_simulated_clock_durations_are_exact(self, clock):
        registry = MetricsRegistry()
        tracer = Tracer(clock=clock, registry=registry)
        with tracer.span("delivery"):
            clock.advance(250.0)
        histogram = registry.snapshot()["histograms"]["trace.delivery.ms"]
        assert histogram["buckets"]["250"] == 1
