"""Unit tests for :mod:`repro.obs.metrics`."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Histogram,
    MetricsRegistry,
    default_registry,
    reset_default_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = MetricsRegistry().counter("c")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increments(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13


class TestHistogramBucketing:
    def test_value_on_boundary_lands_in_that_bucket(self):
        histogram = Histogram((1.0, 5.0, 10.0))
        histogram.observe(5.0)
        snapshot = histogram.snapshot()
        assert snapshot["buckets"]["5"] == 1
        assert snapshot["buckets"]["10"] == 0

    def test_value_below_first_boundary(self):
        histogram = Histogram((1.0, 5.0))
        histogram.observe(0.0)
        histogram.observe(1.0)
        assert histogram.snapshot()["buckets"]["1"] == 2

    def test_overflow_goes_to_inf_bucket(self):
        histogram = Histogram((1.0, 5.0))
        histogram.observe(5.00001)
        histogram.observe(1e9)
        assert histogram.snapshot()["buckets"]["+Inf"] == 2

    def test_count_total_and_mean(self):
        histogram = Histogram((10.0,))
        for value in (2.0, 4.0, 6.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == pytest.approx(12.0)
        assert histogram.mean == pytest.approx(4.0)

    def test_quantile_interpolates_bucket_bounds(self):
        histogram = Histogram((1.0, 2.0, 4.0))
        for __ in range(99):
            histogram.observe(0.5)
        histogram.observe(3.0)
        assert histogram.quantile(0.5) <= 1.0
        assert histogram.quantile(0.999) > 2.0

    def test_rejects_unsorted_boundaries(self):
        with pytest.raises(ValueError):
            Histogram((5.0, 1.0))

    def test_default_boundaries_are_strictly_increasing(self):
        assert list(DEFAULT_LATENCY_BUCKETS_MS) == sorted(
            set(DEFAULT_LATENCY_BUCKETS_MS)
        )


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.counter("x", {"a": "1"}) is not registry.counter("x")

    def test_same_name_different_type_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_snapshot_is_deterministic_across_insertion_order(self):
        first = MetricsRegistry()
        first.counter("b").inc(2)
        first.counter("a").inc(1)
        first.gauge("z", {"k": "v"}).set(9)
        second = MetricsRegistry()
        second.gauge("z", {"k": "v"}).set(9)
        second.counter("a").inc(1)
        second.counter("b").inc(2)
        assert first.snapshot() == second.snapshot()
        assert list(first.snapshot()["counters"]) == ["a", "b"]

    def test_labels_render_sorted_into_key(self):
        registry = MetricsRegistry()
        registry.counter("c", {"b": "2", "a": "1"}).inc()
        assert registry.counter_values() == {"c{a=1,b=2}": 1.0}

    def test_counters_since_returns_nonzero_deltas_only(self):
        registry = MetricsRegistry()
        registry.counter("stable").inc(5)
        before = registry.counter_values()
        registry.counter("moved").inc(3)
        registry.counter("stable").inc(0)
        assert registry.counters_since(before) == {"moved": 3.0}

    def test_reset_drops_instruments(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_default_registry_is_process_global_and_resettable(self):
        reset_default_registry()
        one = default_registry()
        one.counter("obs.test.global").inc()
        assert default_registry() is one
        reset_default_registry()
        assert "obs.test.global" not in default_registry().counter_values()
