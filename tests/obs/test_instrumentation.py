"""Integration: hot paths actually feed the metrics registry."""

from __future__ import annotations

import pytest

from repro.filter.engine import FilterEngine
from repro.obs.metrics import MetricsRegistry
from repro.rdf.schema import objectglobe_schema
from repro.rules.registry import RuleRegistry
from repro.storage.engine import Database
from repro.storage.schema import create_all
from tests.conftest import PAPER_RULE, figure1_document, register_rule


@pytest.fixture()
def metrics() -> MetricsRegistry:
    return MetricsRegistry()


def _run_filtered_batch(metrics: MetricsRegistry, join_evaluation: str):
    db = Database(metrics=metrics)
    create_all(db)
    registry = RuleRegistry(db)
    engine = FilterEngine(
        db, registry, join_evaluation=join_evaluation, metrics=metrics
    )
    register_rule(engine, registry, objectglobe_schema(), PAPER_RULE)
    outcome = engine.process_insertions(list(figure1_document()))
    db.close()
    return outcome


@pytest.mark.parametrize("join_evaluation", ["scan", "probe"])
def test_filtered_batch_produces_nonzero_counters(metrics, join_evaluation):
    outcome = _run_filtered_batch(metrics, join_evaluation)
    assert outcome.matched  # the Figure 1 document matches the paper rule
    counters = metrics.counter_values()
    assert counters["filter.runs"] == 1.0
    assert counters["filter.atoms_scanned"] > 0
    assert counters["filter.rules_triggered"] > 0
    assert counters[f"filter.groups_evaluated.{join_evaluation}"] > 0
    assert counters["filter.join_rows_inserted"] > 0
    assert counters["storage.statements"] > 0
    assert counters["storage.rows_written"] > 0


def test_filter_run_records_span_histograms(metrics):
    _run_filtered_batch(metrics, "probe")
    histograms = metrics.snapshot()["histograms"]
    for name in (
        "trace.filter.run.ms",
        "trace.filter.triggering.ms",
        "trace.filter.iteration.ms",
        "trace.filter.closure.ms",
    ):
        assert histograms[name]["count"] >= 1, name


def test_engine_default_join_evaluation_is_probe():
    db = Database()
    create_all(db)
    engine = FilterEngine(db, RuleRegistry(db))
    assert engine.join_evaluation == "probe"
    db.close()


def test_explicit_registry_keeps_default_registry_clean(metrics):
    from repro.obs.metrics import default_registry

    before = default_registry().counter_values().get("filter.runs", 0.0)
    _run_filtered_batch(metrics, "probe")
    after = default_registry().counter_values().get("filter.runs", 0.0)
    assert after == before
